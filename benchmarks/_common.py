"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or one of the
quantitative claims catalogued in DESIGN.md, prints the resulting table
through the terminal reporter (visible even under pytest's output
capture), and records wall-clock time via pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable, Optional

# The topology builders are the experiment suite's: one definition of
# "the default mid-size internetwork", shared by experiments, perf
# workloads, and benchmarks alike.
from repro.experiments.common import converged_internet, experiment_spec

__all__ = ["bench_spec", "converged_internet", "drain_tables",
           "emit_result", "emit_table", "run_workload"]


#: Tables queued for the end-of-run summary (see benchmarks/conftest.py).
_TABLES = []


def drain_tables():
    """Hand the queued tables to the terminal-summary hook."""
    tables, _TABLES[:] = list(_TABLES), []
    return tables


def emit_table(request, title: str, header: str, rows: Iterable[str],
               footer: str = "") -> None:
    """Queue one experiment table for printing after the test run."""
    lines = ["", f"== {title} ==", header, "-" * len(header)]
    lines.extend(rows)
    if footer:
        lines.append(footer)
    _TABLES.append(lines)


def emit_result(request, result) -> None:
    """Queue a :class:`repro.experiments.ExperimentResult`'s table."""
    _TABLES.append([""] + result.table().splitlines())


def bench_spec(seed: int = 0, **overrides):
    """The benchmarks' historical name for :func:`experiment_spec`."""
    return experiment_spec(seed=seed, **overrides)


def run_workload(request, experiment_id: str, *,
                 seed: Optional[int] = None,
                 params: Optional[dict] = None):
    """Run one registered workload and queue its table for the summary.

    The registry-aware benchmark entry point: parameters validate
    against the workload's declared schema before any work happens, so
    a benchmark sweeping a knob that the workload no longer declares
    fails loudly instead of silently ignoring it.
    """
    from repro.experiments import run

    result = run(experiment_id, seed=seed, params=params)
    emit_result(request, result)
    return result
