"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or one of the
quantitative claims catalogued in DESIGN.md, prints the resulting table
through the terminal reporter (visible even under pytest's output
capture), and records wall-clock time via pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.orchestrator import Orchestrator
from repro.topogen import InternetSpec, generate_internet


#: Tables queued for the end-of-run summary (see benchmarks/conftest.py).
_TABLES = []


def drain_tables():
    """Hand the queued tables to the terminal-summary hook."""
    tables, _TABLES[:] = list(_TABLES), []
    return tables


def emit_table(request, title: str, header: str, rows: Iterable[str],
               footer: str = "") -> None:
    """Queue one experiment table for printing after the test run."""
    lines = ["", f"== {title} ==", header, "-" * len(header)]
    lines.extend(rows)
    if footer:
        lines.append(footer)
    _TABLES.append(lines)


def emit_result(request, result) -> None:
    """Queue a :class:`repro.experiments.ExperimentResult`'s table."""
    _TABLES.append([""] + result.table().splitlines())


def converged_internet(spec: InternetSpec):
    """Generate a tiered internetwork and converge its control planes."""
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network, seed=spec.seed)
    orch.converge()
    return generated, orch


def bench_spec(seed: int = 0, **overrides) -> InternetSpec:
    """The default mid-size internetwork used by the sweep benchmarks."""
    params = dict(n_tier1=3, n_tier2=6, n_stub=12, routers_tier1=5,
                  routers_tier2=4, routers_stub=2, hosts_per_stub=2,
                  seed=seed)
    params.update(overrides)
    return InternetSpec(**params)
