"""E8: the universal-access virtuous cycle (wrapper over E8)."""

import statistics

from repro.experiments import run

from _common import emit_result


def test_adoption_dynamics(benchmark, request):
    result = benchmark.pedantic(lambda: run("E8"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    ua_shares = [r["ua_share"] for r in rows]
    wg_shares = [r["wg_share"] for r in rows]
    assert statistics.fmean(ua_shares) > 0.9
    assert statistics.fmean(wg_shares) < 0.4
    assert all(u > w for u, w in zip(ua_shares, wg_shares))
    assert all(r["wg_half"] is None for r in rows)
    assert all(r["wg_demand"] < 0.1 for r in rows)
