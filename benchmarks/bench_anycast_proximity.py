"""E6: redirection proximity vs deployment (wrapper over experiment E6)."""

from repro.experiments import run

from _common import emit_result


def test_anycast_proximity(benchmark, request):
    result = benchmark.pedantic(lambda: run("E6"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    # Option 1 is near-optimal at any deployment level.
    assert all(r["opt1"]["mean"] < 1.2 for r in rows)
    # Option 2 is worst at the lowest deployment and improves.
    assert rows[0]["opt2"]["mean"] >= rows[-1]["opt2"]["mean"]
    # Peer advertising pulls traffic off the default ISP at every sweep
    # point; at very low deployment it can divert a neighbor to a
    # slightly farther member, so bound the proximity cost rather than
    # demand strict improvement.
    assert all(r["opt2adv"]["default_share"]
               <= r["opt2"]["default_share"] + 1e-9 for r in rows)
    assert all(r["opt2adv"]["mean"] <= r["opt2"]["mean"] * 1.15 for r in rows)
    # The default provider's early traffic share is disproportionate.
    assert rows[0]["opt2"]["default_share"] >= 0.5
    assert (rows[-1]["opt2"]["default_share"]
            < rows[0]["opt2"]["default_share"])
