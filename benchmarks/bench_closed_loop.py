"""E14: the virtuous cycle, closed-loop (wrapper over experiment E14)."""

from repro.experiments import run

from _common import emit_result


def test_closed_loop(benchmark, request):
    result = benchmark.pedantic(lambda: run("E14"), rounds=1, iterations=1)
    emit_result(request, result)
    ua, wg = result.data["ua"], result.data["wg"]
    assert ua.first_deployment_round() is not None
    assert ua.delivery_always_total_once_deployed()
    assert len(ua.final().deployed_asns) > len(wg.final().deployed_asns)
    measured = [e for e in ua.rounds if e.mean_stretch is not None]
    assert measured[-1].mean_stretch <= measured[0].mean_stretch
