"""E13: control-plane cost of evolution events (wrappers over E13a/b)."""

from repro.experiments import run

from _common import emit_result


def test_cold_start_scaling(benchmark, request):
    result = benchmark.pedantic(lambda: run("E13a"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert rows[0]["igp_msgs"] < rows[-1]["igp_msgs"]
    assert rows[0]["bgp_msgs"] < rows[-1]["bgp_msgs"]


def test_adoption_cost_by_scheme(benchmark, request):
    result = benchmark.pedantic(lambda: run("E13b"), rounds=1, iterations=1)
    emit_result(request, result)
    by_scheme = {r["scheme"]: r for r in result.data}
    assert by_scheme["option2"]["bgp_msgs"] == 0
    assert by_scheme["option1"]["bgp_msgs"] > 0
    assert by_scheme["option2"]["igp_msgs"] > 0
