"""Anycast failover under fault injection (paper Section 3.2).

Kills the IPvN anycast member nearest to a probe host on a mid-size
internetwork, lets the routing system reconverge, and measures what the
paper claims needs no dedicated machinery: delivery shifts to the
next-nearest *live* member, then shifts back on recovery.  Emits one
JSON document with reconvergence times, transient-loss counters, and
the member serving the probe at each stage.

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_fault_recovery.py``.
"""

import json

from repro.core.evolution import EvolvableInternet
from repro.core.metrics import ReachabilityReport
from repro.faults import FaultInjector, FaultPlan

from _common import bench_spec, emit_table

CRASH_AT = 10.0
RECOVER_AT = 120.0
SAMPLE = 20


def run_fault_recovery(seed: int = 0):
    spec = bench_spec(seed=seed)
    internet = EvolvableInternet.generate(spec, seed=seed)
    # Global routes: each adopting domain originates the anycast prefix,
    # so the prefix stays BGP-reachable when any single member dies —
    # the multi-origin setting the paper's failover argument assumes.
    deployment = internet.new_deployment(version=8, scheme="global")
    for asn in [internet.tier1_asns()[0]] + internet.stub_asns()[:2]:
        deployment.deploy(asn)
    deployment.rebuild()

    scheme = deployment.scheme
    # Probe from a non-adopting stub: every anycast member is then
    # remote, so crashing the nearest one degrades the path without
    # physically disconnecting the probe host (which is what happens if
    # the nearest member doubles as the host's only access router).
    adopters = deployment.adopting_asns()
    network = internet.network
    probe = next(h for h in internet.hosts()
                 if network.node(h).domain_id not in adopters)
    victim = scheme.resolve(probe)
    assert victim is not None, "probe host cannot reach any anycast member"

    # Reachability is measured over host pairs that stay physically
    # connected under the fault: hosts whose only access router or only
    # border router is the victim are *disconnected*, not failed over,
    # and the paper's claim says nothing about partitioned hosts.  The
    # check is a pure graph computation on temporarily-failed state.
    failed = network.crash_node(victim)
    eligible = [h for h in internet.hosts()
                if network.shortest_path(probe, h) is not None]
    network.recover_node(victim, failed)
    # Source every pair at the probe host: its anycast ingress is the
    # victim, so the crash epoch shows real transient loss (stale FIBs
    # forwarding into the dead member) before reconvergence heals it.
    pairs = [(probe, h) for h in eligible if h != probe][:SAMPLE]

    # The workload doubles as an observer: each reachability probe also
    # records who currently serves the probe host (resolved member and
    # the shortest-path oracle), so the failover member is captured
    # *while* the victim is down, not reconstructed afterwards.
    served = []

    def workload():
        oracle = scheme.optimal_member_cost(probe)
        served.append({"resolved": scheme.resolve(probe),
                       "oracle": oracle and oracle[0]})
        report = ReachabilityReport()
        for src, dst in pairs:
            report.record(network, deployment.send(src, dst), src, dst)
        return report

    plan = (FaultPlan()
            .crash_node(victim, at=CRASH_AT)
            .recover_node(victim, at=RECOVER_AT))
    injector = FaultInjector(internet.orchestrator, plan,
                             deployments=[deployment])
    crash_report, recover_report = injector.play(workload)

    # served[] order: crash-transient, crash-recovered,
    #                 recover-transient, recover-recovered.
    failover = served[1]
    restored = served[3]
    scheduler = internet.orchestrator.scheduler
    return {
        "spec": {"n_tier1": spec.n_tier1, "n_tier2": spec.n_tier2,
                 "n_stub": spec.n_stub, "seed": spec.seed},
        "probe": probe,
        "victim": victim,
        "failover_member": failover["resolved"],
        "failover_oracle": failover["oracle"],
        "member_after_recovery": restored["resolved"],
        "epochs": [crash_report.to_dict(), recover_report.to_dict()],
        "crash": {
            "reconvergence_time": crash_report.reconvergence_time,
            "transient_losses": crash_report.transient_losses,
            "recovered_delivery_ratio": crash_report.recovered_delivery_ratio,
        },
        "recovery": {
            "reconvergence_time": recover_report.reconvergence_time,
            "transient_losses": recover_report.transient_losses,
            "recovered_delivery_ratio": recover_report.recovered_delivery_ratio,
        },
        "messages_lost": scheduler.messages_lost,
        "events_processed": scheduler.events_processed,
        "faults_applied": [record.description for record in injector.records],
    }


def check_failover(result):
    """The paper's claim, as assertions over the measured run."""
    # Delivery shifted to a *different, live* member with zero failover
    # configuration, and it is the true next-nearest one (oracle agrees).
    assert result["failover_member"] is not None
    assert result["failover_member"] != result["victim"]
    assert result["failover_member"] == result["failover_oracle"]
    # Stale FIBs really black-holed traffic before reconvergence...
    assert result["crash"]["transient_losses"] > 0
    # ...and reconvergence alone restored full delivery.
    assert result["crash"]["recovered_delivery_ratio"] == 1.0
    assert result["crash"]["reconvergence_time"] > 0.0
    # Recovery hands the probe back to the original nearest member.
    assert result["member_after_recovery"] == result["victim"]
    assert result["recovery"]["recovered_delivery_ratio"] == 1.0


def test_fault_recovery(benchmark, request):
    result = benchmark.pedantic(run_fault_recovery, rounds=1, iterations=1)
    check_failover(result)
    emit_table(
        request, "Anycast failover under member crash (Section 3.2)",
        f"{'stage':<22} {'member':<10} {'reconv':>7} {'losses':>7} {'delivery':>9}",
        [
            f"{'baseline':<22} {result['victim']:<10} {'-':>7} {'-':>7} {'-':>9}",
            f"{'crash ' + result['victim']:<22} {result['failover_member']:<10} "
            f"{result['crash']['reconvergence_time']:>7.1f} "
            f"{result['crash']['transient_losses']:>7d} "
            f"{result['crash']['recovered_delivery_ratio']:>9.1%}",
            f"{'recover ' + result['victim']:<22} {result['member_after_recovery']:<10} "
            f"{result['recovery']['reconvergence_time']:>7.1f} "
            f"{result['recovery']['transient_losses']:>7d} "
            f"{result['recovery']['recovered_delivery_ratio']:>9.1%}",
        ],
        footer=f"JSON: {json.dumps(result, sort_keys=True)}")


if __name__ == "__main__":
    outcome = run_fault_recovery()
    check_failover(outcome)
    print(json.dumps(outcome, indent=2, sort_keys=True))
