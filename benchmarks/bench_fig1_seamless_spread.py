"""Figure 1: anycast enables the seamless spread of deployment.

Thin benchmark wrapper over ``repro.experiments.run("F1")``: times the
experiment, prints its table, and asserts the paper's expected shape
(redirection follows the newest closer adopter with zero client
reconfiguration).
"""

from repro.experiments import run

from _common import emit_result


def test_fig1_seamless_spread(benchmark, request):
    result = benchmark.pedantic(lambda: run("F1"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert [r["redirected_to_domain"] for r in rows] == ["X", "Y", "Z"]
    costs = [r["cost"] for r in rows]
    assert costs == sorted(costs, reverse=True) or costs[0] >= costs[-1]
    assert not any(r["client_reconfigured"] for r in rows)
