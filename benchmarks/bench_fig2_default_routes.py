"""Figure 2: default-ISP-rooted anycast (wrapper over experiment F2)."""

from repro.experiments import run

from _common import emit_result


def test_fig2_default_routes(benchmark, request):
    result = benchmark.pedantic(lambda: run("F2"), rounds=1, iterations=1)
    emit_result(request, result)
    data = result.data
    assert data["before"] == {"host_x": "D", "host_y": "D", "host_z": "Q"}
    assert data["after"] == {"host_x": "D", "host_y": "Q", "host_z": "Q"}
    assert data["bgp_added_by_joining"] == 0
    assert data["share_after"] < data["share_before"]
