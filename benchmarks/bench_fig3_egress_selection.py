"""Figure 3: egress selection with BGPv(N-1) import (experiment F3)."""

from repro.experiments import run

from _common import emit_result


def test_fig3_egress_selection(benchmark, request):
    result = benchmark.pedantic(lambda: run("F3"), rounds=1, iterations=1)
    emit_result(request, result)
    by_policy = {r["policy"]: r for r in result.data}
    naive = by_policy["exit-immediately"]
    informed = by_policy["bgp-informed"]
    hosted = by_policy["host-advertised"]
    assert all(r["delivered"] for r in result.data)
    assert naive["egress_domain"] == "M"
    assert informed["egress_domain"] == "O"
    assert informed["tail"] < naive["tail"]
    assert informed["coverage"] > naive["coverage"]
    # The rejected design reaches the same exit quality; the paper's
    # objection to it is procedural, not path quality.
    assert hosted["egress_domain"] == "O"
