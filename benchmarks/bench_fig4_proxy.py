"""Figure 4: advertising-by-proxy (wrapper over experiment F4)."""

from repro.experiments import run

from _common import emit_result


def test_fig4_advertising_by_proxy(benchmark, request):
    result = benchmark.pedantic(lambda: run("F4"), rounds=1, iterations=1)
    emit_result(request, result)
    by_config = {r["config"]: r for r in result.data}
    assert all(r["delivered"] for r in result.data)
    naive = by_config["no proxy"]
    assert naive["exit"] == "A"
    assert "M" in naive["as_path"] and "N" in naive["as_path"]
    for label in ("proxy, thr=1", "proxy, thr=2"):
        proxied = by_config[label]
        assert proxied["exit"] in ("B", "C")
        assert "M" not in proxied["as_path"]
        assert proxied["tail"] < naive["tail"]
    # thr=2 brings B into the proxy set alongside C.
    assert by_config["proxy, thr=1"]["proxies"] == "C"
    assert by_config["proxy, thr=2"]["proxies"] == "B+C"
