"""E11: cost of the IGP anycast extensions (wrapper over E11)."""

from repro.experiments import run

from _common import emit_result


def test_igp_anycast_cost(benchmark, request):
    result = benchmark.pedantic(lambda: run("E11"), rounds=1, iterations=1)
    emit_result(request, result)
    ls = result.data["linkstate"]
    dv = result.data["distancevector"]
    for rows in (ls, dv):
        baseline = rows[0]["cold"]
        # Advertising 4 groups costs at most ~2x a cold start with none.
        assert rows[-1]["cold"] <= 2 * baseline
        # Incremental membership change is far cheaper than a cold start.
        assert 0 < rows[-1]["incremental"] < baseline / 2
    assert ls[0]["discovery"] and not dv[0]["discovery"]
