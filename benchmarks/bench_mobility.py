"""E16: host mobility over an IPvN (wrapper over experiment E16)."""

from repro.experiments import run

from _common import emit_result


def test_mobility(benchmark, request):
    result = benchmark.pedantic(lambda: run("E16"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert all(r["vn_reaches"] for r in rows)
    assert not any(r["ipv4_old_locator"] for r in rows)
    assert all(r["stretch"] >= 1.0 for r in rows)
