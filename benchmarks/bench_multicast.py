"""E12: IP Multicast as an IPvN (wrappers over E12a/E12b)."""

from repro.experiments import run

from _common import emit_result


def test_multicast_efficiency(benchmark, request):
    result = benchmark.pedantic(lambda: run("E12a"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert all(r["reached"] == r["receivers"] for r in rows)
    assert all(r["mcast_cost"] <= r["unicast_cost"] for r in rows)
    # The bandwidth advantage grows with group size.
    assert rows[-1]["ratio"] > rows[0]["ratio"]
    assert all(r["mcast_stress"] <= r["unicast_stress"] for r in rows)


def test_multicast_universal_access(benchmark, request):
    result = benchmark.pedantic(lambda: run("E12b"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert all(r["reached"] == r["expected"] for r in rows)
    # Trees get cheaper as deployment spreads.
    assert rows[-1]["cost"] <= rows[0]["cost"]
