"""E7: application-level redirection baselines (wrapper over E7)."""

from repro.experiments import run

from _common import emit_result


def test_redirection_baselines(benchmark, request):
    result = benchmark.pedantic(lambda: run("E7"), rounds=1, iterations=1)
    emit_result(request, result)
    by_name = {r["mechanism"]: r for r in result.data}
    for label in ("anycast (paper)", "anycast, after churn"):
        assert by_name[label]["delivered"] == 1.0
        assert not by_name[label]["contracts"]
    assert by_name["ISP lookup"]["served"] < 1.0
    assert by_name["broker, full reports"]["contracts"]
    assert (by_name["broker, stale snapshot"]["delivered"]
            < by_name["broker, after re-sync"]["delivered"])
    assert (by_name["broker, partial reports"]["delivered"]
            <= by_name["broker, full reports"]["delivered"])
