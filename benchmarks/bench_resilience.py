"""E17: availability under failures (wrapper over experiment E17)."""

from repro.experiments import run

from _common import emit_result


def test_resilience(benchmark, request):
    result = benchmark.pedantic(lambda: run("E17"), rounds=1, iterations=1)
    emit_result(request, result)
    events = result.data["events"]
    first_member = result.data["first_member"]
    # Delivery never dips across any failure/repair event.
    assert all(e["delivery"] == 1.0 for e in events), events
    by_event = {e["event"]: e for e in events}
    down = by_event[f"member {first_member} fails"]
    # The dead member carries no anycast traffic while down.
    assert down["victim_carried_traffic"] is False
    # Redirection state returns to baseline after restoration.
    restored = by_event[f"member {first_member} restored"]
    assert restored["redirect"] == by_event["baseline"]["redirect"]
