"""E15: global-SPF vs layered BGPvN ablation (wrapper over E15)."""

from repro.experiments import run

from _common import emit_result


def test_routing_modes(benchmark, request):
    result = benchmark.pedantic(lambda: run("E15"), rounds=1, iterations=1)
    emit_result(request, result)
    for r in result.data:
        assert r["flat"]["delivery"] == 1.0
        assert r["layered"]["delivery"] == 1.0
        # Layered decisions are at domain granularity: never catastrophically
        # worse than the global SPF.
        assert r["layered"]["stretch"] <= r["flat"]["stretch"] * 1.5 + 0.1
