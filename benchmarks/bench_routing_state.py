"""E5: inter-domain routing-state scaling (wrapper over experiment E5)."""

from repro.experiments import run
from repro.experiments.common import experiment_spec

from _common import emit_result


def test_routing_state_scaling(benchmark, request):
    result = benchmark.pedantic(lambda: run("E5"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    n_domains = experiment_spec().total_domains()
    first, last = rows[0], rows[-1]
    growth = last["groups"] / first["groups"]
    # Option 1: linear growth, felt at every AS.
    assert last["option1"]["total"] == first["option1"]["total"] * growth
    assert first["option1"]["total"] >= n_domains
    # Option 2: zero global state at any scale.
    assert last["option2"]["total"] == 0
    # GIA: grows with groups but far below option 1.
    assert last["gia"]["total"] < last["option1"]["total"] / 2
