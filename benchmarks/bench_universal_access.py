"""E10: universal access end to end (wrapper over experiment E10)."""

from repro.experiments import run

from _common import emit_result


def test_universal_access(benchmark, request):
    result = benchmark.pedantic(lambda: run("E10"), rounds=1, iterations=1)
    emit_result(request, result)
    naive = result.data["exit-immediately"]
    informed = result.data["bgp-informed"]
    for rows in (naive, informed):
        assert all(r["delivery"] == 1.0 for r in rows)
        assert rows[-1]["stretch"] <= rows[0]["stretch"]
    # BGP-informed egress never has longer legacy tails than naive exit.
    assert all(i["tail"] <= n["tail"] + 1e-9
               for n, i in zip(naive, informed))
