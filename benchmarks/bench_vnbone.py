"""E9: vN-Bone construction, repair, congruence (wrappers over E9a/E9b)."""

from repro.experiments import run

from _common import emit_result


def test_vnbone_k_sweep(benchmark, request):
    result = benchmark.pedantic(lambda: run("E9a"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert all(r["connected"] for r in rows)
    # More neighbors, more tunnels.
    assert rows[0]["tunnels"] <= rows[-1]["tunnels"]
    # DV domains produce bootstrap tunnels at every k.
    assert all(r["bootstraps"] > 0 for r in rows)


def test_vnbone_congruence(benchmark, request):
    result = benchmark.pedantic(lambda: run("E9b"), rounds=1, iterations=1)
    emit_result(request, result)
    rows = result.data
    assert all(r["connected"] for r in rows)
    # Row 0 has a single adopter (no inter tunnels; congruence vacuous),
    # so compare the sparse phase (row 1) against the dense end state.
    sparse, dense = rows[1], rows[-1]
    assert dense["congruent"] > sparse["congruent"]
    assert dense["congruent"] >= 0.9
    assert dense["mean_cost"] <= sparse["mean_cost"]
