"""Benchmark-suite plumbing: print experiment tables after the run."""

import _common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = _common.drain_tables()
    if not tables:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for lines in tables:
        for line in lines:
            terminalreporter.write_line(line)
