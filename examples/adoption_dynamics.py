#!/usr/bin/env python
"""The universal-access virtuous cycle vs the multicast chicken-and-egg.

Section 2.1's incentive argument as two trajectories of the adoption
model: with universal access, the first deployment makes the whole user
base addressable, application demand takes off, revenue flows to
offering ISPs (A4), and adoption cascades.  Without it, applications
can only serve deployed ISPs' customers, demand never materializes, and
deployment stalls at experimental seeds — IP Multicast's fate.

Run:  python examples/adoption_dynamics.py
"""

from repro.core.incentives import compare_access_models

WIDTH = 60


def sparkline(values, width=WIDTH):
    """Render a 0..1 series as a one-character-per-sample bar row."""
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(blocks[min(int(v * (len(blocks) - 1)), len(blocks) - 1)]
                   for v in sampled)


def main() -> None:
    print("=== Adoption dynamics: universal access vs walled garden ===\n")
    rounds = 80
    results = compare_access_models(n_isps=30, rounds=rounds, seed=3)
    ua = results["universal_access"]
    wg = results["walled_garden"]

    print(f"{'':>24}" + "round 1 " + "-" * (WIDTH - 16) + f" round {rounds}")
    print(f"{'UA deployed share':>22}: {sparkline(ua.deployed_share)}")
    print(f"{'UA app demand':>22}: {sparkline(ua.demand)}")
    print(f"{'walled deployed share':>22}: {sparkline(wg.deployed_share)}")
    print(f"{'walled app demand':>22}: {sparkline(wg.demand)}")
    print()

    half_ua = ua.rounds_to_share(0.5)
    half_wg = wg.rounds_to_share(0.5)
    print(f"final deployed market share: UA {ua.final_share():.0%}, "
          f"walled garden {wg.final_share():.0%}")
    print(f"final application demand:    UA {ua.final_demand():.0%}, "
          f"walled garden {wg.final_demand():.0%}")
    print(f"rounds to 50% deployment:    UA "
          f"{half_ua if half_ua is not None else 'never'}, walled garden "
          f"{half_wg if half_wg is not None else 'never'}")

    print("\nSweep across seeds (final deployed share):")
    print(f"{'seed':>6} {'universal access':>18} {'walled garden':>15}")
    for seed in range(8):
        r = compare_access_models(n_isps=30, rounds=rounds, seed=seed)
        print(f"{seed:>6} {r['universal_access'].final_share():>18.0%} "
              f"{r['walled_garden'].final_share():>15.0%}")


if __name__ == "__main__":
    main()
