#!/usr/bin/env python
"""Compare the inter-domain anycast deployment schemes of Section 3.2.

Same internetwork, same adoption pattern, three redirection schemes:

* option 1 — non-aggregatable anycast prefixes propagated in BGP,
* option 2 — addresses rooted in a default ISP (with and without the
  optional bilateral peer advertisements),
* GIA      — home-domain default routes plus bounded member search.

For each we measure (a) redirection proximity: how much farther than
the true closest IPvN router a client's packets travel, (b) the
inter-domain routing state the scheme adds, and (c) who can actually
reach the group when some ISPs refuse to cooperate.

Run:  python examples/anycast_scheme_comparison.py
"""

import statistics

from repro.core.orchestrator import Orchestrator
from repro.anycast import DefaultRootedAnycast, GiaAnycast, GlobalAnycast
from repro.topogen import InternetSpec, generate_internet
from repro.trace import sources_for_probes


def build(seed=5):
    generated = generate_internet(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=10, hosts_per_stub=1,
                     seed=seed))
    orch = Orchestrator(generated.network, seed=seed)
    orch.converge()
    return generated, orch


def measure(scheme, orch, adopters, sources, advertise=None):
    for asn in adopters:
        for router in sorted(orch.network.domains[asn].routers):
            scheme.add_member(router)
    if advertise:
        for advertiser, neighbor in advertise:
            scheme.advertise_to_neighbor(advertiser, neighbor)
    orch.reconverge()
    scheme.post_converge_install()
    stretches, reached = [], 0
    for source in sources:
        stretch = scheme.proximity_stretch(source)
        if stretch is not None:
            reached += 1
            stretches.append(stretch)
    state = scheme.routing_state_added()
    return {
        "access": reached / len(sources),
        "mean_stretch": statistics.fmean(stretches) if stretches else None,
        "max_stretch": max(stretches) if stretches else None,
        "state_total": sum(state.values()),
        "state_max_per_as": max(state.values()),
    }


def main() -> None:
    print("=== Anycast scheme comparison (Section 3.2) ===\n")
    rows = []

    # Adopters: one tier-1 (the default/home) plus two regionals.
    def adopters_for(generated):
        return [generated.tier1[0], generated.tier2[0], generated.tier2[3]]

    generated, orch = build()
    rows.append(("option1/global", measure(
        GlobalAnycast(orch, "o1"), orch, adopters_for(generated),
        sources_for_probes(orch.network))))

    generated, orch = build()
    rows.append(("option2/default", measure(
        DefaultRootedAnycast(orch, "o2", default_asn=generated.tier1[0]),
        orch, adopters_for(generated), sources_for_probes(orch.network))))

    generated, orch = build()
    scheme = DefaultRootedAnycast(orch, "o2adv", default_asn=generated.tier1[0])
    adopters = adopters_for(generated)
    advertise = []
    for asn in adopters[1:]:
        for neighbor in sorted(orch.network.domains[asn].neighbor_asns()):
            advertise.append((asn, neighbor))
    rows.append(("option2+peering", measure(
        scheme, orch, adopters, sources_for_probes(orch.network),
        advertise=advertise)))

    generated, orch = build()
    rows.append(("GIA (ttl=1)", measure(
        GiaAnycast(orch, "gia", home_asn=generated.tier1[0], search_ttl=1),
        orch, adopters_for(generated), sources_for_probes(orch.network))))

    # Option 1 when a third of the ISPs refuse the policy change.
    generated, orch = build()
    for asn in list(orch.network.domains)[::3]:
        orch.network.domains[asn].propagates_anycast = False
    rows.append(("option1, 1/3 refuse", measure(
        GlobalAnycast(orch, "o1b"), orch, adopters_for(generated),
        sources_for_probes(orch.network))))

    header = (f"{'scheme':>20} {'access':>7} {'stretch':>8} {'worst':>6} "
              f"{'bgp state':>10} {'max/AS':>7}")
    print(header)
    print("-" * len(header))
    for name, row in rows:
        stretch = f"{row['mean_stretch']:.2f}" if row["mean_stretch"] else "-"
        worst = f"{row['max_stretch']:.1f}" if row["max_stretch"] else "-"
        print(f"{name:>20} {row['access']:>7.0%} {stretch:>8} {worst:>6} "
              f"{row['state_total']:>10} {row['state_max_per_as']:>7}")

    print("\nShapes to notice: option 1 finds the closest member (stretch")
    print("~1) but adds a route at every AS and breaks when ISPs refuse the")
    print("policy change; option 2 adds zero state and never breaks, at the")
    print("cost of proximity — which the optional peer advertisements then")
    print("recover; GIA sits in between, needing modified client domains.")


if __name__ == "__main__":
    main()
