#!/usr/bin/env python
"""A content provider adopts IPv8: network-level vs application-level
redirection under deployment churn (Sections 2.2 vs 2.3/3).

The scenario the paper's multicast discussion evokes: a content
provider (think CNN) wants to ship an IPv8-aware application.  Its
viability depends on how many clients can actually reach the IPv8
service, and on how robust the redirection machinery is while the
deployment landscape is still shifting.

We run a client-server workload three ways:

* anycast (the paper's proposal): clients encapsulate to the well-known
  anycast address; the network self-manages redirection;
* ISP-run lookup services: only clients of participating ISPs get
  served at all (assumption A3 forbids foreign contracts);
* a third-party broker: serves everyone, but answers from a cached
  snapshot of deployment, so adoption churn blackholes traffic until it
  re-syncs — and it upsets the market structure in the first place.

Run:  python examples/content_provider.py
"""

from repro.core.evolution import EvolvableInternet
from repro.net.errors import RedirectionError
from repro.redirection import (BrokerLookupService, IspLookupService,
                               app_level_send)
from repro.topogen import InternetSpec


def score(deployment, clients, server, mechanism, service=None):
    served = delivered = 0
    for client in clients:
        if client == server:
            continue
        try:
            if service is None:
                trace = deployment.send(client, server)
            else:
                trace = app_level_send(deployment, service, client, server)
        except RedirectionError:
            continue
        served += 1
        delivered += trace.delivered
    total = len(clients) - (1 if server in clients else 0)
    return {"mechanism": mechanism, "served": served / total,
            "delivered": delivered / total}


def main() -> None:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=5, n_stub=10, hosts_per_stub=2,
                     seed=13))
    ipv8 = internet.new_deployment(version=8, scheme="default")
    ipv8.deploy(ipv8.scheme.default_asn)
    # The content provider's ISP adopts too (it wants IPv8 service).
    server = internet.hosts()[0]
    server_asn = internet.network.node(server).domain_id
    ipv8.deploy(server_asn)
    ipv8.rebuild()

    clients = internet.hosts()[1:]
    isp_lookup = IspLookupService(ipv8)
    broker = BrokerLookupService(ipv8)
    isp_lookup.sync()
    broker.sync()

    print("=== Content provider scenario: who can reach the IPv8 service? ===\n")
    rows = [
        score(ipv8, clients, server, "anycast (paper)"),
        score(ipv8, clients, server, "ISP lookup", isp_lookup),
        score(ipv8, clients, server, "broker (fresh)", broker),
    ]

    # Now the deployment landscape shifts: one ISP rolls back, two new
    # ISPs adopt.  Only the broker's snapshot is stale; anycast
    # self-manages (Section 3.1's "seamless spread").  Note the rolled
    # back ISP is NOT the default provider: the default ISP owns the
    # anycast address and is the one party option 2 needs to stay.
    rollback = server_asn
    newcomers = [asn for asn in internet.stub_asns()
                 if asn not in (rollback, ipv8.scheme.default_asn)][:2]
    ipv8.undeploy(rollback)
    for asn in newcomers:
        ipv8.deploy(asn)
    ipv8.rebuild()
    isp_lookup.participants = None  # ISP services track deployment
    isp_lookup.sync()
    rows.append(score(ipv8, clients, server, "anycast, after churn"))
    rows.append(score(ipv8, clients, server, "ISP lookup, after churn",
                      isp_lookup))
    rows.append(score(ipv8, clients, server, "broker, stale snapshot",
                      broker))
    broker.sync()
    rows.append(score(ipv8, clients, server, "broker, after re-sync", broker))

    header = f"{'mechanism':>26} {'served':>8} {'delivered':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['mechanism']:>26} {row['served']:>8.0%} "
              f"{row['delivered']:>10.0%}")

    print("\nAnycast serves and delivers for every client at every stage.")
    print("ISP lookup strands clients of non-participating ISPs; the broker")
    print("serves everyone but blackholes through deployment churn until it")
    print("re-syncs — and requires new market relationships besides.")


if __name__ == "__main__":
    main()
