#!/usr/bin/env python
"""Incremental rollout: Figure 1 at Internet scale.

Replays the paper's deployment story on a generated internetwork: ISPs
adopt IPv8 one by one (core-first), and after every adoption we measure
what clients experience — delivery ratio, path stretch, how far the
nearest IPv8 ingress is, how much traffic the default provider carries,
and how often endhosts had to be touched (relabeling only; redirection
is reconfiguration-free by construction).

The table's shape is the paper's argument: universal access is total
from the very first adopter, and every quality metric improves
monotonically-ish as deployment spreads — the virtuous cycle's
technical precondition.

Run:  python examples/incremental_rollout.py
"""

import statistics

from repro.core.deployment import DeploymentSchedule, ScenarioRunner
from repro.core.evolution import EvolvableInternet
from repro.core.metrics import measure_reachability, traffic_share
from repro.topogen import InternetSpec


def main() -> None:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=12, hosts_per_stub=2,
                     seed=7))
    ipv8 = internet.new_deployment(version=8, scheme="default")
    default_asn = ipv8.scheme.default_asn
    network = internet.network

    # Core-first adoption, starting from the default ISP.
    order = [default_asn] + [asn for asn in
                             DeploymentSchedule.core_first(network).asns()
                             if asn != default_asn]
    schedule = DeploymentSchedule.explicit(order[:12])
    pairs = internet.host_pairs(sample=60, seed=1)

    def probe(step, deployment):
        if not deployment.members():
            return {"delivery": 0.0, "stretch": None, "ingress_cost": None,
                    "default_share": None}
        report = measure_reachability(network, deployment.send, pairs)
        traces = [deployment.send(a, b) for a, b in pairs[:30]]
        ingress_costs = []
        for host in internet.hosts()[:10]:
            trace = deployment.scheme.probe(host)
            if trace.delivered:
                ingress_costs.append(deployment.scheme.path_cost(trace))
        return {
            "delivery": report.delivery_ratio,
            "stretch": report.mean_stretch,
            "ingress_cost": (statistics.fmean(ingress_costs)
                             if ingress_costs else None),
            "default_share": traffic_share(network, traces, default_asn),
            "relabels": len(deployment.plan.relabel_events),
        }

    result = ScenarioRunner(ipv8).run(schedule, probe)

    print("=== Incremental IPv8 rollout (core-first) ===")
    print(f"default ISP: AS{default_asn}; anycast {ipv8.scheme.address}\n")
    header = (f"{'step':>4} {'adopter':>8} {'delivery':>9} {'stretch':>8} "
              f"{'ingress-cost':>13} {'default-share':>14} {'relabels':>9}")
    print(header)
    print("-" * len(header))
    for row in result.rows:
        adopter = f"AS{row['adopted_asn']}" if row["adopted_asn"] else "-"
        stretch = f"{row['stretch']:.2f}" if row["stretch"] else "-"
        ingress = (f"{row['ingress_cost']:.1f}"
                   if row["ingress_cost"] is not None else "-")
        share = (f"{row['default_share']:.0%}"
                 if row["default_share"] is not None else "-")
        print(f"{row['step']:>4} {adopter:>8} {row['delivery']:>9.0%} "
              f"{stretch:>8} {ingress:>13} {share:>14} "
              f"{row.get('relabels', 0):>9}")

    print("\nReading the table: delivery is 100% from the first adopter on")
    print("(universal access); ingress cost and stretch fall as deployment")
    print("spreads; the default ISP's traffic share dilutes from 100%; and")
    print("the only endhost events are address relabels in adopting ISPs.")


if __name__ == "__main__":
    main()
