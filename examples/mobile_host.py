#!/usr/bin/env python
"""Host mobility over an evolvable IPvN.

The paper's introduction lists mobility among the pressures the frozen
architecture cannot answer.  With IPv8 deployed through the paper's
machinery, a host can keep one stable IPv8 identity while its provider
— and therefore its IPv4 locator — changes underneath:

1. the laptop pins its IPv8 address (identity);
2. it moves: new access ISP, new IPv4 address; plain IPv4 to the old
   address now blackholes (provider-assigned addressing at work);
3. it anycasts for a nearby IPv8 router, which advertises the pinned
   identity from the new attachment (the Section 3.3.2 host-
   advertisement machinery, reused as mobility registration);
4. the correspondent, which never learned anything changed, keeps
   sending to the same IPv8 address — and keeps being heard.

Run:  python examples/mobile_host.py
"""

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone.mobility import MobilityService


def main() -> None:
    print("=== A mobile host on an evolvable Internet ===\n")
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=4, n_stub=8, hosts_per_stub=1,
                     seed=93), seed=93)
    ipv8 = internet.new_deployment(version=8, scheme="default")
    ipv8.deploy(ipv8.scheme.default_asn)
    ipv8.rebuild()
    mobility = MobilityService(ipv8)

    laptop = internet.hosts()[0]
    server = internet.hosts()[-1]
    identity = mobility.enable(laptop)
    home = internet.network.node(laptop).domain_id
    print(f"laptop {laptop}: home AS{home}, "
          f"IPv4 {internet.network.node(laptop).ipv4}")
    print(f"pinned IPv8 identity: {identity}\n")

    trace = mobility.reach(server, laptop)
    print(f"server -> laptop before any move: "
          f"{'delivered' if trace.delivered else 'LOST'}\n")

    for asn in [a for a in internet.stub_asns() if a != home][:3]:
        access = sorted(internet.network.domains[asn].routers)[0]
        record = mobility.move(laptop, asn, access)
        vn = mobility.reach(server, laptop)
        legacy = mobility.ipv4_reach_old_locator(server, record)
        print(f"move to AS{asn}: locator {record.old_ipv4} -> "
              f"{record.new_ipv4}, registered via {record.advertiser}")
        print(f"  server -> IPv8 identity:  "
              f"{'delivered' if vn.delivered else 'LOST'}")
        print(f"  server -> old IPv4:       "
              f"{'delivered (!?)' if legacy.delivered else 'dead, as expected'}")
    print("\nSame identity across three providers; zero correspondent "
          "reconfiguration.")


if __name__ == "__main__":
    main()
