#!/usr/bin/env python
"""Deploy IP Multicast — the paper's cautionary tale — as an IPvN.

Section 2.1 blames multicast's failure on the lack of universal access:
"even had a major ISP (say Sprint) deployed multicast, this new
functionality would only have been available to Sprint's customers",
so content providers never built for it.  Here, multicast rides the
paper's own evolution machinery: one ISP deploys a multicast-capable
IPv8; anycast gives every host on the Internet access; the vN-Bone
carries distribution trees; and the efficiency advantage over unicast
fan-out — multicast's whole point — materializes immediately.

Run:  python examples/multicast_service.py
"""

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone import enable_multicast


def main() -> None:
    print("=== Multicast as an evolvable IPvN ===\n")
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=12, hosts_per_stub=2,
                     seed=55))
    ipv8 = internet.new_deployment(version=8, scheme="default")
    sprint = ipv8.scheme.default_asn
    ipv8.deploy(sprint)
    ipv8.rebuild()
    mcast = enable_multicast(ipv8)
    print(f"Exactly one ISP (AS{sprint}) deployed the multicast-capable "
          f"IPv8.\n")

    # A broadcaster and receivers scattered across never-upgraded stubs.
    hosts = internet.hosts()
    broadcaster = hosts[0]
    audience = hosts[1:13]
    group = mcast.create_group()
    for host in audience:
        mcast.join(group, host)
    mcast.rebuild()

    domains = {internet.network.node(h).domain_id for h in audience}
    upgraded = sum(1 for d in domains
                   if internet.network.domains[d].deploys(8))
    print(f"Audience: {len(audience)} receivers across {len(domains)} "
          f"domains ({upgraded} of which deployed IPv8 themselves).")

    trace = mcast.send(broadcaster, group)
    reached = trace.delivered_to & set(audience)
    unicast_cost, unicast_stress = mcast.unicast_equivalent_cost(
        broadcaster, group)
    print(f"\nOne multicast send from {broadcaster}:")
    print(f"  receivers reached:    {len(reached)}/{len(audience)}")
    print(f"  link transmissions:   {trace.transmissions} "
          f"(unicast fan-out would use {unicast_cost})")
    print(f"  worst link stress:    {trace.max_link_stress} "
          f"(unicast: {unicast_stress})")
    print(f"  bandwidth advantage:  "
          f"{unicast_cost / trace.transmissions:.2f}x")

    # Deployment spreads; trees improve without touching the group.
    for asn in internet.stub_asns()[:4]:
        ipv8.deploy(asn)
    ipv8.rebuild()
    mcast.rebuild()
    trace2 = mcast.send(broadcaster, group)
    print(f"\nAfter 4 more ISPs adopt (no group/receiver changes):")
    print(f"  receivers reached:    "
          f"{len(trace2.delivered_to & set(audience))}/{len(audience)}")
    print(f"  link transmissions:   {trace2.transmissions}")
    print("\nThe chicken-and-egg is gone: the broadcaster could ship a "
          "multicast\napplication on day one of a single ISP's deployment.")


if __name__ == "__main__":
    main()
