#!/usr/bin/env python
"""Quickstart: one ISP deploys IPv8; every host on the Internet can use it.

This is the paper's core claim in ~40 lines:

1. Generate a tiered internetwork (tier-1 clique, regionals, stubs) and
   converge its IPv4 control planes (link-state IGPs + policy BGP).
2. A single tier-1 ISP deploys IPv8.  Its routers join the deployment's
   anycast group; the anycast address is carved out of that ISP's own
   unicast block (the paper's "default ISP" scheme), so nothing new
   enters global BGP.
3. Any host — including hosts whose ISPs have never heard of IPv8 —
   sends IPv8 packets by encapsulating them in IPv4 towards the
   well-known anycast address.  Universal access measures 100%.

Run:  python examples/quickstart.py
"""

from repro import EvolvableInternet

def main() -> None:
    print("=== Towards an Evolvable Internet Architecture: quickstart ===\n")
    internet = EvolvableInternet.generate(seed=42)
    print(f"Generated internetwork: {internet.describe()}\n")

    # One early-adopter tier-1 ISP deploys IPv8.
    ipv8 = internet.new_deployment(version=8, scheme="default")
    early_adopter = ipv8.scheme.default_asn
    ipv8.deploy(early_adopter)
    ipv8.rebuild()
    print(f"AS{early_adopter} deployed IPv8 on routers {sorted(ipv8.members())}")
    print(f"Anycast redirection address: {ipv8.scheme.address} "
          f"(inside AS{early_adopter}'s unicast block)\n")

    # Two hosts in stub domains that have NOT deployed IPv8 talk IPv8.
    hosts = internet.hosts()
    src, dst = hosts[0], hosts[-1]
    trace = ipv8.send(src, dst)
    print(f"IPv8 packet {src} -> {dst}:")
    print(trace)
    print()

    # Universal access: every sampled host pair can exchange IPv8.
    report = internet.reachability(8, sample=100)
    print(f"Universal access over {report.attempted} host pairs: "
          f"{report.delivery_ratio:.0%} delivered "
          f"(mean path stretch {report.mean_stretch:.2f}x vs direct IPv4)")

    # Deployment spreads; redirection adapts with zero host changes.
    for asn in internet.stub_asns()[:3]:
        ipv8.deploy(asn)
    ipv8.rebuild()
    report = internet.reachability(8, sample=100)
    print(f"After 3 more ISPs adopt:              "
          f"{report.delivery_ratio:.0%} delivered "
          f"(mean stretch {report.mean_stretch:.2f}x)")
    print(f"Host relabeling events so far: {len(ipv8.plan.relabel_events)} "
          "(addressing only; no redirection reconfiguration, ever)")


if __name__ == "__main__":
    main()
