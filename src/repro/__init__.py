"""repro: reproduction of "Towards an Evolvable Internet Architecture"
(Ratnasamy, Shenker, McCanne; SIGCOMM 2005).

The package implements, on a from-scratch router/AS-level Internet
simulator, the paper's complete mechanism suite for evolving IP:

* IP Anycast network-level redirection (options 1 and 2, plus GIA),
* vN-Bone virtual networks with intra/inter-domain construction,
* BGPvN routing, BGPv(N-1)-informed egress selection,
  advertising-by-proxy, and RFC3056-style self-addressing,
* the application-level redirection baselines the paper argues against,
* incentive/adoption dynamics for the universal-access argument.

Start with :class:`repro.core.evolution.EvolvableInternet`.
"""

from repro.core.evolution import EvolvableInternet

__version__ = "1.0.0"

__all__ = ["EvolvableInternet", "__version__"]
