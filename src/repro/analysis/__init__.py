"""repro.analysis: the determinism & invariant linter.

A stdlib-``ast`` static-analysis engine with project-specific rules
machine-checking the conventions the reproduction's results rest on:

* **D1** seeded randomness only — no module-global ``random.*``;
* **D2** wall-clock reads flow only into ``wall_``-prefixed names;
* **D3** deterministic iteration order in routing-critical packages;
* **D4** metric/trace updates guarded by ``obs.enabled``;
* **D5** typed exceptions and immutable defaults in the public API.

Typical use::

    from repro.analysis import lint_paths

    report = lint_paths(["src"])
    assert report.ok, [f.format() for f in report.unsuppressed]

or from the shell (the CI correctness gate)::

    python -m repro lint src/ --json

Findings are suppressed with ``# repro: allow[D1]`` trailing comments
(scope-wide when placed on a ``def``/``class`` line); see
``docs/static-analysis.md`` for each rule's rationale and examples.
"""

from __future__ import annotations

from repro.analysis.engine import (AnalysisError, Linter, LintReport,
                                   collect_files, lint_paths, lint_source)
from repro.analysis.findings import (ALLOW_ALL, Finding, Severity, SourceFile,
                                     parse_allow_comments)
from repro.analysis.reporters import (render_human, render_json,
                                      render_rule_list)
from repro.analysis.rules import (DEFAULT_RULES, RULES_BY_ID,
                                  HotPathGuardRule, OrderedIterationRule,
                                  PublicApiRule, Rule, SeededRandomRule,
                                  WallClockRule)

__all__ = ["ALLOW_ALL", "AnalysisError", "DEFAULT_RULES", "Finding",
           "HotPathGuardRule", "Linter", "LintReport",
           "OrderedIterationRule", "PublicApiRule", "RULES_BY_ID", "Rule",
           "SeededRandomRule", "Severity", "SourceFile", "WallClockRule",
           "collect_files", "lint_paths", "lint_source",
           "parse_allow_comments", "render_human", "render_json",
           "render_rule_list"]
