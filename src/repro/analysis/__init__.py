"""repro.analysis: the determinism & invariant linter.

A stdlib-``ast`` static-analysis engine with project-specific rules
machine-checking the conventions the reproduction's results rest on.

Per-file rules (pass over one module at a time):

* **D1** seeded randomness only — no module-global ``random.*``;
* **D2** wall-clock reads flow only into ``wall_``-prefixed names;
* **D3** deterministic iteration order in routing-critical packages;
* **D4** metric/trace updates guarded by ``obs.enabled``;
* **D5** typed exceptions and immutable defaults in the public API.

Whole-program rules (``--project``: pass 1 builds a
:class:`~repro.analysis.project.ProjectIndex`, pass 2 checks it):

* **C1/C2** cache coherence — topology/FIB mutations must sit on a
  call path through a ``topology_version`` bump or fast-path
  invalidation;
* **P1/P2/P3** fleet safety — registered workload runners touch no
  module-level mutable state, capture no live resources in closures,
  and leak no wall-clock values into unmarked artifact keys;
* **S1/S2** schema drift — dict literals each artifact emitter builds
  are statically diffed against the keys its paired validator checks.

Typical use::

    from repro.analysis import lint_project

    report = lint_project(["src"])
    assert report.ok, [f.format() for f in report.actionable]

or from the shell (the CI correctness gates)::

    python -m repro lint src/ --json
    python -m repro lint --project src/ --baseline .lint-baseline.json

Findings are suppressed with ``# repro: allow[D1]`` trailing comments
(scope-wide when placed on a ``def``/``class`` line), absorbed by a
committed baseline (``--baseline``), and audited for staleness with
``--warn-unused-suppressions``; see ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import BASELINE_SCHEMA, Baseline, finding_key
from repro.analysis.crules import C_RULES, FibCoherenceRule, \
    TopologyMutationRule
from repro.analysis.engine import (PROJECT_RULES, PROJECT_RULES_BY_ID,
                                   UNUSED_SUPPRESSION_ID, Linter, LintReport,
                                   collect_files, lint_paths, lint_project,
                                   lint_project_sources, lint_source)
from repro.analysis.findings import (ALLOW_ALL, AnalysisError, Finding,
                                     Severity, SourceFile,
                                     parse_allow_comments)
from repro.analysis.project import ProjectIndex, module_name_for_path
from repro.analysis.prules import (P_RULES, ClosureCaptureRule,
                                   ModuleStateRule, WallClockArtifactRule)
from repro.analysis.reporters import (render_human, render_json,
                                      render_rule_list, render_sarif)
from repro.analysis.rules import (DEFAULT_RULES, RULES_BY_ID,
                                  HotPathGuardRule, OrderedIterationRule,
                                  ProjectRule, PublicApiRule, Rule,
                                  SeededRandomRule, WallClockRule)
from repro.analysis.srules import (S_RULES, EmitterMissingKeyRule,
                                   EmitterUnknownKeyRule)

__all__ = ["ALLOW_ALL", "AnalysisError", "BASELINE_SCHEMA", "Baseline",
           "C_RULES", "ClosureCaptureRule", "DEFAULT_RULES",
           "EmitterMissingKeyRule", "EmitterUnknownKeyRule",
           "FibCoherenceRule", "Finding", "HotPathGuardRule", "Linter",
           "LintReport", "ModuleStateRule", "OrderedIterationRule",
           "PROJECT_RULES", "PROJECT_RULES_BY_ID", "P_RULES", "ProjectIndex",
           "ProjectRule", "PublicApiRule", "RULES_BY_ID", "Rule", "S_RULES",
           "SeededRandomRule", "Severity", "SourceFile",
           "TopologyMutationRule", "UNUSED_SUPPRESSION_ID",
           "WallClockArtifactRule", "WallClockRule", "collect_files",
           "finding_key", "lint_paths", "lint_project",
           "lint_project_sources", "lint_source", "module_name_for_path",
           "parse_allow_comments", "render_human", "render_json",
           "render_rule_list", "render_sarif"]
