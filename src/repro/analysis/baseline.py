"""Committed lint baselines: adopt whole-program rules gradually.

A baseline is a JSON file recording the findings that existed when a
rule family landed.  ``python -m repro lint --project --baseline
.lint-baseline.json`` then fails only on *new* findings: baselined ones
are reported (flagged ``baselined``) but do not gate.

Entries are keyed by ``path::rule::message`` with an occurrence count —
deliberately **not** by line number, so unrelated edits that shift a
finding up or down the file neither un-baseline it nor mask a genuinely
new instance elsewhere.  If the same key fires more often than the
committed count, the surplus findings gate as new.

Entries whose finding no longer occurs are *stale* and reported so the
file can be re-shrunk with ``--update-baseline`` (the baseline should
only ever shrink).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import AnalysisError, Finding

#: Schema tag of the baseline document.
BASELINE_SCHEMA = "repro.analysis-baseline/v1"


def finding_key(finding: Finding) -> str:
    """The line-number-free identity of a finding."""
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


@dataclass
class Baseline:
    """Known findings, keyed by :func:`finding_key` with counts."""

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Baseline every unsuppressed finding in *findings*."""
        entries: Dict[str, int] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            key = finding_key(finding)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def from_file(cls, path: str) -> "Baseline":
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as exc:
            raise AnalysisError(f"baseline file {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"baseline file {path!r}: invalid JSON ({exc})") from exc
        if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
            raise AnalysisError(
                f"baseline file {path!r}: expected schema "
                f"{BASELINE_SCHEMA!r}")
        raw = doc.get("entries", {})
        if not isinstance(raw, dict):
            raise AnalysisError(f"baseline file {path!r}: entries must be "
                                "an object of key -> count")
        entries: Dict[str, int] = {}
        for key, count in raw.items():
            if (not isinstance(key, str) or not isinstance(count, int)
                    or isinstance(count, bool) or count < 1):
                raise AnalysisError(
                    f"baseline file {path!r}: bad entry {key!r}: {count!r}")
            entries[key] = count
        return cls(entries=entries)

    def to_dict(self) -> Dict[str, object]:
        return {"schema": BASELINE_SCHEMA,
                "entries": {key: self.entries[key]
                            for key in sorted(self.entries)}}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def apply(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[str]]:
        """Mark known findings ``baselined``; return them plus stale keys.

        Findings come back in input order.  Suppressed findings never
        consume baseline budget.  The second element lists entries (one
        per remaining count) that no current finding matched — stale
        budget the baseline file should drop.
        """
        remaining = dict(self.entries)
        marked: List[Finding] = []
        for finding in findings:
            if finding.suppressed:
                marked.append(finding)
                continue
            key = finding_key(finding)
            budget = remaining.get(key, 0)
            if budget > 0:
                remaining[key] = budget - 1
                marked.append(replace(finding, baselined=True))
            else:
                marked.append(finding)
        stale = [key for key in sorted(remaining)
                 for _ in range(remaining[key])]
        return marked, stale
