"""C-rules: cache coherence across the topology/caching contract.

The PR-4 path/SPF caches and the PR-6 forwarding fast path are both
keyed on ``Network._topology_version``: any mutation of topology state
(link tables, node liveness, FIB contents, vN-Bone overlay structure)
that does not sit on a call path through a version bump or a fast-path
invalidation leaves a stale cache serving wrong answers — the class of
bug that today only the cached==uncached equivalence matrix would
catch, at CI-smoke time.

* **C1** — a statement mutating link/liveness topology state (``.links``
  table writes, ``.up``/``.cost`` attribute writes) in a function from
  which no caller chain can reach a version bump.
* **C2** — a FIB ``install``/``withdraw`` in a function from which no
  caller chain can reach a version bump.

"Reaches a bump" is computed on the pass-1 call graph: let ``B`` be the
set of functions whose transitive callees include a direct call to one
of :data:`BUMP_NAMES`.  ``B`` is closed under callers, so a mutator
``f`` is covered iff its caller closure (which includes ``f`` itself)
intersects ``B`` — this accepts the common shape where the bump lives
in a *sibling* callee of ``f``'s caller.  Constructors are exempt
(objects under construction are not yet visible to any cache), as is
the audited mutator set in :data:`AUDITED_MUTATORS`.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import (MUTATING_METHODS, FunctionInfo,
                                    ProjectIndex)
from repro.analysis.rules import ProjectRule, _terminal_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Terminal callee names that bump a topology version or invalidate a
#: topology-keyed cache.
BUMP_NAMES: FrozenSet[str] = frozenset({
    "_bump_topology_version", "_on_state_change", "bump", "pause",
    "invalidate", "_invalidate", "invalidate_caches",
})

#: Packages (second path component under ``repro``) whose state feeds
#: the topology-version contract.
TOPOLOGY_PACKAGES: FrozenSet[str] = frozenset({
    "net", "routing", "vnbone", "bgp", "anycast", "topogen", "faults",
})

#: Function keys reviewed by hand and accepted as coherent even though
#: the call graph cannot prove a bump (e.g. builders whose result is
#: only published after a bump).  Keep this list short and commented.
AUDITED_MUTATORS: FrozenSet[str] = frozenset()

#: Attribute names whose assignment changes topology reachability.
_TOPOLOGY_ATTRS: FrozenSet[str] = frozenset({"up", "cost"})

#: Methods not exempted even in ``__init__`` (none today).
_CONSTRUCTOR_NAMES: FrozenSet[str] = frozenset({"__init__", "__post_init__"})


def _in_topology_package(module: str) -> bool:
    parts = module.split(".")
    return (len(parts) >= 2 and parts[0] == "repro"
            and parts[1] in TOPOLOGY_PACKAGES)


def _own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Every node in one function's own scope, nested defs excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNCTION_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def bump_covered(index: ProjectIndex) -> Set[str]:
    """Function keys on some call path through a topology bump."""
    direct = index.functions_calling(BUMP_NAMES)
    return index.caller_closure(direct)


def _is_covered(index: ProjectIndex, covered: Set[str],
                info: FunctionInfo) -> bool:
    if info.key in AUDITED_MUTATORS:
        return True
    if info.name in _CONSTRUCTOR_NAMES:
        return True
    return bool(index.caller_closure({info.key}) & covered)


class _TopologyCoherenceRule(ProjectRule):
    """Shared machinery: find mutations, then check bump coverage."""

    def mutations(self, info: FunctionInfo) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        covered = bump_covered(index)
        for info in index.functions.values():
            if not _in_topology_package(info.module):
                continue
            sites = list(self.mutations(info))
            if not sites:
                continue
            if _is_covered(index, covered, info):
                continue
            for node, what in sites:
                yield self.finding(
                    index, info.path, node,
                    f"{what} in '{info.qual}', but no call path from here "
                    "reaches a topology_version bump or fast-path "
                    "invalidation; version-keyed caches (path cache, flow "
                    "fast path) would serve stale state")


class TopologyMutationRule(_TopologyCoherenceRule):
    """C1: link-table/liveness mutations must sit under a version bump."""

    rule_id = "C1"
    title = "topology mutations reach a version bump"

    def mutations(self, info: FunctionInfo) -> Iterator[Tuple[ast.AST, str]]:
        for node in _own_scope(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._check_target(node, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._is_links_subscript(target):
                        yield node, "deletion from a '.links' table"
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "links"):
                    yield node, (f"'.links.{func.attr}(...)' "
                                 "link-list mutation")

    def _check_target(self, stmt: ast.AST,
                      target: ast.expr) -> Iterator[Tuple[ast.AST, str]]:
        if self._is_links_subscript(target):
            yield stmt, "assignment into a '.links' table"
        elif (isinstance(target, ast.Attribute)
                and target.attr in _TOPOLOGY_ATTRS):
            yield stmt, f"'.{target.attr}' liveness/cost write"

    @staticmethod
    def _is_links_subscript(target: ast.expr) -> bool:
        return (isinstance(target, ast.Subscript)
                and _terminal_name(target.value) == "links")


class FibCoherenceRule(_TopologyCoherenceRule):
    """C2: FIB installs/withdraws must sit under a version bump."""

    rule_id = "C2"
    title = "FIB updates reach a version bump"

    def mutations(self, info: FunctionInfo) -> Iterator[Tuple[ast.AST, str]]:
        for node in _own_scope(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("install", "withdraw")):
                continue
            receiver = _terminal_name(func.value)
            if receiver.startswith("fib"):
                yield node, f"FIB '.{func.attr}(...)' on '{receiver}'"


C_RULES: Tuple[ProjectRule, ...] = (TopologyMutationRule(),
                                    FibCoherenceRule())
