"""The lint engine: file collection, rule dispatch, aggregation.

Public entry points:

* :func:`lint_paths` — lint files/directories, returning a
  :class:`LintReport` (what the CLI and CI gate consume);
* :func:`lint_source` — lint one in-memory module (what the rule unit
  tests use);
* :class:`Linter` — the configurable core, for callers that want rule
  subsets or severity overrides.

The engine is deterministic by construction: files are visited in
sorted order and findings are sorted by (path, line, col, rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity, SourceFile
from repro.analysis.rules import DEFAULT_RULES, RULES_BY_ID, Rule
from repro.net.errors import ReproError


class AnalysisError(ReproError):
    """The lint engine was misconfigured (unknown rule, bad path...)."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files that failed to parse: (path, error message).
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """Clean run: no unsuppressed findings and every file parsed."""
        return not self.unsuppressed and not self.parse_errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--json`` reporter schema, v1)."""
        return {
            "schema": "repro.analysis/v1",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": {
                "total": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": [{"path": path, "error": error}
                             for path, error in self.parse_errors],
        }


def _resolve_rules(rule_ids: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    if rule_ids is None:
        return DEFAULT_RULES
    rules: List[Rule] = []
    for rule_id in rule_ids:
        try:
            rules.append(RULES_BY_ID[rule_id])
        except KeyError:
            known = ", ".join(sorted(RULES_BY_ID))
            raise AnalysisError(
                f"unknown rule {rule_id!r}; known rules: {known}") from None
    return tuple(rules)


class Linter:
    """Runs a rule set over source files.

    Parameters
    ----------
    rules:
        Rule instances to run (default: all of ``DEFAULT_RULES``).
    severity_overrides:
        Optional ``rule_id -> Severity`` remapping, e.g. demoting a
        rule to :attr:`Severity.WARNING` during a migration.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 severity_overrides: Optional[Dict[str, Severity]] = None
                 ) -> None:
        self.rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else DEFAULT_RULES)
        self.severity_overrides: Dict[str, Severity] = dict(
            severity_overrides or {})

    def lint_text(self, text: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory module; raises SyntaxError on bad input."""
        source = SourceFile.parse(path, text)
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(source):
                override = self.severity_overrides.get(finding.rule_id)
                if override is not None and override != finding.severity:
                    finding = Finding(
                        path=finding.path, line=finding.line,
                        col=finding.col, rule_id=finding.rule_id,
                        severity=override, message=finding.message,
                        suppressed=finding.suppressed)
                findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_paths(self, paths: Iterable[str]) -> LintReport:
        """Lint every ``.py`` file under *paths* (files or directories)."""
        report = LintReport()
        for file_path in collect_files(paths):
            report.files_checked += 1
            try:
                text = file_path.read_text(encoding="utf-8")
                findings = self.lint_text(text, file_path.as_posix())
            except SyntaxError as exc:
                report.parse_errors.append(
                    (file_path.as_posix(), f"syntax error: {exc.msg} "
                     f"(line {exc.lineno})"))
                continue
            except OSError as exc:
                report.parse_errors.append(
                    (file_path.as_posix(), f"unreadable: {exc}"))
                continue
            report.findings.extend(findings)
        report.findings.sort(key=Finding.sort_key)
        return report


def collect_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen = set()
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {raw!r}")
        candidates = ([path] if path.is_file()
                      else sorted(path.rglob("*.py")))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            key = candidate.resolve().as_posix()
            if key in seen:
                continue
            seen.add(key)
            collected.append(candidate)
    collected.sort(key=lambda p: p.as_posix())
    return collected


def lint_paths(paths: Iterable[str],
               rule_ids: Optional[Sequence[str]] = None) -> LintReport:
    """Lint files/directories with the named rules (default: all)."""
    return Linter(rules=_resolve_rules(rule_ids)).lint_paths(paths)


def lint_source(text: str, path: str = "src/repro/_inline.py",
                rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string — the unit-test entry point.

    The default *path* places the module inside the library tree so
    path-scoped rules (D1/D2/D4/D5) apply; pass an explicit path such
    as ``"src/repro/routing/_inline.py"`` to exercise D3.
    """
    return Linter(rules=_resolve_rules(rule_ids)).lint_text(text, path)
