"""The lint engine: file collection, rule dispatch, aggregation.

Public entry points:

* :func:`lint_paths` — per-file rules over files/directories, returning
  a :class:`LintReport` (what the CLI and CI gate consume);
* :func:`lint_project` — the two-pass whole-program analysis: per-file
  rules plus the C/P/S project rules over a shared
  :class:`~repro.analysis.project.ProjectIndex`;
* :func:`lint_source` / :func:`lint_project_sources` — in-memory
  variants for unit tests;
* :class:`Linter` — the configurable core, for callers that want rule
  subsets, severity overrides, or parallel parsing (``jobs``).

Each source file is parsed exactly once; the resulting
:class:`~repro.analysis.findings.SourceFile` (tree + suppression map)
is shared by every per-file rule and by the project index.  With
``jobs > 1`` parsing fans out over a process pool; everything after the
parse is deterministic single-process work, so findings are identical
at any job count.  Files are visited in sorted order and findings are
sorted by (path, line, col, rule).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Set,
                    Tuple, Union)

from repro.analysis.baseline import Baseline
from repro.analysis.crules import C_RULES
from repro.analysis.findings import (ALLOW_ALL, AnalysisError, Finding,
                                     Severity, SourceFile)
from repro.analysis.project import ProjectIndex
from repro.analysis.prules import P_RULES
from repro.analysis.rules import (DEFAULT_RULES, RULES_BY_ID, ProjectRule,
                                  Rule)
from repro.analysis.srules import S_RULES

#: Every whole-program rule, in family order — pass 2's default set.
PROJECT_RULES: Tuple[ProjectRule, ...] = C_RULES + P_RULES + S_RULES

#: id -> project rule instance.
PROJECT_RULES_BY_ID: Dict[str, ProjectRule] = {
    rule.rule_id: rule for rule in PROJECT_RULES}

#: The stale-suppression warning's id (engine-level pass, not a Rule).
UNUSED_SUPPRESSION_ID = "W1"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files that failed to parse: (path, error message).
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Baseline entries no current finding matched (stale budget).
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def actionable(self) -> List[Finding]:
        """Findings that demand action: neither suppressed nor baselined."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def ok(self) -> bool:
        """Clean run: no actionable errors and every file parsed.

        Warnings (demoted rules, stale-suppression notices) inform but
        do not gate.
        """
        errors = [f for f in self.actionable
                  if f.severity is Severity.ERROR]
        return not errors and not self.parse_errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.actionable:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--json`` reporter schema, v2)."""
        return {
            "schema": "repro.analysis/v2",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": {
                "total": len(self.findings),
                "actionable": len(self.actionable),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": [{"path": path, "error": error}
                             for path, error in self.parse_errors],
            "stale_baseline": list(self.stale_baseline),
        }


RuleSelection = Tuple[Tuple[Rule, ...], Tuple[ProjectRule, ...]]


def _resolve_rules(rule_ids: Optional[Sequence[str]],
                   project: bool = False) -> RuleSelection:
    """Split requested ids into (per-file rules, project rules).

    With no ids: all defaults (project rules only when *project*).
    """
    if rule_ids is None:
        return DEFAULT_RULES, (PROJECT_RULES if project else ())
    file_rules: List[Rule] = []
    project_rules: List[ProjectRule] = []
    for rule_id in rule_ids:
        if rule_id in RULES_BY_ID:
            file_rules.append(RULES_BY_ID[rule_id])
        elif rule_id in PROJECT_RULES_BY_ID:
            project_rules.append(PROJECT_RULES_BY_ID[rule_id])
        else:
            known = ", ".join(sorted(RULES_BY_ID)
                              + sorted(PROJECT_RULES_BY_ID))
            raise AnalysisError(
                f"unknown rule {rule_id!r}; known rules: {known}") from None
    if project_rules and not project:
        names = ", ".join(r.rule_id for r in project_rules)
        raise AnalysisError(
            f"rule(s) {names} need the project index; run with --project")
    return tuple(file_rules), tuple(project_rules)


def _parse_one(item: Tuple[str, str]
               ) -> Tuple[str, Union[SourceFile, Tuple[str, str]]]:
    """Pool worker: parse one (path, text) into a SourceFile."""
    path, text = item
    try:
        return "ok", SourceFile.parse(path, text)
    except SyntaxError as exc:
        return "error", (path, f"syntax error: {exc.msg} "
                         f"(line {exc.lineno})")


class Linter:
    """Runs a rule set over source files.

    Parameters
    ----------
    rules:
        Per-file rule instances to run (default: ``DEFAULT_RULES``).
    project_rules:
        Whole-program rules for :meth:`lint_project` (default: the
        C/P/S families in ``PROJECT_RULES``).
    severity_overrides:
        Optional ``rule_id -> Severity`` remapping, e.g. demoting a
        rule to :attr:`Severity.WARNING` during a migration.
    jobs:
        Process count for the parse stage (1 = in-process).
    warn_unused_suppressions:
        Emit ``W1`` warnings for ``# repro: allow[...]`` pragmas that
        suppressed nothing.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 project_rules: Optional[Sequence[ProjectRule]] = None,
                 severity_overrides: Optional[Dict[str, Severity]] = None,
                 jobs: int = 1,
                 warn_unused_suppressions: bool = False) -> None:
        self.rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else DEFAULT_RULES)
        self.project_rules: Tuple[ProjectRule, ...] = (
            tuple(project_rules) if project_rules is not None
            else PROJECT_RULES)
        self.severity_overrides: Dict[str, Severity] = dict(
            severity_overrides or {})
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.warn_unused_suppressions = warn_unused_suppressions

    # -- single-file lint ---------------------------------------------------
    def lint_parsed(self, source: SourceFile) -> List[Finding]:
        """Run the per-file rules over one already-parsed module."""
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(source.path):
                continue
            for finding in rule.check(source):
                findings.append(self._override(finding))
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_text(self, text: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory module; raises SyntaxError on bad input."""
        return self.lint_parsed(SourceFile.parse(path, text))

    def _override(self, finding: Finding) -> Finding:
        override = self.severity_overrides.get(finding.rule_id)
        if override is not None and override != finding.severity:
            finding = replace(finding, severity=override)
        return finding

    # -- parsing ------------------------------------------------------------
    def _parse_all(self, texts: Dict[str, str],
                   report: LintReport) -> Dict[str, SourceFile]:
        """Parse every file once (fanned out when ``jobs > 1``)."""
        items = sorted(texts.items())
        if self.jobs > 1 and len(items) > 1:
            with multiprocessing.Pool(processes=self.jobs) as pool:
                results = pool.map(_parse_one, items,
                                   chunksize=max(1, len(items) // (
                                       self.jobs * 4)))
        else:
            results = [_parse_one(item) for item in items]
        sources: Dict[str, SourceFile] = {}
        for status, payload in results:
            if status == "ok":
                assert isinstance(payload, SourceFile)
                sources[payload.path] = payload
            else:
                assert isinstance(payload, tuple)
                report.parse_errors.append(payload)
        return sources

    def _read_files(self, paths: Iterable[str],
                    report: LintReport) -> Dict[str, str]:
        texts: Dict[str, str] = {}
        for file_path in collect_files(paths):
            report.files_checked += 1
            try:
                texts[file_path.as_posix()] = file_path.read_text(
                    encoding="utf-8")
            except OSError as exc:
                report.parse_errors.append(
                    (file_path.as_posix(), f"unreadable: {exc}"))
        return texts

    # -- multi-file lint ----------------------------------------------------
    def lint_paths(self, paths: Iterable[str]) -> LintReport:
        """Lint every ``.py`` file under *paths* (files or directories)."""
        report = LintReport()
        texts = self._read_files(paths, report)
        sources = self._parse_all(texts, report)
        for path in sorted(sources):
            report.findings.extend(self.lint_parsed(sources[path]))
        self._finish(report, sources, project=False)
        return report

    def lint_project(self, paths: Iterable[str],
                     baseline: Optional[Baseline] = None) -> LintReport:
        """Two-pass whole-program lint: per-file rules + C/P/S families."""
        report = LintReport()
        texts = self._read_files(paths, report)
        sources = self._parse_all(texts, report)
        report.findings.extend(self._run_all(sources))
        self._finish(report, sources, project=True, baseline=baseline)
        return report

    def lint_project_sources(self, texts: Mapping[str, str],
                             baseline: Optional[Baseline] = None
                             ) -> LintReport:
        """Whole-program lint over in-memory sources (test entry point).

        Raises :class:`SyntaxError` pass-through as parse errors, same
        as the file-based variant.
        """
        report = LintReport()
        report.files_checked = len(texts)
        sources = self._parse_all(dict(texts), report)
        report.findings.extend(self._run_all(sources))
        self._finish(report, sources, project=True, baseline=baseline)
        return report

    def _run_all(self, sources: Dict[str, SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(sources):
            findings.extend(self.lint_parsed(sources[path]))
        index = ProjectIndex.build(sources)
        for rule in self.project_rules:
            for finding in rule.check(index):
                findings.append(self._override(finding))
        return findings

    def _finish(self, report: LintReport, sources: Dict[str, SourceFile],
                project: bool, baseline: Optional[Baseline] = None) -> None:
        if self.warn_unused_suppressions:
            report.findings.extend(
                self._unused_suppressions(sources, project))
        if baseline is not None:
            report.findings, report.stale_baseline = baseline.apply(
                report.findings)
        report.findings.sort(key=Finding.sort_key)

    # -- stale suppressions -------------------------------------------------
    def _unused_suppressions(self, sources: Dict[str, SourceFile],
                             project: bool) -> List[Finding]:
        """W1: pragmas whose rule fired nowhere in their scope.

        Only pragmas naming rules that actually ran on that file are
        judged (a ``D3`` allow in a file D3 does not apply to is not
        *stale*, it is out of scope for this run); ``allow[*]`` is
        judged against any rule having used it.
        """
        findings: List[Finding] = []
        project_ids = ({rule.rule_id for rule in self.project_rules}
                       if project else set())
        for path in sorted(sources):
            source = sources[path]
            active = {rule.rule_id for rule in self.rules
                      if rule.applies_to(path)} | project_ids
            for line in sorted(source.pragmas):
                for token in sorted(source.pragmas[line]):
                    if token != ALLOW_ALL and token not in active:
                        continue
                    if (line, token) in source.used_allows:
                        continue
                    label = ("allow[*]" if token == ALLOW_ALL
                             else f"allow[{token}]")
                    findings.append(Finding(
                        path=path, line=line, col=0,
                        rule_id=UNUSED_SUPPRESSION_ID,
                        severity=Severity.WARNING,
                        message=f"unused suppression '# repro: {label}': "
                                "no finding of that rule here anymore; "
                                "drop the stale pragma"))
        return findings


def collect_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen = set()
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {raw!r}")
        candidates = ([path] if path.is_file()
                      else sorted(path.rglob("*.py")))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            key = candidate.resolve().as_posix()
            if key in seen:
                continue
            seen.add(key)
            collected.append(candidate)
    collected.sort(key=lambda p: p.as_posix())
    return collected


def lint_paths(paths: Iterable[str],
               rule_ids: Optional[Sequence[str]] = None,
               jobs: int = 1,
               warn_unused_suppressions: bool = False) -> LintReport:
    """Lint files/directories with the named per-file rules."""
    file_rules, _ = _resolve_rules(rule_ids, project=False)
    return Linter(rules=file_rules, jobs=jobs,
                  warn_unused_suppressions=warn_unused_suppressions
                  ).lint_paths(paths)


def lint_project(paths: Iterable[str],
                 rule_ids: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 baseline: Optional[Baseline] = None,
                 warn_unused_suppressions: bool = False) -> LintReport:
    """Whole-program lint: per-file rules plus the C/P/S families."""
    file_rules, project_rules = _resolve_rules(rule_ids, project=True)
    return Linter(rules=file_rules, project_rules=project_rules, jobs=jobs,
                  warn_unused_suppressions=warn_unused_suppressions
                  ).lint_project(paths, baseline=baseline)


def lint_project_sources(texts: Mapping[str, str],
                         rule_ids: Optional[Sequence[str]] = None,
                         baseline: Optional[Baseline] = None,
                         warn_unused_suppressions: bool = False
                         ) -> LintReport:
    """Whole-program lint over in-memory sources (unit-test entry)."""
    file_rules, project_rules = _resolve_rules(rule_ids, project=True)
    return Linter(rules=file_rules, project_rules=project_rules,
                  warn_unused_suppressions=warn_unused_suppressions
                  ).lint_project_sources(texts, baseline=baseline)


def lint_source(text: str, path: str = "src/repro/_inline.py",
                rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string — the unit-test entry point.

    The default *path* places the module inside the library tree so
    path-scoped rules (D1/D2/D4/D5) apply; pass an explicit path such
    as ``"src/repro/routing/_inline.py"`` to exercise D3.
    """
    file_rules, _ = _resolve_rules(rule_ids, project=False)
    return Linter(rules=file_rules).lint_text(text, path)
