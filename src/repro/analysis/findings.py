"""Finding and severity types plus suppression-comment parsing.

A :class:`Finding` is one rule violation at one source location.  The
suppression syntax is a trailing comment::

    picker = random.Random(...)  # repro: allow[D1]

An ``allow`` comment suppresses the named rules on its own line and on
the line immediately after it (so a comment can sit above a long
statement).  Placed on a ``def`` or ``class`` line, it suppresses the
named rules for the whole scope — the idiom for helpers whose callers
hold the invariant (e.g. a metric-flush method only invoked under an
``obs.enabled`` guard).  ``allow[*]`` suppresses every rule.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Dict, List, Set


class Severity(enum.Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    suppressed: bool = False

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule_id, "severity": self.severity.value,
                "message": self.message, "suppressed": self.suppressed}

    def format(self) -> str:
        flag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}{flag}")


#: ``# repro: allow[D1]`` / ``# repro: allow[D1, D3]`` / ``# repro: allow[*]``
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: Matches every rule id in an ``allow[*]`` comment.
ALLOW_ALL = "*"


def parse_allow_comments(text: str) -> Dict[int, Set[str]]:
    """Line number (1-based) -> rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if rules:
            allowed[lineno] = rules
    return allowed


@dataclass
class SourceFile:
    """One parsed module handed to every rule: path, text, tree, allows."""

    path: str
    text: str
    tree: ast.Module
    #: Per-line suppressions, scope suppressions already expanded.
    allow: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=path)
        allow = parse_allow_comments(text)
        _expand_scope_allows(tree, allow)
        return cls(path=path, text=text, tree=tree, allow=allow)

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """Is *rule_id* suppressed at *line* (same line or the one above)?"""
        for candidate in (line, line - 1):
            rules = self.allow.get(candidate)
            if rules and (rule_id in rules or ALLOW_ALL in rules):
                return True
        return False


def _expand_scope_allows(tree: ast.Module,
                         allow: Dict[int, Set[str]]) -> None:
    """An allow on a ``def``/``class`` line covers the whole scope."""
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    for node in ast.walk(tree):
        if not isinstance(node, scope_nodes):
            continue
        rules = allow.get(node.lineno)
        if not rules:
            continue
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        for line in range(node.lineno, end + 1):
            allow.setdefault(line, set()).update(rules)
