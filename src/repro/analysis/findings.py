"""Finding and severity types plus suppression-comment parsing.

A :class:`Finding` is one rule violation at one source location.  The
suppression syntax is a trailing comment::

    picker = random.Random(...)  # repro: allow[D1]

An ``allow`` comment suppresses the named rules on its own line and on
the line immediately after it (so a comment can sit above a long
statement).  Placed on a ``def`` or ``class`` line, it suppresses the
named rules for the whole scope — the idiom for helpers whose callers
hold the invariant (e.g. a metric-flush method only invoked under an
``obs.enabled`` guard).  ``allow[*]`` suppresses every rule.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.net.errors import ReproError


class AnalysisError(ReproError):
    """The lint engine was misconfigured (unknown rule, bad path...)."""


class Severity(enum.Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    suppressed: bool = False
    #: ``True`` when a committed baseline entry absorbs this finding.
    baselined: bool = False

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule_id, "severity": self.severity.value,
                "message": self.message, "suppressed": self.suppressed,
                "baselined": self.baselined}

    def format(self) -> str:
        flag = ""
        if self.suppressed:
            flag = " (suppressed)"
        elif self.baselined:
            flag = " (baselined)"
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}{flag}")


#: Pragma shapes: ``allow[D1]``, ``allow[D1, D3]``, ``allow[*]``, each
#: in a trailing comment after the ``repro:`` marker.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: Matches every rule id in an ``allow[*]`` comment.
ALLOW_ALL = "*"


def parse_allow_comments(text: str) -> Dict[int, Set[str]]:
    """Line number (1-based) -> rule ids allowed on that line.

    Only genuine ``#`` comments count: a pragma *mentioned* in a
    docstring or string literal neither suppresses anything nor trips
    the unused-suppression warning.
    """
    allowed: Dict[int, Set[str]] = {}
    for lineno, comment in _comment_lines(text):
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if rules:
            allowed[lineno] = rules
    return allowed


def _comment_lines(text: str) -> Iterator[Tuple[int, str]]:
    """(lineno, comment text) for every real comment token in *text*.

    Falls back to a whole-line regex scan if tokenization fails — on
    files that do not parse, over-matching beats losing suppressions.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for lineno, line in enumerate(text.splitlines(), start=1):
            yield lineno, line
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


@dataclass
class SourceFile:
    """One parsed module handed to every rule: path, text, tree, allows."""

    path: str
    text: str
    tree: ast.Module
    #: Per-line suppressions, scope suppressions already expanded.
    allow: Dict[int, Set[str]] = field(default_factory=dict)
    #: Raw pragma comments as written: line -> tokens (rule ids or ``*``).
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: Effective line -> token -> pragma lines the token expanded from.
    allow_origins: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)
    #: ``(pragma_line, token)`` pairs that suppressed at least one finding.
    used_allows: Set[Tuple[int, str]] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=path)
        pragmas = parse_allow_comments(text)
        allow = {line: set(tokens) for line, tokens in pragmas.items()}
        origins = {line: {token: {line} for token in tokens}
                   for line, tokens in pragmas.items()}
        _expand_scope_allows(tree, allow, origins)
        return cls(path=path, text=text, tree=tree, allow=allow,
                   pragmas=pragmas, allow_origins=origins)

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """Is *rule_id* suppressed at *line* (same line or the one above)?

        A hit also records which pragma satisfied it, so the engine's
        ``--warn-unused-suppressions`` pass can flag the stale ones.
        """
        hit = False
        for candidate in (line, line - 1):
            rules = self.allow.get(candidate)
            if not rules:
                continue
            origins = self.allow_origins.get(candidate, {})
            for token in (rule_id, ALLOW_ALL):
                if token in rules:
                    hit = True
                    for pragma_line in origins.get(token, ()):
                        self.used_allows.add((pragma_line, token))
        return hit


def _expand_scope_allows(tree: ast.Module, allow: Dict[int, Set[str]],
                         origins: Dict[int, Dict[str, Set[int]]]) -> None:
    """An allow on a ``def``/``class`` line covers the whole scope."""
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    for node in ast.walk(tree):
        if not isinstance(node, scope_nodes):
            continue
        rules = allow.get(node.lineno)
        if not rules:
            continue
        tokens = set(rules)
        # Tokens already expanded onto this line (e.g. from an enclosing
        # class pragma) keep their original pragma line as origin.
        source_origins = dict(origins.get(node.lineno, {}))
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        for line in range(node.lineno, end + 1):
            allow.setdefault(line, set()).update(tokens)
            per_line = origins.setdefault(line, {})
            for token in tokens:
                per_line.setdefault(token, set()).update(
                    source_origins.get(token, {node.lineno}))
