"""Pass 1 of the whole-program analyzer: the project index.

:class:`ProjectIndex` is built once per ``lint --project`` run from the
same parsed :class:`~repro.analysis.findings.SourceFile` objects the
per-file rules consume (one parse per file, shared everywhere).  It
holds everything the C/P/S rule families (pass 2) need:

* the **module table** — imports, module-level constants, module-level
  mutable containers, classes, and every function (nested ones
  included) with its raw call sites;
* the **call graph** — name-based and deliberately over-approximate:
  a ``self.x()`` call resolves through the class's base chain, a bare
  name through module scope and imports, and an ``obj.x()`` call to
  *every* project function named ``x`` (we would rather follow an edge
  that cannot happen than miss one that can);
* **workload roots** — runners registered through
  :func:`repro.experiments.base.register`, in both the decorator form
  and the ``register(...)(factory(...))`` form (factory-returned nested
  runners are resolved to the nested function);
* **emitters and validators** keyed by schema version string — every
  dict literal carrying a resolvable ``"schema"`` key, and every
  function that compares a document's ``schema`` entry against a
  schema constant, with the keys it requires/accepts extracted
  structurally.

The index is pure data plus closure helpers; rules stay small.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.analysis.findings import SourceFile

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Modules whose ``register`` symbol marks a workload root.
_REGISTER_MODULES = frozenset({"repro.experiments", "repro.experiments.base"})

#: Call names that construct leak-prone resources (closure-capture rule).
RESOURCE_FACTORIES = frozenset({
    "open", "Tracer", "for_cell", "Pool", "ThreadPool",
    "ProcessPoolExecutor", "ThreadPoolExecutor", "TemporaryFile",
    "NamedTemporaryFile",
})

#: Method names that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "remove", "discard", "clear", "extend", "insert",
})

#: Constructor calls whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path (``src/`` prefixes stripped).

    ``src/repro/net/network.py`` -> ``repro.net.network``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``.
    """
    parts = list(PurePosixPath(path.replace("\\", "/")).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<module>"


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


@dataclass
class CallSite:
    """One call expression inside a function, pre-resolution."""

    node: ast.Call
    #: Terminal callee name (``f`` for ``f()``, ``m`` for ``a.b.m()``).
    name: str
    #: ``True`` when the callee is a bare ``Name`` (not an attribute).
    is_bare: bool
    #: Receiver's terminal name for attribute calls (``''`` otherwise).
    receiver: str
    #: ``True`` when the receiver chain starts at ``self``/``cls``.
    via_self: bool


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in the project."""

    key: str
    module: str
    path: str
    name: str
    qual: str
    node: ast.AST
    class_name: Optional[str] = None
    parent: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    #: Names bound locally (params, assignments, loop/with targets).
    local_names: Set[str] = field(default_factory=set)
    #: Names declared ``global`` in this function.
    global_decls: Set[str] = field(default_factory=set)
    #: Keys of nested functions defined directly inside this one.
    nested: List[str] = field(default_factory=list)
    #: Function names returned by ``return <name>`` statements.
    returned_names: Set[str] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class: its methods, attribute table, and base-name chain."""

    key: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attrs: Set[str] = field(default_factory=set)


@dataclass
class EmitterInfo:
    """A dict literal that stamps a ``"schema"`` version tag."""

    module: str
    path: str
    schema: str
    node: ast.Dict
    function: Optional[str]
    keys: Set[str] = field(default_factory=set)
    #: ``True`` when the literal has ``**spread`` or computed keys, in
    #: which case the key set is a lower bound and S-rules stand down.
    dynamic: bool = False


@dataclass
class ValidatorInfo:
    """A function that structurally validates one (or more) schemas."""

    module: str
    path: str
    function: str
    node: ast.AST
    schemas: Tuple[str, ...]
    #: Keys the validator unconditionally dereferences — an emitter for
    #: the schema that omits one of these is a drift bug.
    required: Set[str] = field(default_factory=set)
    #: Keys referenced with defaults / None-guards / in branches.
    optional: Set[str] = field(default_factory=set)
    #: Keys known only through helper calls or call-site strings.
    known: Set[str] = field(default_factory=set)
    #: ``True`` when the validator iterates ``doc.items()``/``keys()``
    #: — an open schema, so unknown emitter keys are fine.
    open_schema: bool = False

    def all_known(self) -> Set[str]:
        return self.required | self.optional | self.known


@dataclass
class ModuleInfo:
    """Everything indexed about one source module."""

    name: str
    path: str
    source: SourceFile
    #: Local alias -> (module, symbol-or-None).  ``import a.b as c``
    #: maps ``c -> ("a.b", None)``; ``from m import f as g`` maps
    #: ``g -> ("m", "f")``.
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    #: Module-level simple assignments, for constant resolution.
    const_nodes: Dict[str, ast.expr] = field(default_factory=dict)
    #: Module-level names bound to mutable containers -> lineno.
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level function names referenced as values (first-class).
    escaped: Set[str] = field(default_factory=set)
    #: Raw call nodes at module level (registration scans need them).
    module_calls: List[ast.Call] = field(default_factory=list)


class ProjectIndex:
    """The whole-program index (pass 1)."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: function name -> keys of every project function with it.
        self.functions_by_name: Dict[str, List[str]] = {}
        #: Resolved call graph and its reverse.
        self.calls_out: Dict[str, Set[str]] = {}
        self.calls_in: Dict[str, Set[str]] = {}
        #: Registered workload-runner function keys.
        self.workload_roots: Set[str] = set()
        #: schema tag -> emitters / validators.
        self.emitters: Dict[str, List[EmitterInfo]] = {}
        self.validators: Dict[str, List[ValidatorInfo]] = {}
        #: (module, name) of module mutables mutated in place anywhere.
        self.mutated_globals: Set[Tuple[str, str]] = set()

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, sources: Mapping[str, SourceFile]) -> "ProjectIndex":
        """Index *sources* (path -> parsed file, shared with pass 2)."""
        index = cls()
        for path in sorted(sources):
            index._index_module(path, sources[path])
        index._link()
        return index

    def _index_module(self, path: str, source: SourceFile) -> None:
        name = module_name_for_path(path)
        info = ModuleInfo(name=name, path=path, source=source)
        self.modules[name] = info
        self.by_path[path] = info
        _ModuleIndexer(self, info).run()

    def _link(self) -> None:
        """Resolve calls, roots, emitters, and validators (needs every
        module indexed first)."""
        for info in self.functions.values():
            self.functions_by_name.setdefault(info.name, []).append(info.key)
        for keys in self.functions_by_name.values():
            keys.sort()
        self._resolve_calls()
        self._find_workload_roots()
        self._find_emitters()
        self._find_validators()
        self._find_mutated_globals()

    # -- constant resolution ------------------------------------------------
    def resolve_const(self, module: str, expr: Optional[ast.expr],
                      depth: int = 0) -> object:
        """Best-effort constant value of *expr* in *module*'s scope.

        Follows module-level assignments and imports up to a small
        depth; returns ``None`` when the value cannot be determined
        statically.  Containers resolve element-wise with unresolvable
        elements dropped (enough for schema-tag tuples).
        """
        if expr is None or depth > 6:
            return None
        if isinstance(expr, ast.Constant):
            return expr.value
        mod = self.modules.get(module)
        if mod is None:
            return None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            values = [self.resolve_const(module, element, depth + 1)
                      for element in expr.elts]
            return tuple(v for v in values if v is not None)
        if isinstance(expr, ast.Name):
            if expr.id in mod.const_nodes:
                return self.resolve_const(module, mod.const_nodes[expr.id],
                                          depth + 1)
            target = mod.imports.get(expr.id)
            if target is not None and target[1] is not None:
                other = self.modules.get(target[0])
                if other is not None and target[1] in other.const_nodes:
                    return self.resolve_const(
                        other.name, other.const_nodes[target[1]], depth + 1)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value,
                                                          ast.Name):
            target = mod.imports.get(expr.value.id)
            if target is not None and target[1] is None:
                other = self.modules.get(target[0])
                if other is not None and expr.attr in other.const_nodes:
                    return self.resolve_const(
                        other.name, other.const_nodes[expr.attr], depth + 1)
        return None

    def resolve_field_table(self, module: str,
                            name: str) -> Optional[List[str]]:
        """First elements of a module-level tuple-of-tuples table.

        Resolves the ``_FIELDS = (("name", types, nullable), ...)``
        idiom the hand-rolled validators use; the non-constant columns
        (type objects) are ignored.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        node = mod.const_nodes.get(name)
        if node is None:
            target = mod.imports.get(name)
            if target is not None and target[1] is not None:
                other = self.modules.get(target[0])
                if other is not None:
                    return self.resolve_field_table(other.name, target[1])
            return None
        if not isinstance(node, (ast.Tuple, ast.List)):
            return None
        fields: List[str] = []
        for element in node.elts:
            if (isinstance(element, (ast.Tuple, ast.List)) and element.elts
                    and isinstance(element.elts[0], ast.Constant)
                    and isinstance(element.elts[0].value, str)):
                fields.append(element.elts[0].value)
        return fields or None

    # -- call graph ---------------------------------------------------------
    def _resolve_calls(self) -> None:
        for key in self.functions:
            self.calls_out.setdefault(key, set())
            self.calls_in.setdefault(key, set())
        for info in self.functions.values():
            out = self.calls_out[info.key]
            for nested in info.nested:
                out.add(nested)
            for call in info.calls:
                for target in self._resolve_call(info, call):
                    out.add(target)
            out.discard(info.key)
            for target in out:
                self.calls_in.setdefault(target, set()).add(info.key)

    def _resolve_call(self, caller: FunctionInfo,
                      call: CallSite) -> Iterable[str]:
        mod = self.modules[caller.module]
        if call.is_bare:
            return self._resolve_bare_call(caller, mod, call)
        if call.via_self and caller.class_name is not None:
            found = self._resolve_self_call(mod, caller.class_name, call.name)
            if found is not None:
                return [found]
        receiver_target = mod.imports.get(call.receiver)
        if receiver_target is not None and receiver_target[1] is None:
            other = self.modules.get(receiver_target[0])
            if other is not None:
                target_key = f"{other.name}:{call.name}"
                if target_key in self.functions:
                    return [target_key]
                if call.name in other.classes:
                    init = other.classes[call.name].methods.get("__init__")
                    return [init] if init else []
        # Over-approximate: any project *method or nested function* with
        # this name.  Module-level functions are excluded on purpose —
        # they are only ever reached through imports, which the exact
        # branches above resolve; linking `obj.run()` to every plain
        # function named ``run`` would wire unrelated subsystems
        # together and drown the P-rules in phantom paths.
        return [key for key in self.functions_by_name.get(call.name, [])
                if self.functions[key].class_name is not None
                or self.functions[key].parent is not None]

    def _resolve_bare_call(self, caller: FunctionInfo, mod: ModuleInfo,
                           call: CallSite) -> Iterable[str]:
        name = call.name
        # A sibling nested function or the enclosing scope's nested defs.
        scope: Optional[FunctionInfo] = caller
        while scope is not None:
            for nested_key in scope.nested:
                if self.functions[nested_key].name == name:
                    return [nested_key]
            scope = (self.functions.get(scope.parent)
                     if scope.parent else None)
        module_key = f"{mod.name}:{name}"
        if module_key in self.functions:
            return [module_key]
        if name in mod.classes:
            init = mod.classes[name].methods.get("__init__")
            return [init] if init else []
        target = mod.imports.get(name)
        if target is not None and target[1] is not None:
            other = self.modules.get(target[0])
            if other is not None:
                imported_key = f"{other.name}:{target[1]}"
                if imported_key in self.functions:
                    return [imported_key]
                if target[1] in other.classes:
                    init = other.classes[target[1]].methods.get("__init__")
                    return [init] if init else []
            return []
        if name in caller.local_names:
            # First-class callable: fall back to functions that escape
            # as values in this module (factories, workload tables).
            return self._escaped_keys(mod)
        return []

    def _escaped_keys(self, mod: ModuleInfo) -> List[str]:
        keys: List[str] = []
        for info in mod.functions.values():
            if info.name in mod.escaped:
                keys.append(info.key)
        return sorted(keys)

    def _resolve_self_call(self, mod: ModuleInfo, class_name: str,
                           method: str, depth: int = 0) -> Optional[str]:
        if depth > 8:
            return None
        cls = mod.classes.get(class_name)
        if cls is None:
            target = mod.imports.get(class_name)
            if target is not None and target[1] is not None:
                other = self.modules.get(target[0])
                if other is not None:
                    return self._resolve_self_call(other, target[1], method,
                                                   depth + 1)
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            found = self._resolve_self_call(mod, base, method, depth + 1)
            if found is not None:
                return found
        return None

    # -- closures -----------------------------------------------------------
    def callee_closure(self, roots: Iterable[str]) -> Set[str]:
        """*roots* plus everything transitively called from them."""
        return self._closure(roots, self.calls_out)

    def caller_closure(self, roots: Iterable[str]) -> Set[str]:
        """*roots* plus everything that transitively calls them."""
        return self._closure(roots, self.calls_in)

    @staticmethod
    def _closure(roots: Iterable[str],
                 edges: Mapping[str, Set[str]]) -> Set[str]:
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(edges.get(key, ()))
        return seen

    def functions_calling(self, names: FrozenSet[str]) -> Set[str]:
        """Keys of functions containing a direct call to any of *names*
        (terminal-name match, so ``self._on_state_change()`` counts)."""
        found: Set[str] = set()
        for info in self.functions.values():
            for call in info.calls:
                if call.name in names:
                    found.add(info.key)
                    break
        return found

    # -- workload roots -----------------------------------------------------
    def _find_workload_roots(self) -> None:
        for mod in self.modules.values():
            for info in list(mod.functions.values()):
                decorators = getattr(info.node, "decorator_list", [])
                for decorator in decorators:
                    if (isinstance(decorator, ast.Call)
                            and self._is_register_ref(mod, decorator.func)):
                        self.workload_roots.add(info.key)
            calls: List[ast.Call] = list(mod.module_calls)
            for info in mod.functions.values():
                calls.extend(call.node for call in info.calls)
            for call in calls:
                self._scan_register_call(mod, call)

    def _is_register_ref(self, mod: ModuleInfo, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            target = mod.imports.get(func.id)
            return (target is not None and target[1] == "register"
                    and target[0] in _REGISTER_MODULES)
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            target = mod.imports.get(func.value.id)
            if func.attr != "register" or target is None:
                return False
            # ``import repro.experiments.base as base`` or
            # ``from repro.experiments import base``.
            referenced = (target[0] if target[1] is None
                          else f"{target[0]}.{target[1]}")
            return referenced in _REGISTER_MODULES
        return False

    def _scan_register_call(self, mod: ModuleInfo, call: ast.Call) -> None:
        """Handle ``register(...)(runner_or_factory_call)``."""
        if not (isinstance(call.func, ast.Call)
                and self._is_register_ref(mod, call.func.func)):
            return
        if not call.args:
            return
        argument = call.args[0]
        if isinstance(argument, ast.Name):
            key = f"{mod.name}:{argument.id}"
            if key in self.functions:
                self.workload_roots.add(key)
        elif isinstance(argument, ast.Call) and isinstance(argument.func,
                                                           ast.Name):
            factory_key = f"{mod.name}:{argument.func.id}"
            factory = self.functions.get(factory_key)
            if factory is None:
                return
            for nested_key in factory.nested:
                nested = self.functions[nested_key]
                if nested.name in factory.returned_names:
                    self.workload_roots.add(nested_key)

    def runner_reachable(self) -> Set[str]:
        """Function keys reachable from any registered workload runner."""
        return self.callee_closure(self.workload_roots)

    # -- emitters -----------------------------------------------------------
    def _find_emitters(self) -> None:
        for mod in self.modules.values():
            _EmitterScanner(self, mod).run()

    def _find_validators(self) -> None:
        for mod in self.modules.values():
            for info in mod.functions.values():
                validator = _extract_validator(self, mod, info)
                if validator is None:
                    continue
                for schema in validator.schemas:
                    self.validators.setdefault(schema, []).append(validator)

    # -- mutated module globals --------------------------------------------
    def _find_mutated_globals(self) -> None:
        """Record module-level mutables mutated *in place* anywhere.

        Reassignment through ``global`` is excluded on purpose: context
        managers that swap a module default in/out are deterministic
        under the fleet contract, while in-place container mutation
        from a worker is not.
        """
        for mod in self.modules.values():
            for info in mod.functions.values():
                for name in _inplace_mutations(info, mod):
                    self.mutated_globals.add((mod.name, name))


def global_mutable_target(info: FunctionInfo, mod: ModuleInfo,
                          name: str) -> Optional[Tuple[str, str]]:
    """Resolve *name* to a module-level mutable ``(module, name)``.

    Checks the function's own module first, then ``from m import name``
    targets; returns ``None`` for locals and non-mutables.
    """
    if name in info.local_names:
        return None
    if name in mod.mutable_globals:
        return (mod.name, name)
    target = mod.imports.get(name)
    if target is not None and target[1] is not None:
        return (target[0], target[1])
    return None


def _inplace_mutations(info: FunctionInfo, mod: ModuleInfo) -> Set[str]:
    """Names of module-level mutables this function mutates in place."""
    mutated: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)):
                    name = target.value.id
                    if (name not in info.local_names
                            and (name in mod.mutable_globals
                                 or name in info.global_decls)):
                        mutated.add(name)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)):
                name = func.value.id
                if (name not in info.local_names
                        and (name in mod.mutable_globals
                             or name in info.global_decls)):
                    mutated.add(name)
    return mutated


# ---------------------------------------------------------------------------
# module indexing walk
# ---------------------------------------------------------------------------


class _ModuleIndexer:
    """One recursive walk building a :class:`ModuleInfo`."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo) -> None:
        self.index = index
        self.mod = mod

    def run(self) -> None:
        tree = self.mod.source.tree
        self._index_imports(tree)
        self._index_module_level(tree)
        for stmt in tree.body:
            self._walk_stmt(stmt, class_name=None, qual_prefix="",
                            parent=None)
        self._index_escapes(tree)

    # -- imports and constants ---------------------------------------------
    def _index_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.mod.imports[bound] = (target, None)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = self.mod.name.split(".")
                    # level 1 = current package; strip one extra part
                    # when this module is not itself a package __init__.
                    if not self.mod.path.endswith("__init__.py"):
                        prefix_parts = prefix_parts[:-1]
                    for _ in range(node.level - 1):
                        prefix_parts = prefix_parts[:-1]
                    base = ".".join(prefix_parts + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.mod.imports[bound] = (base, alias.name)

    def _index_module_level(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                           ast.Call):
                self.mod.module_calls.append(stmt.value)
                for call in ast.walk(stmt.value):
                    if isinstance(call, ast.Call) and call is not stmt.value:
                        self.mod.module_calls.append(call)
                continue
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.mod.const_nodes[target.id] = value
                if _is_mutable_value(value):
                    self.mod.mutable_globals[target.id] = stmt.lineno
            for call in ast.walk(value):
                if isinstance(call, ast.Call):
                    self.mod.module_calls.append(call)

    # -- scope walk ---------------------------------------------------------
    def _walk_stmt(self, stmt: ast.stmt, class_name: Optional[str],
                   qual_prefix: str, parent: Optional[str]) -> None:
        if isinstance(stmt, _FUNCTION_NODES):
            self._index_function(stmt, class_name, qual_prefix, parent)
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(stmt, qual_prefix)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._walk_stmt(child, class_name, qual_prefix, parent)

    def _index_class(self, node: ast.ClassDef, qual_prefix: str) -> None:
        qual = f"{qual_prefix}{node.name}"
        cls = ClassInfo(key=f"{self.mod.name}:{qual}", module=self.mod.name,
                        name=node.name, node=node,
                        bases=[_terminal_name(base) for base in node.bases
                               if _terminal_name(base)])
        self.mod.classes[node.name] = cls
        self.index.classes[cls.key] = cls
        for stmt in node.body:
            if isinstance(stmt, _FUNCTION_NODES):
                info = self._index_function(stmt, node.name, f"{qual}.",
                                            parent=None)
                cls.methods[stmt.name] = info.key
                for sub in ast.walk(stmt):
                    if (isinstance(sub, (ast.Assign, ast.AnnAssign))
                            and _self_attr_targets(sub)):
                        cls.attrs.update(_self_attr_targets(sub))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                                ast.Name):
                cls.attrs.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.attrs.add(target.id)

    def _index_function(self, node: ast.AST, class_name: Optional[str],
                        qual_prefix: str,
                        parent: Optional[str]) -> FunctionInfo:
        name = getattr(node, "name", "<lambda>")
        qual = f"{qual_prefix}{name}"
        key = f"{self.mod.name}:{qual}"
        info = FunctionInfo(key=key, module=self.mod.name, path=self.mod.path,
                            name=name, qual=qual, node=node,
                            class_name=class_name, parent=parent)
        self.mod.functions[key] = info
        self.index.functions[key] = info
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                info.local_names.add(arg.arg)
            if args.vararg:
                info.local_names.add(args.vararg.arg)
            if args.kwarg:
                info.local_names.add(args.kwarg.arg)
        self._scan_scope(info, node, class_name, qual)
        return info

    def _scan_scope(self, info: FunctionInfo, node: ast.AST,
                    class_name: Optional[str], qual: str) -> None:
        body: Sequence[ast.stmt] = getattr(node, "body", [])
        stack: List[ast.AST] = list(body)
        while stack:
            child = stack.pop()
            if isinstance(child, _FUNCTION_NODES):
                nested = self._index_function(
                    child, class_name, f"{qual}.<locals>.", parent=info.key)
                info.nested.append(nested.key)
                info.local_names.add(nested.name)
                continue
            if isinstance(child, ast.ClassDef):
                info.local_names.add(child.name)
                continue  # local classes: rare, skipped
            if isinstance(child, ast.Lambda):
                # Lambdas stay part of the enclosing function's scope;
                # their calls count as the enclosing function's calls.
                stack.append(child.body)
                continue
            if isinstance(child, ast.Global):
                info.global_decls.update(child.names)
            elif isinstance(child, ast.Call):
                info.calls.append(_call_site(child))
            elif isinstance(child, ast.Return) and isinstance(child.value,
                                                              ast.Name):
                info.returned_names.add(child.value.id)
            for target_holder in _binding_targets(child):
                info.local_names.update(_flat_names(target_holder))
            stack.extend(ast.iter_child_nodes(child))

    def _index_escapes(self, tree: ast.Module) -> None:
        call_funcs = {id(node.func) for node in ast.walk(tree)
                      if isinstance(node, ast.Call)}
        function_names = {info.name for info in self.mod.functions.values()}
        for node in ast.walk(tree):
            if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                    and node.id in function_names
                    and id(node) not in call_funcs):
                self.mod.escaped.add(node.id)


def _call_site(node: ast.Call) -> CallSite:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite(node=node, name=func.id, is_bare=True, receiver="",
                        via_self=False)
    if isinstance(func, ast.Attribute):
        receiver = func.value
        root = receiver
        while isinstance(root, ast.Attribute):
            root = root.value
        via_self = isinstance(root, ast.Name) and root.id in ("self", "cls")
        return CallSite(node=node, name=func.attr, is_bare=False,
                        receiver=_terminal_name(receiver), via_self=via_self)
    return CallSite(node=node, name="", is_bare=False, receiver="",
                    via_self=False)


def _binding_targets(node: ast.AST) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    if isinstance(node, ast.For):
        return [node.target]
    if isinstance(node, ast.withitem) and node.optional_vars is not None:
        return [node.optional_vars]
    if isinstance(node, ast.comprehension):
        return [node.target]
    if isinstance(node, ast.ExceptHandler) and node.name:
        return []  # handler names: strings, handled below
    return []


def _flat_names(target: ast.expr) -> Set[str]:
    """Names a binding target actually binds.

    ``x[k] = v`` and ``x.a = v`` mutate an existing object rather than
    binding ``x``, so subscript/attribute targets contribute nothing.
    """
    names: Set[str] = set()
    stack: List[ast.expr] = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
    return names


def _self_attr_targets(stmt: ast.AST) -> Set[str]:
    attrs: Set[str] = set()
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            attrs.add(target.attr)
    return attrs


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _terminal_name(value.func) in _MUTABLE_FACTORIES
    return False


# ---------------------------------------------------------------------------
# emitter extraction
# ---------------------------------------------------------------------------


class _EmitterScanner:
    """Find schema-stamped dict literals and their augmented keys."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo) -> None:
        self.index = index
        self.mod = mod

    def run(self) -> None:
        for info in self.mod.functions.values():
            for node in self._own_nodes(info.node):
                if isinstance(node, ast.Dict):
                    self._check_dict(node, info)

    def _own_nodes(self, func_node: ast.AST) -> Iterable[ast.AST]:
        stack: List[ast.AST] = list(
            ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_dict(self, node: ast.Dict, info: FunctionInfo) -> None:
        schema: Optional[str] = None
        keys: Set[str] = set()
        dynamic = False
        for key_node, value_node in zip(node.keys, node.values):
            if key_node is None:  # ** spread
                dynamic = True
                continue
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                dynamic = True
                continue
            keys.add(key_node.value)
            if key_node.value == "schema":
                resolved = self.index.resolve_const(self.mod.name, value_node)
                if isinstance(resolved, str):
                    schema = resolved
        if schema is None:
            return
        emitter = EmitterInfo(module=self.mod.name, path=self.mod.path,
                              schema=schema, node=node, function=info.key,
                              keys=keys, dynamic=dynamic)
        self._augment(emitter, node, info)
        self.index.emitters.setdefault(schema, []).append(emitter)

    def _augment(self, emitter: EmitterInfo, node: ast.Dict,
                 info: FunctionInfo) -> None:
        """Fold ``doc["k"] = ...`` augmentations on the literal's name."""
        bound: Optional[str] = None
        for candidate in self._own_nodes(info.node):
            if (isinstance(candidate, ast.Assign)
                    and candidate.value is node
                    and len(candidate.targets) == 1
                    and isinstance(candidate.targets[0], ast.Name)):
                bound = candidate.targets[0].id
            elif (isinstance(candidate, ast.AnnAssign)
                    and candidate.value is node
                    and isinstance(candidate.target, ast.Name)):
                bound = candidate.target.id
        if bound is None:
            return
        for candidate in self._own_nodes(info.node):
            if isinstance(candidate, ast.Assign):
                for target in candidate.targets:
                    key = _const_subscript_key(target, bound)
                    if key is not None:
                        emitter.keys.add(key)
            elif isinstance(candidate, ast.Call):
                func = candidate.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == bound
                        and func.attr == "setdefault"
                        and candidate.args
                        and isinstance(candidate.args[0], ast.Constant)
                        and isinstance(candidate.args[0].value, str)):
                    emitter.keys.add(candidate.args[0].value)


def _const_subscript_key(target: ast.expr, bound: str) -> Optional[str]:
    if (isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id == bound
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)):
        return target.slice.value
    return None


# ---------------------------------------------------------------------------
# validator extraction
# ---------------------------------------------------------------------------


def _extract_validator(index: ProjectIndex, mod: ModuleInfo,
                       info: FunctionInfo) -> Optional[ValidatorInfo]:
    """Recognize a structural validator and extract its key sets.

    A validator is a function that compares a document's ``schema``
    entry (``doc.get("schema")`` / ``doc["schema"]``, possibly through
    a local name) against one or more schema version strings.  Key
    references on the document variable are then classified:

    * ``doc["k"]`` / ``"k" in doc`` / bare ``doc.get("k")`` at the
      function's unconditional level -> **required**;
    * ``doc.get("k", default)``, accesses inside ``if`` branches, and
      gets whose result is ``is None``-guarded -> **optional**;
    * keys only seen through same-module helper calls (or string
      literals passed alongside the doc) -> **known**;
    * field tables (``for name, ... in _FIELDS:`` + ``doc[name]``)
      resolve to **required** keys.
    """
    finder = _SchemaCompareFinder(index, mod)
    finder.visit_function(info.node)
    if finder.doc_var is None or not finder.schemas:
        return None
    validator = ValidatorInfo(module=mod.name, path=mod.path,
                              function=info.key, node=info.node,
                              schemas=tuple(sorted(set(finder.schemas))))
    collector = _DocKeyCollector(index, mod, info, finder.doc_var, validator)
    collector.run()
    return validator


class _SchemaCompareFinder:
    """Locate the schema comparison that marks a validator.

    A validator may compare several variables against schema tags (the
    fleet validator also checks its *embedded* matrix document), so the
    matches are grouped per variable and the function's own parameter
    wins — a validator validates what it was handed.
    """

    def __init__(self, index: ProjectIndex, mod: ModuleInfo) -> None:
        self.index = index
        self.mod = mod
        self.doc_var: Optional[str] = None
        self.schemas: List[str] = []
        #: local name -> doc var it was read from (``s = doc.get("schema")``).
        self._schema_locals: Dict[str, str] = {}
        #: (first lineno, var) -> schema strings compared against it.
        self._matches: List[Tuple[int, str, List[str]]] = []

    def visit_function(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                self._note_assignment(child)
        for child in ast.walk(node):
            if isinstance(child, ast.Compare):
                self._check_compare(child)
        self._choose(node)

    def _choose(self, node: ast.AST) -> None:
        if not self._matches:
            return
        self._matches.sort(key=lambda match: match[0])
        params: List[str] = []
        args = getattr(node, "args", None)
        if args is not None:
            params = [arg.arg for arg in
                      (list(args.posonlyargs) + list(args.args)
                       + list(args.kwonlyargs))]
        chosen = self._matches[0][1]
        for _, var, _ in self._matches:
            if var in params:
                chosen = var
                break
        self.doc_var = chosen
        for _, var, values in self._matches:
            if var == chosen:
                self.schemas.extend(values)

    def _note_assignment(self, stmt: ast.AST) -> None:
        value = getattr(stmt, "value", None)
        doc = _schema_access_receiver(value)
        if doc is None:
            return
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])  # type: ignore[attr-defined]
        for target in targets:
            if isinstance(target, ast.Name):
                self._schema_locals[target.id] = doc

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        doc: Optional[str] = None
        values: List[str] = []
        for operand in operands:
            receiver = _schema_access_receiver(operand)
            if receiver is not None:
                doc = receiver
                continue
            if (isinstance(operand, ast.Name)
                    and operand.id in self._schema_locals):
                doc = self._schema_locals[operand.id]
                continue
            resolved = self.index.resolve_const(self.mod.name, operand)
            if isinstance(resolved, str):
                values.append(resolved)
            elif isinstance(resolved, tuple):
                values.extend(v for v in resolved if isinstance(v, str))
        if doc is not None and values:
            self._matches.append((getattr(node, "lineno", 0), doc, values))


def _schema_access_receiver(node: Optional[ast.AST]) -> Optional[str]:
    """``doc`` for ``doc.get("schema"[, d])`` / ``doc["schema"]``."""
    if isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "get"
                and isinstance(func.value, ast.Name) and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "schema"):
            return func.value.id
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == "schema"):
        return node.value.id
    return None


class _DocKeyCollector:
    """Classify every key reference on the validator's doc variable."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo,
                 info: FunctionInfo, doc_var: str,
                 validator: ValidatorInfo) -> None:
        self.index = index
        self.mod = mod
        self.info = info
        self.doc_var = doc_var
        self.validator = validator
        #: local names bound from single-arg gets: name -> key.
        self._get_locals: Dict[str, str] = {}
        #: keys provisionally required via bare gets.
        self._bare_gets: Dict[str, bool] = {}

    def run(self) -> None:
        body = getattr(self.info.node, "body", [])
        for stmt in body:
            self._walk(stmt, conditional=False)
        self._demote_none_guarded()
        for key, conditional in self._bare_gets.items():
            target = (self.validator.optional if conditional
                      else self.validator.required)
            target.add(key)

    def _walk(self, node: ast.AST, conditional: bool) -> None:
        if isinstance(node, _FUNCTION_NODES):
            return
        if isinstance(node, ast.If):
            self._scan_expr(node.test, conditional)
            for stmt in node.body:
                self._walk(stmt, True)
            for stmt in node.orelse:
                self._walk(stmt, True)
            return
        if isinstance(node, (ast.For, ast.While, ast.With, ast.Try)):
            for field_name, value in ast.iter_fields(node):
                children = value if isinstance(value, list) else [value]
                for child in children:
                    if isinstance(child, ast.AST):
                        self._walk(child, conditional
                                   or isinstance(node, ast.While))
            return
        self._scan_expr(node, conditional)

    def _scan_expr(self, node: ast.AST, conditional: bool) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._scan_call(child, conditional)
            elif isinstance(child, ast.Subscript):
                self._scan_subscript(child, conditional)
            elif isinstance(child, ast.Compare):
                self._scan_membership(child, conditional)
        self._note_get_locals(node)

    def _scan_call(self, node: ast.Call, conditional: bool) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            if func.value.id == self.doc_var:
                if func.attr in ("items", "keys", "values"):
                    self.validator.open_schema = True
                elif func.attr == "get" and node.args:
                    self._scan_get(node, conditional)
                return
        # Helper call carrying the doc: union the helper's keys as known.
        doc_position: Optional[int] = None
        for position, argument in enumerate(node.args):
            if isinstance(argument, ast.Name) and argument.id == self.doc_var:
                doc_position = position
            elif (isinstance(argument, ast.Constant)
                    and isinstance(argument.value, str)):
                if any(isinstance(a, ast.Name) and a.id == self.doc_var
                       for a in node.args):
                    self.validator.known.add(argument.value)
        if doc_position is not None:
            self._merge_helper(node, doc_position)

    def _scan_get(self, node: ast.Call, conditional: bool) -> None:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            key = first.value
            if len(node.args) >= 2 or node.keywords:
                self.validator.optional.add(key)
                # alias idiom: doc.get("a", doc.get("b")) -> b optional too
                for extra in node.args[1:]:
                    nested = self._nested_get_key(extra)
                    if nested is not None:
                        self.validator.optional.add(nested)
            else:
                previous = self._bare_gets.get(key, True)
                self._bare_gets[key] = previous and conditional
        elif isinstance(first, ast.Name):
            # doc[name]-style table access via a loop variable.
            self._scan_table_access(first.id)

    def _nested_get_key(self, node: ast.expr) -> Optional[str]:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.doc_var
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            return node.args[0].value
        return None

    def _scan_subscript(self, node: ast.Subscript, conditional: bool) -> None:
        if not (isinstance(node.value, ast.Name)
                and node.value.id == self.doc_var):
            return
        if (isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            target = (self.validator.optional if conditional
                      else self.validator.required)
            target.add(node.slice.value)
        elif isinstance(node.slice, ast.Name):
            self._scan_table_access(node.slice.id)

    def _scan_membership(self, node: ast.Compare, conditional: bool) -> None:
        if len(node.ops) != 1 or not isinstance(node.ops[0],
                                                (ast.In, ast.NotIn)):
            return
        if not (isinstance(node.comparators[0], ast.Name)
                and node.comparators[0].id == self.doc_var):
            return
        left = node.left
        if isinstance(left, ast.Constant) and isinstance(left.value, str):
            self.validator.required.add(left.value)
        elif isinstance(left, ast.Name):
            self._scan_table_access(left.id)

    def _scan_table_access(self, loop_name: str) -> None:
        """``for name, ... in _FIELDS: ... doc[name]`` -> required keys."""
        for child in ast.walk(self.info.node):
            if not isinstance(child, ast.For):
                continue
            first_target: Optional[str] = None
            if isinstance(child.target, ast.Name):
                first_target = child.target.id
            elif (isinstance(child.target, ast.Tuple) and child.target.elts
                    and isinstance(child.target.elts[0], ast.Name)):
                first_target = child.target.elts[0].id
            if first_target != loop_name:
                continue
            table_name = _terminal_name(child.iter)
            if not table_name:
                continue
            fields = self.index.resolve_field_table(self.mod.name, table_name)
            if fields:
                self.validator.required.update(fields)

    def _note_get_locals(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if not isinstance(child, (ast.Assign, ast.AnnAssign)):
                continue
            value = getattr(child, "value", None)
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "get"
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id == self.doc_var
                    and value.args
                    and isinstance(value.args[0], ast.Constant)
                    and isinstance(value.args[0].value, str)
                    and len(value.args) == 1 and not value.keywords):
                continue
            targets = (child.targets if isinstance(child, ast.Assign)
                       else [child.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    self._get_locals[target.id] = value.args[0].value

    def _demote_none_guarded(self) -> None:
        """A bare get whose result is None-tested is an optional key."""
        for child in ast.walk(self.info.node):
            if not isinstance(child, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Is, ast.IsNot))
                       for op in child.ops):
                continue
            operands = [child.left] + list(child.comparators)
            has_none = any(isinstance(operand, ast.Constant)
                           and operand.value is None
                           for operand in operands)
            if not has_none:
                continue
            keys: Set[str] = set()
            for operand in operands:
                if isinstance(operand, ast.Name):
                    local_key = self._get_locals.get(operand.id)
                    if local_key is not None:
                        keys.add(local_key)
                else:
                    # Inline form: ``doc.get("k") is not None``.
                    direct = self._bare_get_key(operand)
                    if direct is not None:
                        keys.add(direct)
            for key in keys:
                if key in self._bare_gets:
                    self._bare_gets.pop(key)
                    self.validator.optional.add(key)

    def _bare_get_key(self, node: ast.AST) -> Optional[str]:
        """The key of a one-arg ``doc.get("k")`` call, else ``None``."""
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.doc_var
                and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            return node.args[0].value
        return None

    def _merge_helper(self, call: ast.Call, doc_position: int) -> None:
        helper = self._resolve_helper(call.func)
        if helper is None:
            return
        args = getattr(helper.node, "args", None)
        if args is None:
            return
        params = [arg.arg for arg in
                  (list(args.posonlyargs) + list(args.args))]
        offset = 1 if params and params[0] in ("self", "cls") else 0
        position = doc_position + offset
        if position >= len(params):
            return
        param = params[position]
        for key in _literal_key_refs(helper.node, param):
            self.validator.known.add(key)

    def _resolve_helper(self, func: ast.expr) -> Optional[FunctionInfo]:
        if isinstance(func, ast.Name):
            key = f"{self.mod.name}:{func.id}"
            found = self.index.functions.get(key)
            if found is not None:
                return found
            target = self.mod.imports.get(func.id)
            if target is not None and target[1] is not None:
                return self.index.functions.get(f"{target[0]}:{target[1]}")
            return None
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and self.info.class_name is not None):
            return_key = self.index._resolve_self_call(  # noqa: SLF001
                self.mod, self.info.class_name, func.attr)
            if return_key is not None:
                return self.index.functions.get(return_key)
        return None


def _literal_key_refs(node: ast.AST, var: str) -> Set[str]:
    """Every literal key referenced on *var* inside *node* (any depth)."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if (isinstance(func, ast.Attribute) and func.attr == "get"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == var and child.args
                    and isinstance(child.args[0], ast.Constant)
                    and isinstance(child.args[0].value, str)):
                keys.add(child.args[0].value)
                for extra in child.args[1:]:
                    if (isinstance(extra, ast.Call)
                            and isinstance(extra.func, ast.Attribute)
                            and extra.func.attr == "get"
                            and isinstance(extra.func.value, ast.Name)
                            and extra.func.value.id == var
                            and extra.args
                            and isinstance(extra.args[0], ast.Constant)
                            and isinstance(extra.args[0].value, str)):
                        keys.add(extra.args[0].value)
        elif isinstance(child, ast.Subscript):
            if (isinstance(child.value, ast.Name) and child.value.id == var
                    and isinstance(child.slice, ast.Constant)
                    and isinstance(child.slice.value, str)):
                keys.add(child.slice.value)
        elif isinstance(child, ast.Compare):
            if (len(child.ops) == 1
                    and isinstance(child.ops[0], (ast.In, ast.NotIn))
                    and isinstance(child.comparators[0], ast.Name)
                    and child.comparators[0].id == var
                    and isinstance(child.left, ast.Constant)
                    and isinstance(child.left.value, str)):
                keys.add(child.left.value)
    return keys
