"""P-rules: fleet safety on registered workload-runner call paths.

The PR-8 fleet contract is that a merged ``repro.fleet/v1`` report is
byte-identical at any ``--workers`` count.  That holds only if every
registered ``runner(seed=, params=)`` is *process-pure*: no shared
module state, no captured live resources, no wall-clock values leaking
into artifacts.  These rules walk the pass-1 call graph from every
registration site and flag the three hazard classes on any reachable
function:

* **P1** — module-level mutable state written (``global`` rebinding,
  in-place container mutation) or read when some code in the project
  mutates that container in place.  Worker processes each see their own
  copy; cross-cell state makes merges worker-count-dependent.
* **P2** — a nested function or lambda capturing a live resource
  (open file handle, tracer, process pool) from its enclosing scope.
  Such closures get pickled to workers or outlive the cell teardown.
* **P3** — a wall-clock value stored under an artifact key without
  ``wall_`` in it, so :func:`repro.fleet.engine._strip_wall_metrics`
  (which keys on that substring) cannot strip it before merging.

The reachability set deliberately over-approximates (see
:mod:`repro.analysis.project`): an edge that cannot happen costs a
reviewed suppression, an edge we miss costs a flaky fleet merge.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import (MUTATING_METHODS, RESOURCE_FACTORIES,
                                    FunctionInfo, ModuleInfo, ProjectIndex,
                                    global_mutable_target)
from repro.analysis.rules import ProjectRule, _is_wall_call, _terminal_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Substring marker the fleet's wall-metric stripper keys on.
WALL_MARKER = "wall_"


def _own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """One function's own nodes; nested def/lambda bodies excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNCTION_NODES + (ast.Lambda,)):
            yield child  # the nested callable itself, not its body
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _reachable_functions(index: ProjectIndex) -> List[FunctionInfo]:
    keys = sorted(index.runner_reachable())
    return [index.functions[key] for key in keys]


class ModuleStateRule(ProjectRule):
    """P1: no shared module-level mutable state on runner paths."""

    rule_id = "P1"
    title = "runners touch no module-level mutable state"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for info in _reachable_functions(index):
            mod = index.modules[info.module]
            yield from self._check_global_writes(index, info)
            written: Set[str] = set()
            for name, finding in self._check_inplace(index, info, mod):
                written.add(name)
                yield finding
            # A write site is also a Load of the container name; don't
            # report the same hazard twice.
            yield from self._check_reads(index, info, mod, skip=written)

    def _check_global_writes(self, index: ProjectIndex,
                             info: FunctionInfo) -> Iterator[Finding]:
        if not info.global_decls:
            return
        for node in _own_scope(info.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in info.global_decls):
                    yield self.finding(
                        index, info.path, node,
                        f"'{info.qual}' rebinds module global "
                        f"'{target.id}' and is reachable from a registered "
                        "workload runner; per-worker module state breaks "
                        "worker-count-identical fleet merges")

    def _check_inplace(self, index: ProjectIndex, info: FunctionInfo,
                       mod: ModuleInfo) -> Iterator[Tuple[str, Finding]]:
        for node in _own_scope(info.node):
            name: Optional[str] = None
            what = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)):
                        name = target.value.id
                        what = "subscript-assigns into"
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Name)):
                    name = func.value.id
                    what = f"calls '.{func.attr}(...)' on"
            if name is None:
                continue
            target_global = global_mutable_target(info, mod, name)
            if target_global is None:
                continue
            target_mod = index.modules.get(target_global[0])
            if (target_mod is None
                    or target_global[1] not in target_mod.mutable_globals):
                continue
            yield name, self.finding(
                index, info.path, node,
                f"'{info.qual}' {what} module-level mutable "
                f"'{target_global[0]}.{target_global[1]}' on a workload-"
                "runner call path; workers each mutate their own copy, so "
                "fleet results depend on cell-to-worker placement")

    def _check_reads(self, index: ProjectIndex, info: FunctionInfo,
                     mod: ModuleInfo,
                     skip: Optional[Set[str]] = None) -> Iterator[Finding]:
        reported: Set[str] = set(skip or ())
        for node in _own_scope(info.node):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                continue
            target_global = global_mutable_target(info, mod, node.id)
            if target_global is None or target_global not in \
                    index.mutated_globals:
                continue
            if node.id in reported:
                continue
            reported.add(node.id)
            yield self.finding(
                index, info.path, node,
                f"'{info.qual}' reads module-level mutable "
                f"'{target_global[0]}.{target_global[1]}', which is mutated "
                "in place elsewhere in the project, on a workload-runner "
                "call path; the value seen depends on what already ran in "
                "this worker process")


class ClosureCaptureRule(ProjectRule):
    """P2: closures on runner paths capture no live resources."""

    rule_id = "P2"
    title = "no tracer/pool/file-handle closure captures"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for info in _reachable_functions(index):
            bindings = self._resource_bindings(info)
            if not bindings:
                continue
            for node in _own_scope(info.node):
                if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                    yield from self._check_closure(index, info, bindings,
                                                   node)

    def _resource_bindings(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> resource factory it was bound from."""
        bindings: Dict[str, str] = {}
        for node in _own_scope(info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Call):
                factory = _terminal_name(node.value.func)
                if factory in RESOURCE_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bindings[target.id] = factory
            elif isinstance(node, ast.withitem):
                if (isinstance(node.context_expr, ast.Call)
                        and node.optional_vars is not None
                        and isinstance(node.optional_vars, ast.Name)):
                    factory = _terminal_name(node.context_expr.func)
                    if factory in RESOURCE_FACTORIES:
                        bindings[node.optional_vars.id] = factory
        return bindings

    def _check_closure(self, index: ProjectIndex, info: FunctionInfo,
                       bindings: Dict[str, str],
                       node: ast.AST) -> Iterator[Finding]:
        free = _free_names(node)
        for name in sorted(free):
            factory = bindings.get(name)
            if factory is None:
                continue
            kind = ("closure" if isinstance(node, _FUNCTION_NODES)
                    else "lambda")
            yield self.finding(
                index, info.path, node,
                f"{kind} in '{info.qual}' captures '{name}' bound from "
                f"'{factory}(...)'; closures on workload-runner paths must "
                "not capture live handles (tracers, pools, open files) — "
                "pass plain data and reopen inside the worker")


def _free_names(node: ast.AST) -> Set[str]:
    """Names loaded in a nested callable but bound outside it."""
    bound: Set[str] = set()
    args = getattr(node, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    loaded: Set[str] = set()
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for child in ast.walk(stmt):
            if isinstance(child, ast.Name):
                if isinstance(child.ctx, ast.Load):
                    loaded.add(child.id)
                else:
                    bound.add(child.id)
            elif isinstance(child, _FUNCTION_NODES):
                bound.add(child.name)
    return loaded - bound


class WallClockArtifactRule(ProjectRule):
    """P3: wall-clock values land only under ``wall_``-marked keys."""

    rule_id = "P3"
    title = "wall-clock artifact entries carry the wall_ marker"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for info in _reachable_functions(index):
            for node in _own_scope(info.node):
                if isinstance(node, ast.Dict):
                    yield from self._check_dict(index, info, node)
                elif isinstance(node, ast.Assign):
                    yield from self._check_subscript(index, info, node)

    def _check_dict(self, index: ProjectIndex, info: FunctionInfo,
                    node: ast.Dict) -> Iterator[Finding]:
        for key_node, value in zip(node.keys, node.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                continue
            yield from self._check_entry(index, info, key_node.value,
                                         value, key_node)

    def _check_subscript(self, index: ProjectIndex, info: FunctionInfo,
                         node: ast.Assign) -> Iterator[Finding]:
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)):
                yield from self._check_entry(index, info, target.slice.value,
                                             node.value, node)

    def _check_entry(self, index: ProjectIndex, info: FunctionInfo, key: str,
                     value: ast.expr, at: ast.AST) -> Iterator[Finding]:
        if WALL_MARKER in key:
            return
        culprit = _wall_source(value)
        if culprit is None:
            return
        yield self.finding(
            index, info.path, at,
            f"artifact entry '{key}' holds a wall-clock value ({culprit}) "
            f"but its key lacks the '{WALL_MARKER}' marker, so the fleet's "
            "wall-metric stripper cannot remove it; merged reports would "
            "differ run to run")


def _wall_source(value: ast.expr) -> Optional[str]:
    for child in ast.walk(value):
        if _is_wall_call(child):
            func = child.func  # type: ignore[attr-defined]
            return f"'{_terminal_name(func.value)}.{func.attr}()'"
        if (isinstance(child, (ast.Name, ast.Attribute))
                and WALL_MARKER in _terminal_name(child)):
            return f"'{_terminal_name(child)}'"
    return None


P_RULES: Tuple[ProjectRule, ...] = (ModuleStateRule(), ClosureCaptureRule(),
                                    WallClockArtifactRule())
