"""Human and JSON reporters for :class:`~repro.analysis.LintReport`."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import LintReport
from repro.analysis.rules import DEFAULT_RULES


def render_human(report: LintReport, show_suppressed: bool = False) -> str:
    """One finding per line, then a summary line — grep-friendly."""
    lines: List[str] = []
    for path, error in report.parse_errors:
        lines.append(f"{path}:1:0: PARSE [error] {error}")
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.format())
    counts = report.counts_by_rule()
    by_rule = ", ".join(f"{rule}={counts[rule]}" for rule in sorted(counts))
    summary = (f"checked {report.files_checked} files: "
               f"{len(report.unsuppressed)} finding(s)"
               + (f" [{by_rule}]" if by_rule else "")
               + (f", {len(report.suppressed)} suppressed"
                  if report.suppressed else ""))
    lines.append(summary if not report.ok else
                 f"checked {report.files_checked} files: clean"
                 + (f" ({len(report.suppressed)} suppressed)"
                    if report.suppressed else ""))
    return "\n".join(lines)


def render_json(report: LintReport, indent: int = 2) -> str:
    """The stable ``repro.analysis/v1`` JSON schema (sorted keys)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: id, severity, one-line title."""
    lines = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id:>4}  [{rule.default_severity.value}]  "
                     f"{rule.title}")
    return "\n".join(lines)
