"""Human, JSON, and SARIF reporters for :class:`~repro.analysis.LintReport`."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import PROJECT_RULES, LintReport
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import DEFAULT_RULES


def render_human(report: LintReport, show_suppressed: bool = False) -> str:
    """One finding per line, then a summary line — grep-friendly."""
    lines: List[str] = []
    for path, error in report.parse_errors:
        lines.append(f"{path}:1:0: PARSE [error] {error}")
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.format())
    for key in report.stale_baseline:
        lines.append(f"stale baseline entry (no longer fires): {key}")
    counts = report.counts_by_rule()
    by_rule = ", ".join(f"{rule}={counts[rule]}" for rule in sorted(counts))
    extras = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.stale_baseline:
        extras.append(f"{len(report.stale_baseline)} stale baseline entries")
    extra = f" ({', '.join(extras)})" if extras else ""
    if report.ok:
        lines.append(f"checked {report.files_checked} files: clean{extra}")
    else:
        lines.append(f"checked {report.files_checked} files: "
                     f"{len(report.actionable)} finding(s)"
                     + (f" [{by_rule}]" if by_rule else "") + extra)
    return "\n".join(lines)


def render_json(report: LintReport, indent: int = 2) -> str:
    """The stable ``repro.analysis/v2`` JSON schema (sorted keys)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


#: SARIF severity levels per finding state.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _sarif_result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
    }
    if finding.suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    elif finding.baselined:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(report: LintReport, indent: int = 2) -> str:
    """SARIF 2.1.0, enough for code-scanning upload and artifact review."""
    rules = [{"id": rule.rule_id,
              "shortDescription": {"text": rule.title}}
             for rule in list(DEFAULT_RULES) + list(PROJECT_RULES)]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": rules,
            }},
            "results": [_sarif_result(f) for f in report.findings],
            "invocations": [{
                "executionSuccessful": not report.parse_errors,
            }],
        }],
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: id, severity, one-line title."""
    lines = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id:>4}  [{rule.default_severity.value}]  "
                     f"{rule.title}")
    for project_rule in PROJECT_RULES:
        lines.append(f"{project_rule.rule_id:>4}  "
                     f"[{project_rule.default_severity.value}]  "
                     f"{project_rule.title} (--project)")
    return "\n".join(lines)
