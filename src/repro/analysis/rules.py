"""The project-specific determinism and invariant rules (D1–D5).

Each rule is an :mod:`ast` pass over one parsed module.  The rules
encode the conventions PR 1 and PR 2 established informally:

* **D1** — all randomness flows from an explicitly seeded
  ``random.Random``; the module-level global RNG is banned.
* **D2** — wall-clock reads may only land in ``wall_``-prefixed names,
  so the determinism regression can strip them mechanically.
* **D3** — ordering-sensitive packages never iterate bare sets or
  ``dict.keys()`` views without ``sorted(...)``.
* **D4** — metric/trace updates in hot paths sit behind an
  ``obs.enabled`` guard (or a local alias of it).
* **D5** — public API functions use typed exceptions, not ``assert``,
  for input validation, and never take mutable default arguments.

Rules yield findings with suppression already resolved (via
:meth:`Rule.finding`); the engine filters and aggregates them.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from repro.analysis.findings import Finding, Severity, SourceFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.project import ProjectIndex

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _posix_parts(path: str) -> Set[str]:
    return set(PurePosixPath(path.replace("\\", "/")).parts)


def _in_test_or_tool_tree(path: str) -> bool:
    parts = _posix_parts(path)
    return "tests" in parts or "tools" in parts


def _iter_scope(scope_node: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope: every node under *scope_node* except the bodies
    of nested function definitions (each is its own scope)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES):
            continue  # nested scope: walked by its own pass
        stack.extend(ast.iter_child_nodes(node))


def _all_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every function definition anywhere in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield node


def _terminal_name(node: ast.expr) -> str:
    """The rightmost identifier of a Name/Attribute chain ('' otherwise)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class Rule:
    """One named check over a parsed module."""

    rule_id: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on *path* at all (path-based scoping)."""
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(path=source.path, line=line, col=col,
                       rule_id=self.rule_id, severity=self.default_severity,
                       message=message,
                       suppressed=source.is_allowed(self.rule_id, line))


# ---------------------------------------------------------------------------
# D1: seeded randomness only
# ---------------------------------------------------------------------------

#: ``random.<fn>`` calls that use the hidden module-global RNG.
_GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
})


class SeededRandomRule(Rule):
    """D1: no global-RNG calls; every ``random.Random`` gets a seed."""

    rule_id = "D1"
    title = "seeded randomness only"

    def applies_to(self, path: str) -> bool:
        return not _in_test_or_tool_tree(path)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random":
                        aliases.add(name.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    for name in node.names:
                        if name.name in _GLOBAL_RNG_FUNCS:
                            yield self.finding(
                                source, node,
                                f"'from random import {name.name}' binds the "
                                "module-global RNG; construct a seeded "
                                "random.Random(seed) instead")
                        elif name.name == "SystemRandom":
                            yield self.finding(
                                source, node,
                                "random.SystemRandom draws system entropy and "
                                "can never be seeded; use random.Random(seed)")
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases):
                continue
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        source, node,
                        "unseeded random.Random() seeds from the OS; pass an "
                        "explicit seed derived from the run's seed")
            elif func.attr == "SystemRandom":
                yield self.finding(
                    source, node,
                    "random.SystemRandom draws system entropy and can never "
                    "be seeded; use random.Random(seed)")
            elif func.attr in _GLOBAL_RNG_FUNCS:
                yield self.finding(
                    source, node,
                    f"random.{func.attr}() uses the hidden module-global RNG; "
                    "thread a seeded random.Random through instead")


# ---------------------------------------------------------------------------
# D2: wall-clock reads flow only into wall_-prefixed names
# ---------------------------------------------------------------------------

#: ``(receiver, attribute)`` pairs that read the wall clock.
_WALL_CALLS: Set[Tuple[str, str]] = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}


def _is_wall_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    receiver = _terminal_name(func.value)
    return bool(receiver) and (receiver, func.attr) in _WALL_CALLS


def _is_wall_name(name: str) -> bool:
    return name.lstrip("_").startswith("wall_")


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    else:
        yield ""  # subscripts etc. — cannot carry the wall_ marker


class WallClockRule(Rule):
    """D2: wall-clock results land only in ``wall_``-prefixed names."""

    rule_id = "D2"
    title = "wall-clock values stay in wall_ names"

    def applies_to(self, path: str) -> bool:
        return not _in_test_or_tool_tree(path)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assignment_types = (ast.Assign, ast.AnnAssign, ast.AugAssign)
        consumed: Set[int] = set()
        for stmt in ast.walk(source.tree):
            if not isinstance(stmt, assignment_types) or stmt.value is None:
                continue
            wall_calls = [n for n in ast.walk(stmt.value) if _is_wall_call(n)]
            if not wall_calls:
                continue
            consumed.update(id(call) for call in wall_calls)
            if isinstance(stmt, ast.Assign):
                targets: List[ast.expr] = list(stmt.targets)
            else:
                targets = [stmt.target]
            names = [name for target in targets
                     for name in _target_names(target)]
            if not names or not all(_is_wall_name(name) for name in names):
                shown = ", ".join(repr(n) for n in names if n) or "the target"
                yield self.finding(
                    source, stmt,
                    f"wall-clock read assigned to {shown}; only 'wall_'-"
                    "prefixed names may hold nondeterministic time (the "
                    "trace stripper keys on that prefix)")
        for node in ast.walk(source.tree):
            if _is_wall_call(node) and id(node) not in consumed:
                yield self.finding(
                    source, node,
                    "wall-clock read used outside an assignment to a "
                    "'wall_'-prefixed name; bind it first (or time spans "
                    "with obs.probe)")


# ---------------------------------------------------------------------------
# D3: no unordered iteration in ordering-sensitive packages
# ---------------------------------------------------------------------------

#: Packages whose iteration order feeds routing/forwarding decisions.
_ORDER_SENSITIVE_PARTS = frozenset({"routing", "net", "vnbone", "bgp"})

#: Set-producing method names propagated during local inference.
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})

_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "set", "frozenset",
                              "MutableSet", "AbstractSet"})

#: Iteration wrappers that impose (or preserve) a defined order.
_ORDER_SAFE_WRAPPERS = frozenset({"sorted", "enumerate", "range", "reversed",
                                  "zip", "min", "max"})


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node: ast.expr = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


class _SetScope:
    """Names bound to set-typed values inside one scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS
                    and self.is_set_expr(func.value)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.is_set_expr(node.left)
                    or self.is_set_expr(node.right))
        return False


class OrderedIterationRule(Rule):
    """D3: iterate node/route sets via ``sorted(...)`` in core packages.

    Set iteration order varies with hash seeding and insertion history;
    a ``for`` loop (or list/generator/dict comprehension) over a bare
    set inside the routing-critical packages silently breaks same-seed
    reproducibility.  Set comprehensions over sets are exempt — their
    output has no order to corrupt.
    """

    rule_id = "D3"
    title = "deterministic iteration order"

    def applies_to(self, path: str) -> bool:
        if _in_test_or_tool_tree(path):
            return False
        return bool(_ORDER_SENSITIVE_PARTS & _posix_parts(path))

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for scope_node in _all_scopes(source.tree):
            yield from self._check_scope(source, scope_node)

    def _check_scope(self, source: SourceFile,
                     scope_node: ast.AST) -> Iterator[Finding]:
        scope = _SetScope()
        if isinstance(scope_node, _FUNCTION_NODES):
            arguments = scope_node.args
            for arg in (list(arguments.posonlyargs) + list(arguments.args)
                        + list(arguments.kwonlyargs)):
                if _annotation_is_set(arg.annotation):
                    scope.names.add(arg.arg)
        nodes = list(_iter_scope(scope_node))
        # Two inference passes so chained assignments (a = set(); b = a)
        # resolve regardless of walk order.
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (isinstance(target, ast.Name)
                            and scope.is_set_expr(node.value)):
                        scope.names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if (isinstance(node.target, ast.Name)
                            and _annotation_is_set(node.annotation)):
                        scope.names.add(node.target.id)
        for node in nodes:
            if isinstance(node, ast.For):
                yield from self._check_iterable(source, scope, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for comp in node.generators:
                    yield from self._check_iterable(source, scope, comp.iter)

    def _check_iterable(self, source: SourceFile, scope: _SetScope,
                        iterable: ast.expr) -> Iterator[Finding]:
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if (isinstance(func, ast.Name)
                    and func.id in _ORDER_SAFE_WRAPPERS):
                return
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                yield self.finding(
                    source, iterable,
                    "iterating .keys(); iterate sorted(<dict>) so the order "
                    "cannot depend on insertion history")
                return
        if scope.is_set_expr(iterable):
            label = (f"set {iterable.id!r}" if isinstance(iterable, ast.Name)
                     else "a set expression")
            yield self.finding(
                source, iterable,
                f"iterating {label} without sorted(); set order is "
                "nondeterministic across runs and interpreters")


# ---------------------------------------------------------------------------
# D4: hot-path metric/trace updates behind an enabled-check
# ---------------------------------------------------------------------------

#: Method names that mutate a metric.
_METRIC_UPDATE_ATTRS = frozenset({"inc", "observe", "set_max"})

#: Metric-handle lookups whose result a ``.set(...)`` may target.
_METRIC_LOOKUP_ATTRS = frozenset({"counter", "gauge", "histogram"})


def _mentions_obs(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return "obs" in name


def _is_metric_update(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _METRIC_UPDATE_ATTRS:
        return True
    if func.attr == "event" and _mentions_obs(func.value):
        return True
    if func.attr == "set":
        receiver = func.value
        if (isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Attribute)
                and receiver.func.attr in _METRIC_LOOKUP_ATTRS):
            return True
        return _terminal_name(receiver).lstrip("_").startswith("g_")
    return False


class HotPathGuardRule(Rule):
    """D4: metric updates and trace emissions sit behind ``.enabled``.

    The observability contract (PR 2) is that a disabled handle costs
    one attribute check per instrumented operation.  An unguarded
    ``.inc()`` / ``.observe()`` / ``obs.event(...)`` pays dictionary
    lookups and allocation on every packet/message even when nobody is
    watching.  Guards are recognized structurally: any enclosing
    ``if <...>.enabled:`` (also via a local alias such as
    ``observed = obs.enabled``) or an early ``if not <guard>: return``.
    """

    rule_id = "D4"
    title = "metric updates behind enabled-guards"

    def applies_to(self, path: str) -> bool:
        if _in_test_or_tool_tree(path):
            return False
        # repro/obs implements the guard machinery itself.
        return "obs" not in _posix_parts(path)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = self._guard_aliases(source.tree)
        findings: List[Finding] = []
        self._visit_block(source, source.tree.body, False, aliases, findings)
        yield from findings

    def _guard_aliases(self, tree: ast.Module) -> Set[str]:
        """Names assigned from ``<something>.enabled`` anywhere in the file."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "enabled"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _test_is_guard(self, test: ast.expr, aliases: Set[str]) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
            if isinstance(node, ast.Name) and node.id in aliases:
                return True
        return False

    def _is_guard_bailout(self, stmt: ast.stmt, aliases: Set[str]) -> bool:
        """``if not <guard>: return/continue/raise`` upgrades the rest
        of the block to guarded."""
        if not isinstance(stmt, ast.If) or stmt.orelse:
            return False
        test = stmt.test
        if not (isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and self._test_is_guard(test.operand, aliases)):
            return False
        return bool(stmt.body) and isinstance(
            stmt.body[-1], (ast.Return, ast.Continue, ast.Raise))

    def _visit_block(self, source: SourceFile, body: Sequence[ast.stmt],
                     guarded: bool, aliases: Set[str],
                     findings: List[Finding]) -> None:
        block_guarded = guarded
        for stmt in body:
            if self._is_guard_bailout(stmt, aliases):
                block_guarded = True
                continue
            self._visit_stmt(source, stmt, block_guarded, aliases, findings)

    def _visit_stmt(self, source: SourceFile, stmt: ast.stmt, guarded: bool,
                    aliases: Set[str], findings: List[Finding]) -> None:
        if isinstance(stmt, ast.If):
            if self._test_is_guard(stmt.test, aliases):
                self._visit_block(source, stmt.body, True, aliases, findings)
                self._visit_block(source, stmt.orelse, guarded, aliases,
                                  findings)
            else:
                self._scan_expr(source, stmt.test, guarded, findings)
                self._visit_block(source, stmt.body, guarded, aliases,
                                  findings)
                self._visit_block(source, stmt.orelse, guarded, aliases,
                                  findings)
            return
        if isinstance(stmt, _FUNCTION_NODES):
            # A new scope: caller-side guards do not carry in.
            self._visit_block(source, stmt.body, False, aliases, findings)
            return
        if isinstance(stmt, ast.ClassDef):
            self._visit_block(source, stmt.body, guarded, aliases, findings)
            return
        blocks = [getattr(stmt, name, []) for name in
                  ("body", "orelse", "finalbody")]
        handlers = getattr(stmt, "handlers", [])
        if any(blocks) or handlers:
            for field_name, value in ast.iter_fields(stmt):
                if field_name in ("body", "orelse", "finalbody", "handlers"):
                    continue
                self._scan_field(source, value, guarded, findings)
            for block in blocks:
                self._visit_block(source, block, guarded, aliases, findings)
            for handler in handlers:
                self._visit_block(source, handler.body, guarded, aliases,
                                  findings)
            return
        self._scan_field(source, stmt, guarded, findings)

    def _scan_field(self, source: SourceFile, value: object, guarded: bool,
                    findings: List[Finding]) -> None:
        if isinstance(value, ast.AST):
            self._scan_expr(source, value, guarded, findings)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    self._scan_expr(source, item, guarded, findings)

    def _scan_expr(self, source: SourceFile, node: ast.AST, guarded: bool,
                   findings: List[Finding]) -> None:
        if guarded:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and _is_metric_update(child):
                attr = child.func.attr  # type: ignore[attr-defined]
                findings.append(self.finding(
                    source, child,
                    f"metric/trace update '.{attr}(...)' outside an "
                    "obs.enabled guard; wrap it in 'if obs.enabled:' (or "
                    "a cached alias) so disabled runs pay one attribute "
                    "check"))


# ---------------------------------------------------------------------------
# D5: typed exceptions and immutable defaults in the public API
# ---------------------------------------------------------------------------


class PublicApiRule(Rule):
    """D5: no mutable defaults; no bare ``assert`` in public functions.

    ``assert`` vanishes under ``python -O``, so input validation in a
    public entry point must raise a typed exception from
    :mod:`repro.net.errors`.  Genuine internal invariants (unreachable
    states the type system cannot express) stay as asserts behind a
    ``# repro: allow[D5]`` suppression.
    """

    rule_id = "D5"
    title = "typed errors and immutable defaults in public API"

    def applies_to(self, path: str) -> bool:
        return not _in_test_or_tool_tree(path)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        yield from self._check_defaults(source)
        yield from self._check_asserts(source)

    def _check_defaults(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                arguments = node.args
                defaults = list(arguments.defaults) + [
                    d for d in arguments.kw_defaults if d is not None]
                for default in defaults:
                    if self._is_mutable_default(default):
                        yield self.finding(
                            source, default,
                            "mutable default argument is shared across "
                            "calls; default to None (or a tuple/frozenset) "
                            "and construct inside the function")

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False

    def _check_asserts(self, source: SourceFile) -> Iterator[Finding]:
        for scope_node, is_public in self._public_scopes(source.tree):
            if not is_public:
                continue
            for node in _iter_scope(scope_node):
                if isinstance(node, ast.Assert):
                    yield self.finding(
                        source, node,
                        "bare assert in a public function disappears under "
                        "python -O; raise a typed exception from "
                        "repro.net.errors for input validation (allowlist "
                        "true invariants with '# repro: allow[D5]')")

    def _public_scopes(
            self, tree: ast.Module
    ) -> Iterator[Tuple[ast.AST, bool]]:
        """Every function scope, flagged public/private.

        Public means: a module-level function, or a method of a
        module-level public class, whose own name has no underscore
        prefix.  Anything nested inside another function is internal.
        """
        for stmt in tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                yield stmt, not stmt.name.startswith("_")
            elif isinstance(stmt, ast.ClassDef):
                class_public = not stmt.name.startswith("_")
                for member in stmt.body:
                    if isinstance(member, _FUNCTION_NODES):
                        yield member, (class_public
                                       and not member.name.startswith("_"))


# ---------------------------------------------------------------------------
# whole-program rules (pass 2 over the project index)
# ---------------------------------------------------------------------------


class ProjectRule:
    """One named check over the whole-program :class:`ProjectIndex`.

    Unlike :class:`Rule`, a project rule sees every module at once —
    call graphs, registration sites, emitter/validator pairs.  The
    C/P/S families live in :mod:`repro.analysis.crules` /
    :mod:`~repro.analysis.prules` / :mod:`~repro.analysis.srules`.
    """

    rule_id: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, index: "ProjectIndex", path: str, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source = index.by_path[path].source
        return Finding(path=path, line=line, col=col,
                       rule_id=self.rule_id, severity=self.default_severity,
                       message=message,
                       suppressed=source.is_allowed(self.rule_id, line))


#: Every rule, in id order — the engine's default rule set.
DEFAULT_RULES: Tuple[Rule, ...] = (
    SeededRandomRule(), WallClockRule(), OrderedIterationRule(),
    HotPathGuardRule(), PublicApiRule(),
)

#: id -> rule instance, for --rule filtering and docs.
RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in DEFAULT_RULES}
