"""S-rules: schema drift between artifact emitters and validators.

The repo maintains six hand-rolled versioned artifact schemas
(``repro.experiment/v1``, ``repro.bench/v2``, ``repro.fleet/v1``,
``repro.report/v1``, ``repro.trace/v2``, ``repro.matrix/v1``), each
with an emitter building a dict literal and a validator checking it
structurally.  An edit that lands on only one side — a new emitted key
nobody validates, or a newly-required key no emitter produces — used to
surface only when a CI smoke job deserialized a real artifact.  These
rules diff the two sides statically using the pass-1 index:

* **S1** — an emitter for schema ``X`` omits a key its paired
  validator dereferences unconditionally.
* **S2** — an emitter for schema ``X`` produces a key its paired
  validator never references (skipped when the validator iterates the
  whole document — an open schema).

Emitters with ``**`` spreads or computed keys are skipped (their key
set is a lower bound); schemas with only one side present are skipped
(nothing to diff).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import EmitterInfo, ProjectIndex, ValidatorInfo
from repro.analysis.rules import ProjectRule


def _pairs(index: ProjectIndex) -> Iterator[Tuple[str, EmitterInfo,
                                                  ValidatorInfo]]:
    """Every (schema, emitter, validator) pair present on both sides."""
    for schema in sorted(set(index.emitters) & set(index.validators)):
        for emitter in index.emitters[schema]:
            for validator in index.validators[schema]:
                yield schema, emitter, validator


def _validator_label(index: ProjectIndex, validator: ValidatorInfo) -> str:
    info = index.functions.get(validator.function)
    name = info.qual if info is not None else validator.function
    return f"{validator.module}.{name}"


class EmitterMissingKeyRule(ProjectRule):
    """S1: emitters produce every key their validator requires."""

    rule_id = "S1"
    title = "emitters carry all validator-required keys"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for schema, emitter, validator in _pairs(index):
            if emitter.dynamic:
                continue
            missing = sorted(validator.required - emitter.keys)
            for key in missing:
                yield self.finding(
                    index, emitter.path, emitter.node,
                    f"emitter for '{schema}' omits key '{key}', which "
                    f"validator {_validator_label(index, validator)} "
                    "requires unconditionally; every artifact it emits "
                    "would fail validation")


class EmitterUnknownKeyRule(ProjectRule):
    """S2: emitters produce no keys their validator never checks."""

    rule_id = "S2"
    title = "emitted keys are known to the validator"

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for schema, emitter, validator in _pairs(index):
            if emitter.dynamic or validator.open_schema:
                continue
            unknown = sorted(emitter.keys - validator.all_known())
            for key in unknown:
                yield self.finding(
                    index, emitter.path, emitter.node,
                    f"emitter for '{schema}' produces key '{key}' that "
                    f"validator {_validator_label(index, validator)} never "
                    "references; the schema contract drifted on one side "
                    "only (extend the validator or drop the key)")


S_RULES: Tuple[ProjectRule, ...] = (EmitterMissingKeyRule(),
                                    EmitterUnknownKeyRule())
