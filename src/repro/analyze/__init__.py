"""repro.analyze: the offline trace-analysis toolkit.

Consumes the JSONL traces :mod:`repro.obs` writes (schema
``repro.trace/v2`` with causal spans — see ``docs/tracing.md``) and
turns them into reports:

* **critical path** per fault epoch — sim-time from ``fault.apply`` to
  the first recovered delivery, broken down into IGP hold-down, LSA
  flood + SPF, BGP resync, and vN-Bone rebuild phases;
* **per-packet distributions** — path stretch and encapsulation
  overhead, streamed with Welford aggregation;
* **blackhole / loop detection** from forwarding spans alone;
* **convergence timeline** from the sampler's ``metric.sample`` events;
* **anycast catchment observatory** — per-fault-epoch vantage→replica
  catchment maps, shift/flap attribution, RTT-inflation CDF, and
  probe-observed convergence time from ``probe.rtt`` measurement
  events (schema ``repro.catchment/v1``, see ``docs/measurement.md``).

Everything is streaming: a trace is read line by line
(:func:`iter_trace_events`), high-volume ``forward`` spans are
aggregated rather than stored, and only the bounded structural spans
(epochs, convergence episodes, hold-down timers) are kept in memory —
so ROADMAP-scale traces (millions of events) analyze in bounded space.

The result is a schema-validated ``repro.report/v1`` document
(:func:`build_report` / :func:`validate_report_dict`) or a set of human
tables (:func:`render_report`), both exposed via
``python -m repro report``.
"""

from __future__ import annotations

from repro.analyze.catchment import (CATCHMENT_SCHEMA, build_catchment,
                                     catchment_from_trace, render_catchment,
                                     validate_catchment_dict)
from repro.analyze.reader import (SpanForest, SpanNode, build_span_forest,
                                  iter_trace_events)
from repro.analyze.render import render_report
from repro.analyze.report import REPORT_SCHEMA, build_report
from repro.analyze.schema import validate_report_dict

__all__ = ["CATCHMENT_SCHEMA", "REPORT_SCHEMA", "SpanForest", "SpanNode",
           "build_catchment", "build_report", "build_span_forest",
           "catchment_from_trace", "iter_trace_events", "render_catchment",
           "render_report", "validate_report_dict",
           "validate_catchment_dict"]
