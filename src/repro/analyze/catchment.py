"""The anycast catchment observatory: ``repro.catchment/v1``.

One streaming pass over a probe measurement — either ``probe.rtt``
trace events plus ``fault.apply`` boundaries read from a JSONL trace
(:func:`catchment_from_trace`), or in-memory
:class:`~repro.measure.engine.ProbeSample` dicts plus
:class:`~repro.faults.injector.FaultRecord` boundaries straight from a
scenario (:func:`build_catchment`) — folded into one schema-validated
document:

* **per-epoch catchment maps** — which replica served each
  (vantage, target) pair, where an epoch is the interval between fault
  boundaries (epoch 0 is the pre-fault baseline);
* **shift detection** — catchment changes *across* an epoch boundary:
  the expected, fault-attributed failovers;
* **flap detection** — catchment changes *within* an epoch, i.e. not
  aligned to any fault boundary: the anomalies an operator would page
  on;
* **RTT-inflation CDF** — observed RTT over the oracle's best-replica
  RTT at probe time (nearest-rank percentiles);
* **probe-observed convergence time** — per fault epoch, sim time from
  the boundary to the first probe round in which every probe was
  delivered (what a user measures, as opposed to the control plane's
  own reconvergence accounting).

Epoch assignment is by time, with the tie the scheduler guarantees:
a probe round due exactly at a fault boundary fires *before* the fault
applies (``run_until(t)`` advances the clock — firing due probes —
before the injector touches the topology), so a sample at ``t`` equal
to a boundary belongs to the epoch *before* that boundary.  Counting
boundaries strictly below the sample's ``t`` encodes exactly that.

The document carries no span ids, no ``seq`` numbers, no wall-clock
fields, and no file paths: same-seed runs produce byte-identical
catchment reports at any worker count, with the flow fast path on or
off, and with the path cache on or off.
"""

from __future__ import annotations

import bisect
import math
import os
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.analyze.reader import Event, as_float, as_str, iter_trace_events
from repro.obs.tracer import RUN_START

#: Schema tag stamped into every catchment document.
CATCHMENT_SCHEMA = "repro.catchment/v1"

#: Nearest-rank percentiles of the RTT-inflation CDF.
_INFLATION_PERCENTILES = (50, 90, 99)


def _percentile(sorted_values: Sequence[float], pct: int) -> float:
    """Nearest-rank percentile of an already-sorted non-empty series."""
    rank = max(1, math.ceil(len(sorted_values) * pct / 100.0))
    return sorted_values[rank - 1]


def _dist_summary(values: Sequence[float]) -> Dict[str, float]:
    """count/min/max/mean/stddev, matching the report ``_Dist`` keys."""
    if not values:
        return {"count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "stddev": 0.0}
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return {"count": float(len(values)), "min": min(values),
            "max": max(values), "mean": mean, "stddev": math.sqrt(var)}


class _Sample:
    """One probe observation, narrowed from an event/sample mapping."""

    __slots__ = ("t", "vantage", "target", "replica", "rtt", "best_rtt",
                 "best_replica", "delivered")

    def __init__(self, t: float, vantage: str, target: str,
                 replica: Optional[str], rtt: Optional[float],
                 best_rtt: Optional[float],
                 best_replica: Optional[str]) -> None:
        self.t = t
        self.vantage = vantage
        self.target = target
        self.replica = replica
        self.rtt = rtt
        self.best_rtt = best_rtt
        self.best_replica = best_replica
        self.delivered = replica is not None


def _narrow_sample(raw: Mapping[str, object]) -> Optional[_Sample]:
    t = as_float(raw.get("t"))
    vantage = as_str(raw.get("vantage"))
    target = as_str(raw.get("target"))
    if t is None or vantage is None or target is None:
        return None
    return _Sample(t=t, vantage=vantage, target=target,
                   replica=as_str(raw.get("replica")),
                   rtt=as_float(raw.get("rtt")),
                   best_rtt=as_float(raw.get("best_rtt")),
                   best_replica=as_str(raw.get("best_replica")))


class _Epoch:
    """Accumulator for one inter-boundary interval."""

    def __init__(self, index: int, t_start: Optional[float],
                 descriptions: List[str]) -> None:
        self.index = index
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.descriptions = descriptions
        self.probes = 0
        self.delivered = 0
        # (vantage, target) -> last delivered replica in this epoch.
        self.catchment: Dict[Tuple[str, str], str] = {}
        self.shifts: List[Dict[str, object]] = []
        # round t -> [delivered?, ...] for convergence detection.
        self.rounds: Dict[float, List[bool]] = {}

    def convergence_time(self) -> Optional[float]:
        """Sim time from the boundary to the first all-delivered round."""
        if self.t_start is None:
            return None
        for t in sorted(self.rounds):
            flags = self.rounds[t]
            if flags and all(flags):
                return t - self.t_start
        return None

    def to_dict(self) -> Dict[str, object]:
        nested: Dict[str, Dict[str, Optional[str]]] = {}
        for (vantage, target), replica in sorted(self.catchment.items()):
            nested.setdefault(vantage, {})[target] = replica
        return {"epoch": self.index,
                "t_start": self.t_start,
                "t_end": self.t_end,
                "boundaries": list(self.descriptions),
                "probes": self.probes,
                "delivered": self.delivered,
                "catchment": nested,
                "shifts": self.shifts,
                "convergence_time": self.convergence_time()}


def build_catchment(samples: Iterable[Mapping[str, object]],
                    boundaries: Sequence[Mapping[str, object]],
                    context: Optional[Mapping[str, object]] = None
                    ) -> Dict[str, object]:
    """Fold probe samples + fault boundaries into a catchment document.

    *samples* are ``probe.rtt`` event dicts or
    ``ProbeSample.to_dict()`` dicts (same keys; unknown keys are
    ignored).  *boundaries* are ``{"t": float, "description": str}``
    dicts in application order (e.g. from
    ``FaultInjector.records``).  *context* lands verbatim under
    ``run.context``.
    """
    # Group boundaries into epochs by (strictly increasing) time.
    epoch_times: List[float] = []
    epochs: List[_Epoch] = [_Epoch(0, None, [])]
    for boundary in boundaries:
        t = as_float(boundary.get("t"))
        description = as_str(boundary.get("description")) or ""
        if t is None:
            continue
        if not epoch_times or t > epoch_times[-1]:
            epoch_times.append(t)
            epochs[-1].t_end = t
            epochs.append(_Epoch(len(epochs), t, []))
        epochs[-1].descriptions.append(description)

    # (vantage, target) -> (epoch index, replica) of the last delivered
    # observation, for shift/flap attribution.
    last_seen: Dict[Tuple[str, str], Tuple[int, str]] = {}
    flap_events: List[Dict[str, object]] = []
    rtts: List[float] = []
    inflations: List[float] = []
    vantages: List[str] = []
    targets: List[str] = []
    total = 0
    delivered_total = 0

    for raw in samples:
        sample = _narrow_sample(raw)
        if sample is None:
            continue
        total += 1
        # A sample at t equal to a boundary fired before the fault
        # applied, so only strictly earlier boundaries count.
        index = bisect.bisect_left(epoch_times, sample.t)
        epoch = epochs[index]
        epoch.probes += 1
        epoch.rounds.setdefault(sample.t, []).append(sample.delivered)
        if sample.vantage not in vantages:
            vantages.append(sample.vantage)
        if sample.target not in targets:
            targets.append(sample.target)
        if not sample.delivered or sample.replica is None:
            continue
        delivered_total += 1
        epoch.delivered += 1
        if sample.rtt is not None:
            rtts.append(sample.rtt)
            if sample.best_rtt is not None and sample.best_rtt > 0:
                inflations.append(sample.rtt / sample.best_rtt)
        key = (sample.vantage, sample.target)
        previous = last_seen.get(key)
        if previous is not None and previous[1] != sample.replica:
            change: Dict[str, object] = {
                "t": sample.t, "vantage": sample.vantage,
                "target": sample.target, "from": previous[1],
                "to": sample.replica}
            if previous[0] == index:
                # Same epoch: no fault boundary between the two
                # observations — a flap.
                flap_events.append(change)
            else:
                epoch.shifts.append(change)
        last_seen[key] = (index, sample.replica)
        epoch.catchment[key] = sample.replica

    inflations.sort()
    inflation_summary: Dict[str, float] = {"count": float(len(inflations))}
    if inflations:
        inflation_summary["min"] = inflations[0]
        inflation_summary["max"] = inflations[-1]
        inflation_summary["mean"] = sum(inflations) / len(inflations)
        for pct in _INFLATION_PERCENTILES:
            inflation_summary[f"p{pct}"] = _percentile(inflations, pct)
    else:
        inflation_summary.update({"min": 0.0, "max": 0.0, "mean": 0.0})
        for pct in _INFLATION_PERCENTILES:
            inflation_summary[f"p{pct}"] = 0.0

    return {"schema": CATCHMENT_SCHEMA,
            "run": {"context": dict(context or {})},
            "probes": {"count": total,
                       "delivered": delivered_total,
                       "lost": total - delivered_total,
                       "vantages": vantages,
                       "targets": targets},
            "epochs": [epoch.to_dict() for epoch in epochs],
            "shifts": {"count": sum(len(e.shifts) for e in epochs)},
            "flaps": {"count": len(flap_events), "events": flap_events},
            "rtt": _dist_summary(rtts),
            "rtt_inflation": inflation_summary}


def catchment_from_trace(events: Union[str, "os.PathLike[str]",
                                       Iterable[Event]]
                         ) -> Dict[str, object]:
    """Build a catchment document from a JSONL trace (path or events).

    Extracts ``probe.rtt`` samples, ``fault.apply`` boundaries, and the
    ``run.start`` context in one streaming pass; everything else in the
    trace is ignored.  The result is byte-identical (as sorted-key
    JSON) to :func:`build_catchment` fed the same samples, boundaries,
    and context directly.
    """
    if isinstance(events, (str, os.PathLike)):
        stream: Iterator[Event] = iter_trace_events(events)
    else:
        stream = iter(events)
    samples: List[Event] = []
    boundaries: List[Dict[str, object]] = []
    context: Dict[str, object] = {}
    for event in stream:
        kind = event.get("kind")
        if kind == "probe.rtt":
            samples.append(event)
        elif kind == "fault.apply":
            t = as_float(event.get("t"))
            if t is not None:
                boundaries.append(
                    {"t": t,
                     "description": as_str(event.get("description")) or ""})
        elif kind == RUN_START:
            raw_context = event.get("context")
            if isinstance(raw_context, dict):
                context = raw_context
    return build_catchment(samples, boundaries, context)


# -- validation ---------------------------------------------------------------

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_summary(doc: Mapping[str, object], key: str, keys: Sequence[str],
                   errors: List[str]) -> None:
    value = doc.get(key)
    if not isinstance(value, Mapping):
        errors.append(f"{key}: missing or non-object")
        return
    for name in keys:
        if not _is_number(value.get(name)):
            errors.append(f"{key}: missing or non-numeric {name!r}")


def _check_epoch_entry(entry: object, where: str, errors: List[str]) -> None:
    if not isinstance(entry, Mapping):
        errors.append(f"{where}: not an object")
        return
    if not _is_number(entry.get("epoch")):
        errors.append(f"{where}: missing or non-numeric 'epoch'")
    for key in ("t_start", "t_end", "convergence_time"):
        value = entry.get(key)
        if value is not None and not _is_number(value):
            errors.append(f"{where}: {key!r} is neither a number nor null")
    for key in ("probes", "delivered"):
        if not _is_number(entry.get(key)):
            errors.append(f"{where}: missing or non-numeric {key!r}")
    boundaries = entry.get("boundaries")
    if not isinstance(boundaries, Sequence) or isinstance(boundaries, str):
        errors.append(f"{where}: 'boundaries' is not a list")
    catchment = entry.get("catchment")
    if not isinstance(catchment, Mapping):
        errors.append(f"{where}: missing or non-object 'catchment'")
    else:
        for vantage, row in catchment.items():
            if not isinstance(row, Mapping):
                errors.append(f"{where}.catchment.{vantage}: not an object")
    shifts = entry.get("shifts")
    if not isinstance(shifts, Sequence) or isinstance(shifts, str):
        errors.append(f"{where}: 'shifts' is not a list")


def validate_catchment_dict(doc: Mapping[str, object]) -> List[str]:
    """Validate a parsed catchment document; returns problems."""
    errors: List[str] = []
    schema = doc.get("schema")
    if schema != CATCHMENT_SCHEMA:
        errors.append(f"schema: expected {CATCHMENT_SCHEMA!r}, got {schema!r}")
    run = doc.get("run")
    if not isinstance(run, Mapping) or not isinstance(run.get("context"),
                                                      Mapping):
        errors.append("run: missing or non-object 'context'")
    probes = doc.get("probes")
    if not isinstance(probes, Mapping):
        errors.append("probes: missing or non-object")
    else:
        for key in ("count", "delivered", "lost"):
            if not _is_number(probes.get(key)):
                errors.append(f"probes: missing or non-numeric {key!r}")
        for key in ("vantages", "targets"):
            value = probes.get(key)
            if not isinstance(value, Sequence) or isinstance(value, str):
                errors.append(f"probes: {key!r} is not a list")
    epochs = doc.get("epochs")
    if not isinstance(epochs, Sequence) or isinstance(epochs, str) \
            or not epochs:
        errors.append("epochs: expected non-empty list")
    else:
        for n, entry in enumerate(epochs):
            _check_epoch_entry(entry, f"epochs[{n}]", errors)
    shifts = doc.get("shifts")
    if not isinstance(shifts, Mapping) or not _is_number(shifts.get("count")):
        errors.append("shifts: missing or non-numeric 'count'")
    flaps = doc.get("flaps")
    if not isinstance(flaps, Mapping):
        errors.append("flaps: missing or non-object")
    else:
        if not _is_number(flaps.get("count")):
            errors.append("flaps: missing or non-numeric 'count'")
        events = flaps.get("events")
        if not isinstance(events, Sequence) or isinstance(events, str):
            errors.append("flaps: 'events' is not a list")
    _check_summary(doc, "rtt", ("count", "min", "max", "mean", "stddev"),
                   errors)
    _check_summary(doc, "rtt_inflation",
                   ("count", "min", "max", "mean", "p50", "p90", "p99"),
                   errors)
    return errors


# -- rendering ----------------------------------------------------------------

def render_catchment(doc: Mapping[str, object]) -> str:
    """Human-readable rendering of a catchment document."""
    lines: List[str] = []
    probes = doc.get("probes")
    if isinstance(probes, Mapping):
        lines.append(f"probes: {probes.get('count')} sent, "
                     f"{probes.get('delivered')} delivered, "
                     f"{probes.get('lost')} lost")
    rtt = doc.get("rtt")
    if isinstance(rtt, Mapping) and rtt.get("count"):
        lines.append(f"rtt: mean {rtt.get('mean'):.2f} "
                     f"[{rtt.get('min'):.2f}, {rtt.get('max'):.2f}]")
    inflation = doc.get("rtt_inflation")
    if isinstance(inflation, Mapping) and inflation.get("count"):
        lines.append(f"rtt inflation: p50 {inflation.get('p50'):.3f}  "
                     f"p90 {inflation.get('p90'):.3f}  "
                     f"p99 {inflation.get('p99'):.3f}")
    epochs = doc.get("epochs")
    if isinstance(epochs, Sequence) and not isinstance(epochs, str):
        for entry in epochs:
            if not isinstance(entry, Mapping):
                continue
            index = entry.get("epoch")
            t_start = entry.get("t_start")
            head = (f"epoch {index} (baseline)" if t_start is None
                    else f"epoch {index} (t={t_start:g})")
            convergence = entry.get("convergence_time")
            tail = ("" if convergence is None
                    else f", converged in {convergence:g}")
            lines.append(f"{head}: {entry.get('delivered')}/"
                         f"{entry.get('probes')} delivered{tail}")
            boundaries = entry.get("boundaries")
            if isinstance(boundaries, Sequence):
                for description in boundaries:
                    lines.append(f"  fault: {description}")
            catchment = entry.get("catchment")
            if isinstance(catchment, Mapping):
                for vantage, row in sorted(catchment.items()):
                    if not isinstance(row, Mapping):
                        continue
                    cells = ", ".join(f"{target} -> {replica}"
                                      for target, replica
                                      in sorted(row.items()))
                    lines.append(f"  {vantage}: {cells}")
            shifts = entry.get("shifts")
            if isinstance(shifts, Sequence) and not isinstance(shifts, str):
                for shift in shifts:
                    if isinstance(shift, Mapping):
                        lines.append(
                            f"  shift: {shift.get('vantage')} -> "
                            f"{shift.get('target')} moved "
                            f"{shift.get('from')} => {shift.get('to')}")
    flaps = doc.get("flaps")
    if isinstance(flaps, Mapping):
        count = flaps.get("count")
        lines.append(f"flaps (changes not aligned to a fault boundary): "
                     f"{count}")
        events = flaps.get("events")
        if isinstance(events, Sequence) and not isinstance(events, str):
            for flap in events:
                if isinstance(flap, Mapping):
                    lines.append(f"  flap at t={flap.get('t')}: "
                                 f"{flap.get('vantage')} -> "
                                 f"{flap.get('target')} moved "
                                 f"{flap.get('from')} => {flap.get('to')}")
    return "\n".join(lines)


__all__ = ["CATCHMENT_SCHEMA", "build_catchment", "catchment_from_trace",
           "render_catchment", "validate_catchment_dict"]
