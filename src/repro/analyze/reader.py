"""Streaming JSONL trace reading and span-tree reconstruction.

:func:`iter_trace_events` yields parsed events one line at a time —
the whole toolkit is built on it, so a trace file is never materialized
in memory.  :func:`build_span_forest` folds a (possibly filtered) event
stream into a :class:`SpanForest` of parent-linked :class:`SpanNode`
objects; callers that only need the bounded *structural* spans pass a
``skip`` predicate to keep high-volume span kinds (per-packet
``forward`` walks) out of the forest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Union)

from repro.obs.spans import SPAN_END, SPAN_START

#: One parsed JSONL event.
Event = Dict[str, object]

#: Start/end bookkeeping keys that are identity, not payload.
_META_KEYS = frozenset({"kind", "seq", "t", "name", "span_id", "trace_id",
                        "parent_id"})


def iter_trace_events(path: Union[str, Path]) -> Iterator[Event]:
    """Yield the events of a JSONL trace file, streaming line by line.

    Lines that are not JSON objects are skipped (the trace schema
    validator, not the reader, is responsible for reporting them).
    """
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event


def as_float(value: object) -> Optional[float]:
    """Narrow an event field to a float (bools are not numbers here)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def as_str(value: object) -> Optional[str]:
    return value if isinstance(value, str) else None


@dataclass
class SpanNode:
    """One reconstructed span: identity, interval, payload, children."""

    span_id: str
    trace_id: str
    name: str
    parent_id: Optional[str] = None
    t_start: Optional[float] = None
    t_end: Optional[float] = None
    #: Payload fields from ``span.start``.
    fields: Dict[str, object] = field(default_factory=dict)
    #: Payload fields from ``span.end`` (annotations and end kwargs).
    end_fields: Dict[str, object] = field(default_factory=dict)
    children: List[str] = field(default_factory=list)
    #: Whether a ``span.end`` was seen for this span.
    ended: bool = False

    @property
    def duration(self) -> Optional[float]:
        """Sim-time extent; ``None`` unless both endpoints carry ``t``."""
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start


@dataclass
class SpanForest:
    """All reconstructed spans of one trace, parent-linked."""

    spans: Dict[str, SpanNode] = field(default_factory=dict)
    #: Span ids with no parent, in start order (one per trace tree).
    roots: List[str] = field(default_factory=list)

    def get(self, span_id: str) -> Optional[SpanNode]:
        return self.spans.get(span_id)

    def children_of(self, span_id: str) -> List[SpanNode]:
        node = self.spans.get(span_id)
        if node is None:
            return []
        return [self.spans[child] for child in node.children
                if child in self.spans]

    def walk(self, span_id: str) -> Iterator[SpanNode]:
        """Depth-first traversal of one subtree (pre-order)."""
        node = self.spans.get(span_id)
        if node is None:
            return
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children_of(current.span_id)))

    def by_name(self, name: str) -> List[SpanNode]:
        """All spans of one kind, in start order."""
        return [node for node in self.spans.values() if node.name == name]

    def ancestor(self, span_id: str, name: str) -> Optional[SpanNode]:
        """The nearest ancestor (inclusive) with the given *name*."""
        current = self.spans.get(span_id)
        while current is not None:
            if current.name == name:
                return current
            if current.parent_id is None:
                return None
            current = self.spans.get(current.parent_id)
        return None


def build_span_forest(events: Iterable[Mapping[str, object]],
                      skip: Optional[Callable[[str], bool]] = None
                      ) -> SpanForest:
    """Fold an event stream into a :class:`SpanForest`.

    *skip* takes a span name and returns True to exclude that span (and
    its payload) from the forest — the memory lever that keeps
    per-packet spans out while reconstructing the structural tree.
    Children of a skipped span still attach by their recorded
    ``parent_id``; they simply become unrooted if the parent is absent.
    """
    forest = SpanForest()
    for event in events:
        kind = event.get("kind")
        if kind == SPAN_START:
            span_id = as_str(event.get("span_id"))
            trace_id = as_str(event.get("trace_id"))
            name = as_str(event.get("name"))
            if span_id is None or trace_id is None or name is None:
                continue
            if skip is not None and skip(name):
                continue
            parent_id = as_str(event.get("parent_id"))
            node = SpanNode(span_id=span_id, trace_id=trace_id, name=name,
                            parent_id=parent_id,
                            t_start=as_float(event.get("t")),
                            fields={key: value for key, value in event.items()
                                    if key not in _META_KEYS})
            forest.spans[span_id] = node
            if parent_id is None:
                forest.roots.append(span_id)
            else:
                parent = forest.spans.get(parent_id)
                if parent is not None:
                    parent.children.append(span_id)
        elif kind == SPAN_END:
            span_id = as_str(event.get("span_id"))
            if span_id is None:
                continue
            node = forest.spans.get(span_id)
            if node is None:
                continue
            node.ended = True
            node.t_end = as_float(event.get("t"))
            node.end_fields = {key: value for key, value in event.items()
                               if key not in _META_KEYS}
    return forest


__all__ = ["Event", "SpanForest", "SpanNode", "as_float", "as_str",
           "build_span_forest", "iter_trace_events"]
