"""Human-readable rendering of ``repro.report/v1`` documents.

:func:`render_report` turns the JSON document :func:`~repro.analyze.report.build_report`
produces into the fixed-width tables ``python -m repro report`` prints:
run header, span inventory, per-epoch critical path, forwarding
outcomes and distributions, blackhole/loop detectors, path-stretch, and
the convergence timeline.  Pure formatting — every number is read from
the document, never recomputed, so the tables and ``--json`` output can
never disagree.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def _fmt(value: object, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _counts_line(table: object) -> str:
    if not isinstance(table, Mapping) or not table:
        return "(none)"
    return "  ".join(f"{key}={value}" for key, value in
                     sorted(table.items(), key=lambda kv: str(kv[0])))


def _dist_row(name: str, dist: object) -> str:
    if not isinstance(dist, Mapping):
        return f"  {name:>16} (missing)"
    return (f"  {name:>16} {_fmt(dist.get('count')):>7} "
            f"{_fmt(dist.get('min')):>8} {_fmt(dist.get('mean')):>8} "
            f"{_fmt(dist.get('stddev')):>8} {_fmt(dist.get('max')):>8}")


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def _render_run(doc: Mapping[str, object]) -> List[str]:
    run = doc.get("run")
    lines = [f"trace report  [{_fmt(doc.get('schema'))}]"]
    if not isinstance(run, Mapping):
        return lines
    context = run.get("context")
    if isinstance(context, Mapping) and context:
        pairs = "  ".join(f"{key}={_fmt(value)}" for key, value in
                          sorted(context.items(), key=lambda kv: str(kv[0])))
        lines.append(f"run: {pairs}")
    lines.append(f"events: {_fmt(run.get('events'))}  "
                 f"trace schema: {_fmt(run.get('trace_schema'))}  "
                 f"complete: {_fmt(run.get('complete'))}")
    return lines


def _render_spans(doc: Mapping[str, object]) -> List[str]:
    spans = doc.get("spans")
    if not isinstance(spans, Mapping):
        return []
    lines = _section("spans (structural)")
    lines.append(f"total {_fmt(spans.get('structural'))}, "
                 f"unclosed {_fmt(spans.get('unclosed'))}")
    by_name = spans.get("by_name")
    if isinstance(by_name, Mapping) and by_name:
        lines.append(_counts_line(by_name))
    return lines


def _render_epochs(doc: Mapping[str, object]) -> List[str]:
    epochs = doc.get("epochs")
    if not isinstance(epochs, Sequence) or isinstance(epochs, str):
        return []
    lines = _section("fault epochs: critical path "
                     "(fault.apply -> first recovered delivery)")
    if not epochs:
        lines.append("(no fault epochs in this trace)")
        return lines
    lines.append(f"  {'epoch':>5} {'t0':>7} {'holddown':>9} "
                 f"{'flood+spf':>10} {'bgp':>7} {'rebuild':>8} "
                 f"{'other':>7} {'total':>7}")
    for entry in epochs:
        if not isinstance(entry, Mapping):
            continue
        path = entry.get("critical_path")
        path = path if isinstance(path, Mapping) else {}
        lines.append(
            f"  {_fmt(entry.get('epoch')):>5} {_fmt(entry.get('t0')):>7} "
            f"{_fmt(path.get('igp_holddown')):>9} "
            f"{_fmt(path.get('igp_flood_spf')):>10} "
            f"{_fmt(path.get('bgp_resync')):>7} "
            f"{_fmt(path.get('vnbone_rebuild')):>8} "
            f"{_fmt(path.get('other')):>7} {_fmt(path.get('total')):>7}")
    for entry in epochs:
        if not isinstance(entry, Mapping):
            continue
        for side in ("transient", "recovered"):
            report = entry.get(side)
            if isinstance(report, Mapping):
                lines.append(
                    f"  epoch {_fmt(entry.get('epoch'))} {side:>9}: "
                    f"{_fmt(report.get('delivered'))}/"
                    f"{_fmt(report.get('attempted'))} delivered "
                    f"({_counts_line(report.get('outcomes'))})")
    return lines


def _render_forwarding(doc: Mapping[str, object]) -> List[str]:
    forwarding = doc.get("forwarding")
    if not isinstance(forwarding, Mapping):
        return []
    lines = _section("forwarding")
    lines.append(f"packets: {_fmt(forwarding.get('packets'))}  "
                 f"outcomes: {_counts_line(forwarding.get('outcomes'))}")
    dists = forwarding.get("distributions")
    if isinstance(dists, Mapping) and dists:
        lines.append(f"  {'metric':>16} {'count':>7} {'min':>8} {'mean':>8} "
                     f"{'stddev':>8} {'max':>8}")
        for name in sorted(dists, key=str):
            lines.append(_dist_row(str(name), dists[name]))
    for title, key in (("blackholes", "blackholes"), ("loops", "loops")):
        table = forwarding.get(key)
        if not isinstance(table, Mapping):
            continue
        lines.append(f"{title}: {_fmt(table.get('count'))} "
                     f"({_counts_line(table.get('by_outcome'))})")
        examples = table.get("examples")
        if isinstance(examples, Sequence) and not isinstance(examples, str):
            for example in examples:
                if isinstance(example, Mapping):
                    reason = example.get("drop_reason")
                    lines.append(f"    t={_fmt(example.get('t'))} "
                                 f"{_fmt(example.get('outcome'))}"
                                 + (f": {reason}" if reason else ""))
    return lines


def _render_probes(doc: Mapping[str, object]) -> List[str]:
    probes = doc.get("probes")
    if not isinstance(probes, Mapping):
        return []
    lines = _section("reachability probes")
    lines.append(f"probes: {_fmt(probes.get('count'))}  "
                 f"outcomes: {_counts_line(probes.get('outcomes'))}")
    lines.append(f"  {'metric':>16} {'count':>7} {'min':>8} {'mean':>8} "
                 f"{'stddev':>8} {'max':>8}")
    lines.append(_dist_row("path stretch", probes.get("stretch")))
    lines.append(_dist_row("encapsulations", probes.get("encapsulations")))
    return lines


def _render_timeline(doc: Mapping[str, object],
                     max_rows: Optional[int]) -> List[str]:
    timeline = doc.get("timeline")
    if not isinstance(timeline, Sequence) or isinstance(timeline, str):
        return []
    lines = _section("convergence timeline (metric.sample)")
    if not timeline:
        lines.append("(no sampler attached)")
        return lines
    shown = timeline if max_rows is None else timeline[:max_rows]
    for entry in shown:
        if not isinstance(entry, Mapping):
            continue
        counters = entry.get("counters")
        gauges = entry.get("gauges")
        parts = [f"t={_fmt(entry.get('t')):>6}"]
        if isinstance(counters, Mapping) and counters:
            parts.append(_counts_line(counters))
        if isinstance(gauges, Mapping) and gauges:
            parts.append(_counts_line(gauges))
        lines.append("  " + "  |  ".join(parts))
    if max_rows is not None and len(timeline) > max_rows:
        lines.append(f"  ... {len(timeline) - max_rows} more samples "
                     "(use --json for the full timeline)")
    return lines


def render_report(doc: Mapping[str, object],
                  max_timeline_rows: Optional[int] = 20) -> str:
    """Render a report document as fixed-width human tables."""
    lines: List[str] = []
    lines.extend(_render_run(doc))
    lines.extend(_render_spans(doc))
    lines.extend(_render_epochs(doc))
    lines.extend(_render_forwarding(doc))
    lines.extend(_render_probes(doc))
    lines.extend(_render_timeline(doc, max_timeline_rows))
    return "\n".join(lines)


__all__ = ["render_report"]
