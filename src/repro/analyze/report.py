"""Build a ``repro.report/v1`` document from one JSONL trace.

One streaming pass over the trace (:func:`iter_trace_events`) feeds a
:class:`_Collector`:

* bounded *structural* spans (epochs, reconvergence episodes, hold-down
  timers, rebuilds) are kept as a :class:`SpanForest`;
* high-volume ``forward`` spans are **aggregated, never stored** —
  outcome counts, Welford hop/encapsulation distributions, bounded
  blackhole/loop example lists, and per-epoch phase attribution via the
  parent ``fault.workload`` span;
* ``reach.probe`` events feed the path-stretch distribution (stretch is
  an oracle quantity — trace cost over the true shortest path — that
  the emitting side computes because the trace alone cannot);
* ``metric.sample`` events become the convergence timeline.

The resulting document deliberately excludes the trace *file path* and
every ``wall_*`` field, so two same-seed runs produce byte-identical
reports no matter where their traces were written.

Critical path
-------------
Per fault epoch, sim-time from ``fault.apply`` (the epoch's ``t0``) to
the first recovered delivery, split into phases:

``igp_holddown``
    ``t0`` until the last ``igp.holddown`` span under the epoch ends —
    the quiet period before the IGP floods the topology change.
``igp_flood_spf``
    hold-down expiry until the epoch's ``fault.reconverge`` span ends —
    LSA flooding plus SPF recomputation across the affected domains.
``bgp_resync``
    total duration of ``orchestrator.reconverge`` spans under the
    epoch's ``vnbone.rebuild`` spans — inter-domain state settling
    after membership changed.
``vnbone_rebuild``
    the remainder of the ``vnbone.rebuild`` spans — tunnel re-derivation
    and FIB reinstall.
``other``
    residual between the phase sum and ``total`` (workload scheduling,
    probe time before the first delivered packet).
``total``
    ``t0`` until the end of the first ``forward`` span under the
    epoch's ``phase="recovered"`` workload that reports
    ``outcome="delivered"``.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analyze.reader import (Event, SpanForest, SpanNode, as_float,
                                  as_str, build_span_forest,
                                  iter_trace_events)
from repro.obs.spans import SPAN_END, SPAN_START
from repro.obs.tracer import RUN_END, RUN_START

#: Schema tag stamped into every report document.
REPORT_SCHEMA = "repro.report/v1"

#: Terminal outcomes that mean "the packet silently vanished".
BLACKHOLE_OUTCOMES = frozenset({"no-route", "no-vn-handler", "fault-dropped",
                                "dropped"})

#: Terminal outcomes that mean "the packet cycled until killed".
LOOP_OUTCOMES = frozenset({"loop", "ttl-expired"})

#: Per-packet span kinds aggregated instead of stored in the forest.
_AGGREGATED_SPANS = frozenset({"forward", "forward.multicast"})

#: How many example drops each detector keeps (bounded memory).
_MAX_EXAMPLES = 10


class _Dist:
    """Streaming distribution: count/min/max plus Welford mean/stddev."""

    __slots__ = ("count", "_min", "_max", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "stddev": 0.0}
        return {"count": float(self.count), "min": self._min,
                "max": self._max, "mean": self._mean,
                "stddev": math.sqrt(self._m2 / self.count)}


def _bump(counts: Dict[str, int], key: str) -> None:
    counts[key] = counts.get(key, 0) + 1


class _Collector:
    """Single-pass trace state: structural spans + streamed aggregates."""

    def __init__(self) -> None:
        self.context: Dict[str, object] = {}
        self.trace_schema: Optional[str] = None
        self.event_count = 0
        self.run_ended = False
        # Structural span forest (per-packet spans are skipped).
        self._structural: List[Event] = []
        # Live map: workload span_id -> (epoch span_id, phase).
        self._workload_phase: Dict[str, Tuple[str, str]] = {}
        # Live map: in-flight forward span_id -> (epoch span_id, phase).
        self._forward_phase: Dict[str, Tuple[str, str]] = {}
        # Per (epoch span_id, phase): outcome counts.
        self.phase_outcomes: Dict[Tuple[str, str], Dict[str, int]] = {}
        # Per epoch span_id: t of the first recovered delivered forward.
        self.first_recovered_delivery: Dict[str, float] = {}
        # Forwarding aggregates.
        self.packets = 0
        self.outcomes: Dict[str, int] = {}
        self.hop_dists: Dict[str, _Dist] = {
            name: _Dist() for name in ("physical_hops", "vn_hops",
                                       "encapsulations", "decapsulations",
                                       "max_depth", "latency")}
        self.blackhole_counts: Dict[str, int] = {}
        self.blackhole_examples: List[Dict[str, object]] = []
        self.loop_counts: Dict[str, int] = {}
        self.loop_examples: List[Dict[str, object]] = []
        # reach.probe aggregates.
        self.probes = 0
        self.probe_outcomes: Dict[str, int] = {}
        self.stretch = _Dist()
        # Optional (trace schema v3+): pre-v3 traces never emitted
        # delay_stretch, so the dist just stays empty (count 0).
        self.delay_stretch = _Dist()
        self.probe_encap = _Dist()
        # metric.sample timeline.
        self.timeline: List[Dict[str, object]] = []

    # -- per-event dispatch --------------------------------------------------
    def feed(self, event: Event) -> None:
        self.event_count += 1
        kind = event.get("kind")
        if kind == SPAN_START:
            self._on_span_start(event)
        elif kind == SPAN_END:
            self._on_span_end(event)
        elif kind == "reach.probe":
            self._on_probe(event)
        elif kind == "metric.sample":
            self._on_sample(event)
        elif kind == RUN_START:
            context = event.get("context")
            if isinstance(context, dict):
                self.context = context
            self.trace_schema = as_str(event.get("schema"))
        elif kind == RUN_END:
            self.run_ended = True

    def _on_span_start(self, event: Event) -> None:
        name = as_str(event.get("name"))
        span_id = as_str(event.get("span_id"))
        if name is None or span_id is None:
            return
        if name == "forward":
            parent_id = as_str(event.get("parent_id"))
            if parent_id is not None and parent_id in self._workload_phase:
                self._forward_phase[span_id] = self._workload_phase[parent_id]
            return
        if name in _AGGREGATED_SPANS:
            return
        self._structural.append(event)
        if name == "fault.workload":
            parent_id = as_str(event.get("parent_id"))
            phase = as_str(event.get("phase"))
            if parent_id is not None and phase is not None:
                self._workload_phase[span_id] = (parent_id, phase)

    def _on_span_end(self, event: Event) -> None:
        span_id = as_str(event.get("span_id"))
        name = as_str(event.get("name"))
        if span_id is None:
            return
        if name == "forward":
            self._on_forward_end(event, span_id)
            return
        if name in _AGGREGATED_SPANS:
            return
        self._structural.append(event)
        self._workload_phase.pop(span_id, None)

    def _on_forward_end(self, event: Event, span_id: str) -> None:
        self.packets += 1
        outcome = as_str(event.get("outcome")) or "unknown"
        _bump(self.outcomes, outcome)
        for field, dist in self.hop_dists.items():
            value = as_float(event.get(field))
            if value is not None:
                dist.add(value)
        if outcome in BLACKHOLE_OUTCOMES:
            _bump(self.blackhole_counts, outcome)
            self._example(self.blackhole_examples, event, outcome)
        elif outcome in LOOP_OUTCOMES:
            _bump(self.loop_counts, outcome)
            self._example(self.loop_examples, event, outcome)
        attribution = self._forward_phase.pop(span_id, None)
        if attribution is None:
            return
        epoch_id, phase = attribution
        _bump(self.phase_outcomes.setdefault((epoch_id, phase), {}), outcome)
        if phase == "recovered" and outcome == "delivered":
            t = as_float(event.get("t"))
            if t is not None and epoch_id not in self.first_recovered_delivery:
                self.first_recovered_delivery[epoch_id] = t

    @staticmethod
    def _example(bucket: List[Dict[str, object]], event: Event,
                 outcome: str) -> None:
        if len(bucket) >= _MAX_EXAMPLES:
            return
        example: Dict[str, object] = {"outcome": outcome}
        t = as_float(event.get("t"))
        if t is not None:
            example["t"] = t
        reason = as_str(event.get("drop_reason"))
        if reason:
            example["drop_reason"] = reason
        bucket.append(example)

    def _on_probe(self, event: Event) -> None:
        self.probes += 1
        _bump(self.probe_outcomes, as_str(event.get("outcome")) or "unknown")
        stretch = as_float(event.get("stretch"))
        if stretch is not None:
            self.stretch.add(stretch)
        delay_stretch = as_float(event.get("delay_stretch"))
        if delay_stretch is not None:
            self.delay_stretch.add(delay_stretch)
        encap = as_float(event.get("encapsulations"))
        if encap is not None:
            self.probe_encap.add(encap)

    def _on_sample(self, event: Event) -> None:
        entry: Dict[str, object] = {}
        t = as_float(event.get("t"))
        if t is not None:
            entry["t"] = t
        sample = event.get("sample")
        if isinstance(sample, int) and not isinstance(sample, bool):
            entry["sample"] = sample
        for key in ("counters", "gauges"):
            value = event.get(key)
            entry[key] = dict(value) if isinstance(value, dict) else {}
        self.timeline.append(entry)

    # -- post-pass assembly --------------------------------------------------
    def forest(self) -> SpanForest:
        return build_span_forest(self._structural)


def _clamp(value: float) -> float:
    return value if value > 0.0 else 0.0


def _critical_path(forest: SpanForest, epoch: SpanNode,
                   first_delivery: Optional[float]
                   ) -> Dict[str, Optional[float]]:
    """Phase breakdown for one ``fault.epoch`` span (see module doc)."""
    t0 = epoch.t_start if epoch.t_start is not None else 0.0
    subtree = list(forest.walk(epoch.span_id))
    holddown_end = t0
    reconverge_end: Optional[float] = None
    bgp_resync = 0.0
    rebuild_total = 0.0
    for node in subtree:
        if node.name == "igp.holddown" and node.t_end is not None:
            holddown_end = max(holddown_end, node.t_end)
        elif node.name == "fault.reconverge" and node.t_end is not None:
            reconverge_end = (node.t_end if reconverge_end is None
                              else max(reconverge_end, node.t_end))
        elif node.name == "vnbone.rebuild":
            duration = node.duration
            if duration is not None:
                rebuild_total += duration
            for child in forest.walk(node.span_id):
                if (child.name == "orchestrator.reconverge"
                        and child.duration is not None):
                    bgp_resync += child.duration
    igp_holddown = _clamp(holddown_end - t0)
    t_hd = t0 + igp_holddown
    igp_flood_spf = (_clamp(reconverge_end - t_hd)
                     if reconverge_end is not None else 0.0)
    vnbone_rebuild = _clamp(rebuild_total - bgp_resync)
    phases_sum = igp_holddown + igp_flood_spf + bgp_resync + vnbone_rebuild
    total: Optional[float] = None
    other: Optional[float] = None
    if first_delivery is not None:
        total = _clamp(first_delivery - t0)
        other = _clamp(total - phases_sum)
    return {"igp_holddown": igp_holddown, "igp_flood_spf": igp_flood_spf,
            "bgp_resync": bgp_resync, "vnbone_rebuild": vnbone_rebuild,
            "other": other, "total": total}


def _phase_delivery(outcomes: Optional[Dict[str, int]]
                    ) -> Optional[Dict[str, object]]:
    if outcomes is None:
        return None
    attempted = sum(outcomes.values())
    delivered = outcomes.get("delivered", 0)
    return {"attempted": attempted, "delivered": delivered,
            "delivery_ratio": delivered / attempted if attempted else 0.0,
            "outcomes": dict(sorted(outcomes.items()))}


def _epoch_entry(forest: SpanForest, epoch: SpanNode,
                 collector: _Collector) -> Dict[str, object]:
    first_delivery = collector.first_recovered_delivery.get(epoch.span_id)
    entry: Dict[str, object] = {
        "epoch": epoch.fields.get("epoch"),
        "t0": epoch.t_start,
        "t_end": epoch.t_end,
        "faults": epoch.end_fields.get("faults"),
        "reconverged_at": epoch.end_fields.get("reconverged_at"),
        "reconvergence_time": epoch.end_fields.get("reconvergence_time"),
        "first_recovered_delivery_t": first_delivery,
        "critical_path": _critical_path(forest, epoch, first_delivery),
        "transient": _phase_delivery(
            collector.phase_outcomes.get((epoch.span_id, "transient"))),
        "recovered": _phase_delivery(
            collector.phase_outcomes.get((epoch.span_id, "recovered"))),
    }
    return entry


def _span_summary(forest: SpanForest) -> Dict[str, object]:
    by_name: Dict[str, int] = {}
    unclosed = 0
    for node in forest.spans.values():
        _bump(by_name, node.name)
        if not node.ended:
            unclosed += 1
    return {"structural": len(forest.spans), "unclosed": unclosed,
            "by_name": dict(sorted(by_name.items()))}


def build_report(events: Union[str, "os.PathLike[str]", Iterable[Event]],
                 ) -> Dict[str, object]:
    """Build the ``repro.report/v1`` document for a trace.

    *events* is a trace file path (streamed line by line) or an already
    parsed event iterator.  One pass, bounded memory: only structural
    spans and fixed-size aggregates are retained.
    """
    if isinstance(events, (str, os.PathLike)):
        stream: Iterator[Event] = iter_trace_events(events)
    else:
        stream = iter(events)
    collector = _Collector()
    for event in stream:
        collector.feed(event)
    forest = collector.forest()
    epochs = sorted(forest.by_name("fault.epoch"),
                    key=lambda node: (node.t_start is None,
                                      node.t_start or 0.0, node.span_id))
    doc: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "run": {"context": collector.context,
                "trace_schema": collector.trace_schema,
                "events": collector.event_count,
                "complete": collector.run_ended},
        "spans": _span_summary(forest),
        "forwarding": {
            "packets": collector.packets,
            "outcomes": dict(sorted(collector.outcomes.items())),
            "distributions": {name: dist.summary()
                              for name, dist in
                              sorted(collector.hop_dists.items())},
            "blackholes": {
                "count": sum(collector.blackhole_counts.values()),
                "by_outcome": dict(sorted(collector.blackhole_counts.items())),
                "examples": collector.blackhole_examples},
            "loops": {
                "count": sum(collector.loop_counts.values()),
                "by_outcome": dict(sorted(collector.loop_counts.items())),
                "examples": collector.loop_examples},
        },
        "probes": {"count": collector.probes,
                   "outcomes": dict(sorted(collector.probe_outcomes.items())),
                   "stretch": collector.stretch.summary(),
                   "delay_stretch": collector.delay_stretch.summary(),
                   "encapsulations": collector.probe_encap.summary()},
        "epochs": [_epoch_entry(forest, epoch, collector)
                   for epoch in epochs],
        "timeline": collector.timeline,
    }
    return doc


__all__ = ["BLACKHOLE_OUTCOMES", "LOOP_OUTCOMES", "REPORT_SCHEMA",
           "build_report"]
