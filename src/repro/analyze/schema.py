"""Validation of ``repro.report/v1`` documents.

Hand-rolled structural checks (this repo takes no third-party schema
dependency): :func:`validate_report_dict` walks a parsed report and
returns human-readable problems, empty meaning valid.  The CLI's
``report --check`` and the CI report-smoke job gate on it, so a report
that drifts from the documented shape fails loudly instead of silently
feeding downstream tooling garbage.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.analyze.report import REPORT_SCHEMA

#: Required keys of a distribution summary (see ``_Dist.summary``).
_DIST_KEYS = ("count", "min", "max", "mean", "stddev")

#: Required phase keys of an epoch's critical path.
_PHASE_KEYS = ("igp_holddown", "igp_flood_spf", "bgp_resync",
               "vnbone_rebuild", "other", "total")

#: Phases that must always be concrete numbers (``other``/``total`` may
#: be null when no recovered delivery exists to anchor them).
_REQUIRED_PHASES = ("igp_holddown", "igp_flood_spf", "bgp_resync",
                    "vnbone_rebuild")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _require_mapping(doc: Mapping[str, object], key: str, where: str,
                     errors: List[str]) -> Optional[Mapping[str, object]]:
    value = doc.get(key)
    if not isinstance(value, Mapping):
        errors.append(f"{where}: missing or non-object {key!r}")
        return None
    return value


def _require_counts(table: object, where: str, errors: List[str]) -> None:
    if not isinstance(table, Mapping):
        errors.append(f"{where}: missing or non-object outcome table")
        return
    for key, value in table.items():
        if not isinstance(key, str) or not isinstance(value, int) \
                or isinstance(value, bool):
            errors.append(f"{where}: entry {key!r} is not str -> int")


def _check_dist(dist: object, where: str, errors: List[str]) -> None:
    if not isinstance(dist, Mapping):
        errors.append(f"{where}: not a distribution object")
        return
    for key in _DIST_KEYS:
        if not _is_number(dist.get(key)):
            errors.append(f"{where}: missing or non-numeric {key!r}")


def _check_drop_table(table: object, where: str, errors: List[str]) -> None:
    if not isinstance(table, Mapping):
        errors.append(f"{where}: missing or non-object")
        return
    if not _is_number(table.get("count")):
        errors.append(f"{where}: missing or non-numeric 'count'")
    _require_counts(table.get("by_outcome"), f"{where}.by_outcome", errors)
    examples = table.get("examples")
    if not isinstance(examples, Sequence) or isinstance(examples, str):
        errors.append(f"{where}: 'examples' is not a list")


def _check_epoch(entry: object, where: str, errors: List[str]) -> None:
    if not isinstance(entry, Mapping):
        errors.append(f"{where}: not an object")
        return
    path = entry.get("critical_path")
    if not isinstance(path, Mapping):
        errors.append(f"{where}: missing or non-object 'critical_path'")
    else:
        for key in _PHASE_KEYS:
            if key not in path:
                errors.append(f"{where}.critical_path: missing phase {key!r}")
            elif key in _REQUIRED_PHASES and not _is_number(path.get(key)):
                errors.append(f"{where}.critical_path: phase {key!r} is not "
                              "a number")
            elif path.get(key) is not None and not _is_number(path.get(key)):
                errors.append(f"{where}.critical_path: phase {key!r} is "
                              "neither a number nor null")
    for side in ("transient", "recovered"):
        report = entry.get(side)
        if report is None:
            continue
        if not isinstance(report, Mapping):
            errors.append(f"{where}.{side}: neither an object nor null")
            continue
        for key in ("attempted", "delivered"):
            if not _is_number(report.get(key)):
                errors.append(f"{where}.{side}: missing or non-numeric "
                              f"{key!r}")
        _require_counts(report.get("outcomes"), f"{where}.{side}.outcomes",
                        errors)


def _check_timeline(timeline: object, errors: List[str]) -> None:
    if not isinstance(timeline, Sequence) or isinstance(timeline, str):
        errors.append("timeline: not a list")
        return
    for n, entry in enumerate(timeline):
        if not isinstance(entry, Mapping):
            errors.append(f"timeline[{n}]: not an object")
            continue
        if not _is_number(entry.get("t")):
            errors.append(f"timeline[{n}]: missing or non-numeric 't'")
        for key in ("counters", "gauges"):
            if not isinstance(entry.get(key), Mapping):
                errors.append(f"timeline[{n}]: missing or non-object {key!r}")


def validate_report_dict(doc: Mapping[str, object]) -> List[str]:
    """Validate a parsed report document; returns problems (empty == OK)."""
    errors: List[str] = []
    schema = doc.get("schema")
    if schema != REPORT_SCHEMA:
        errors.append(f"schema: expected {REPORT_SCHEMA!r}, got {schema!r}")
    run = _require_mapping(doc, "run", "report", errors)
    if run is not None:
        if not isinstance(run.get("context"), Mapping):
            errors.append("run: missing or non-object 'context'")
        if not _is_number(run.get("events")):
            errors.append("run: missing or non-numeric 'events'")
    spans = _require_mapping(doc, "spans", "report", errors)
    if spans is not None:
        for key in ("structural", "unclosed"):
            if not _is_number(spans.get(key)):
                errors.append(f"spans: missing or non-numeric {key!r}")
        _require_counts(spans.get("by_name"), "spans.by_name", errors)
    forwarding = _require_mapping(doc, "forwarding", "report", errors)
    if forwarding is not None:
        if not _is_number(forwarding.get("packets")):
            errors.append("forwarding: missing or non-numeric 'packets'")
        _require_counts(forwarding.get("outcomes"), "forwarding.outcomes",
                        errors)
        dists = forwarding.get("distributions")
        if not isinstance(dists, Mapping):
            errors.append("forwarding: missing or non-object 'distributions'")
        else:
            for name, dist in dists.items():
                _check_dist(dist, f"forwarding.distributions.{name}", errors)
        _check_drop_table(forwarding.get("blackholes"),
                          "forwarding.blackholes", errors)
        _check_drop_table(forwarding.get("loops"), "forwarding.loops", errors)
    probes = _require_mapping(doc, "probes", "report", errors)
    if probes is not None:
        if not _is_number(probes.get("count")):
            errors.append("probes: missing or non-numeric 'count'")
        _require_counts(probes.get("outcomes"), "probes.outcomes", errors)
        _check_dist(probes.get("stretch"), "probes.stretch", errors)
        _check_dist(probes.get("encapsulations"), "probes.encapsulations",
                    errors)
        # delay_stretch arrived with trace schema v3; reports built from
        # older traces carry an empty dist, but a report missing the key
        # entirely (pre-v3 *reports*) is still accepted.
        if "delay_stretch" in probes:
            _check_dist(probes.get("delay_stretch"), "probes.delay_stretch",
                        errors)
    epochs = doc.get("epochs")
    if not isinstance(epochs, Sequence) or isinstance(epochs, str):
        errors.append("epochs: not a list")
    else:
        for n, entry in enumerate(epochs):
            _check_epoch(entry, f"epochs[{n}]", errors)
    _check_timeline(doc.get("timeline"), errors)
    return errors


__all__ = ["validate_report_dict"]
