"""IP Anycast deployment schemes (Section 3 of the paper)."""

from repro.anycast.default_routes import DefaultRootedAnycast
from repro.anycast.gia import GIA_INDICATOR, GiaAnycast
from repro.anycast.global_routes import (ANYCAST_POOL, AnycastAddressPool,
                                         GlobalAnycast)
from repro.anycast.service import AnycastScheme

__all__ = ["DefaultRootedAnycast", "GIA_INDICATOR", "GiaAnycast", "ANYCAST_POOL",
           "AnycastAddressPool", "GlobalAnycast", "AnycastScheme"]
