"""Inter-domain anycast, option 2: aggregatable addresses, default routes.

The paper's preferred scheme (Section 3.2): the anycast address is
carved out of the unicast block of a **default ISP** — e.g. the first
ISP to deploy IPvN.  Nothing new enters global BGP: packets to the
anycast address follow the ordinary route towards the default ISP, and
standard unicast routing "will deliver anycast packets to the closest
IPvN router along the path from the source to the default ISP",
because any adopting ISP on that path advertises the address in its IGP
and thereby intercepts the packet (longest-prefix match: the IGP host
route beats the BGP route to the default ISP's covering block).

To widen their reach, non-default adopters can enter *bilateral peering
agreements* to advertise their anycast route to chosen neighbors
(:meth:`DefaultRootedAnycast.advertise_to_neighbor`), which is the
optional, independently deployable optimization the paper leans on —
"even with no cooperation from non-IPvN domains, the above scheme will
route anycast correctly, although imperfectly in terms of proximity."
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.errors import DeploymentError
from repro.bgp.routes import RouteScope
from repro.core.orchestrator import Orchestrator
from repro.anycast.service import AnycastScheme


class DefaultRootedAnycast(AnycastScheme):
    """Option 2: the anycast address lives in the default ISP's block."""

    def __init__(self, orchestrator: Orchestrator, name: str,
                 default_asn: int) -> None:
        super().__init__(orchestrator, name)
        if default_asn not in self.network.domains:
            raise DeploymentError(f"unknown default ISP AS{default_asn}")
        self.default_asn = default_asn
        #: (advertiser_asn, neighbor_asn) bilateral advertisement edges.
        self._advertisements: Set[Tuple[int, int]] = set()

    def allocate_address(self) -> IPv4Address:
        """Reserve the highest free address of the default ISP's block.

        Scanning downward from the top keeps anycast addresses clear of
        the host/router allocations that grow upward from the bottom,
        and lets several concurrent deployments share a default ISP.
        """
        from repro.net.errors import AddressError

        domain = self.network.domains[self.default_asn]
        candidate = (domain.prefix.address.value
                     + (1 << (32 - domain.prefix.plen)) - 2)
        while candidate > domain.prefix.address.value:
            try:
                return domain.reserve_ipv4(IPv4Address(candidate))
            except AddressError:
                candidate -= 1
        raise DeploymentError(
            f"AS{self.default_asn} has no free address for an anycast group")

    def on_domain_joined(self, asn: int) -> None:
        """No inter-domain action needed — that is the whole point.

        The default ISP's covering block is already in BGP; adopters
        advertise only internally (done by the base class via the IGP).
        """

    def on_domain_left(self, asn: int) -> None:
        for advertiser, neighbor in sorted(self._advertisements):
            if advertiser == asn:
                self.withdraw_from_neighbor(advertiser, neighbor)

    # -- the optional inter-domain advertisement (Figure 2: Q peers with Y) ----
    def advertise_to_neighbor(self, advertiser_asn: int, neighbor_asn: int,
                              transitive: Optional[bool] = None) -> None:
        """Set up a bilateral anycast advertisement agreement.

        *advertiser_asn* (a member domain) announces the anycast host
        route to *neighbor_asn*, which has agreed to accept it.  The
        route is not re-exported further unless the policy's agreements
        are marked transitive.
        """
        if advertiser_asn not in self._member_domains:
            raise DeploymentError(
                f"AS{advertiser_asn} has no anycast members; nothing to advertise")
        if neighbor_asn not in self.network.domains[advertiser_asn].relationships:
            raise DeploymentError(
                f"AS{advertiser_asn} and AS{neighbor_asn} are not neighbors")
        pfx = Prefix.host(self.address)
        agreements = self.orchestrator.agreements
        if transitive is not None:
            agreements.transitive = transitive
        agreements.add(pfx, advertiser_asn, neighbor_asn)
        if (advertiser_asn, neighbor_asn) not in self._advertisements:
            self._advertisements.add((advertiser_asn, neighbor_asn))
        # (Re-)originate so the new agreement edge gets an announcement.
        self.orchestrator.bgp.withdraw(advertiser_asn, pfx)
        self.orchestrator.bgp.originate(advertiser_asn, pfx,
                                        scope=RouteScope.ANYCAST_BILATERAL)

    def withdraw_from_neighbor(self, advertiser_asn: int, neighbor_asn: int) -> None:
        pfx = Prefix.host(self.address)
        self.orchestrator.agreements.remove(pfx, advertiser_asn, neighbor_asn)
        self._advertisements.discard((advertiser_asn, neighbor_asn))
        remaining = {edge for edge in self._advertisements if edge[0] == advertiser_asn}
        if not remaining:
            self.orchestrator.bgp.withdraw(advertiser_asn, pfx)

    @property
    def advertisements(self) -> Set[Tuple[int, int]]:
        return set(self._advertisements)

    def default_share(self, sources: list) -> float:
        """Fraction of probes from *sources* terminating in the default ISP.

        Quantifies the paper's noted failing: "the default provider ...
        receives a larger than normal share of IPvN traffic."
        """
        if not sources:
            return 0.0
        hits = 0
        answered = 0
        for source in sources:
            member = self.resolve(source)
            if member is None:
                continue
            answered += 1
            if self.network.node(member).domain_id == self.default_asn:
                hits += 1
        return hits / answered if answered else 0.0
