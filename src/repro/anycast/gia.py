"""GIA-style anycast (Katabi et al.), the paper's scalable comparison point.

Section 3.2 summarizes GIA: anycast addresses carry a well-known
*Anycast Indicator* prefix, with the remaining bits drawn from the
unicast space of a **home domain**; a router with no anycast entry
derives the home domain from the address and forwards the packet along
its ordinary unicast route towards the home — which is guaranteed to
host at least one member.  An optional BGP extension lets border
routers *search* for nearby members and install better-than-home
routes.

Our model keeps GIA's two essential properties and its essential cost:

* **Scalability**: non-member domains hold *no per-group routing
  state* — the home mapping is algorithmic.  We realize it by
  installing, at convergence time, a per-router alias entry that simply
  mirrors the router's current route towards the home domain's block
  (``routing_state_added`` reports these as zero, since a real GIA
  router computes them from the address bits).
* **Proximity recovery via search**: GIA-capable domains within
  ``search_ttl`` AS hops of a member domain route towards that nearer
  member domain instead of the home.  These *are* counted as added
  state.
* **Deployment cost**: only ``capable_asns`` understand the indicator;
  a client in a non-capable domain whose path never crosses a capable
  or member domain simply cannot reach the group — the deployment
  barrier that makes the paper prefer its default-ISP scheme.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.net.address import IPv4Address, Prefix
from repro.net.errors import DeploymentError
from repro.net.node import FibEntry, RouteSource
from repro.core.orchestrator import Orchestrator
from repro.anycast.service import AnycastScheme

#: The well-known Anycast Indicator: top octet 241 (disjoint from both
#: the domain blocks and option 1's 240/8 pool).
GIA_INDICATOR = Prefix(IPv4Address(241 << 24), 8)


class GiaAnycast(AnycastScheme):
    """A GIA anycast group with home domain *home_asn*."""

    def __init__(self, orchestrator: Orchestrator, name: str, home_asn: int,
                 capable_asns: Optional[Set[int]] = None,
                 search_ttl: int = 1, group_index: int = 0) -> None:
        super().__init__(orchestrator, name)
        if home_asn not in self.network.domains:
            raise DeploymentError(f"unknown GIA home domain AS{home_asn}")
        if not 0 <= group_index < 256:
            raise DeploymentError("GIA group index must be in 0..255")
        self.home_asn = home_asn
        self.capable_asns = capable_asns  # None means every domain
        self.search_ttl = search_ttl
        self.group_index = group_index
        self._installed: Dict[str, Prefix] = {}
        self._search_entries: Dict[int, int] = {}

    # -- addressing ---------------------------------------------------------------
    def allocate_address(self) -> IPv4Address:
        """Indicator bits + home-domain bits + the group number.

        The home-domain bits are derived from the home's unicast block
        (GIA's design); the low byte distinguishes concurrent groups
        homed in the same domain.
        """
        home = self.network.domains[self.home_asn]
        suffix = home.prefix.address.value & 0x00FF_FF00
        return IPv4Address(GIA_INDICATOR.address.value | suffix
                           | self.group_index)

    def is_capable(self, asn: int) -> bool:
        return self.capable_asns is None or asn in self.capable_asns

    # -- membership hooks ------------------------------------------------------------
    def on_domain_joined(self, asn: int) -> None:
        """GIA adds nothing to BGP; routes are derived at install time."""

    def on_domain_left(self, asn: int) -> None:
        if asn == self.home_asn and self._member_domains:
            raise DeploymentError(
                "GIA requires the home domain to retain at least one member")

    # -- route derivation (runs after every orchestrator convergence) ----------------
    def post_converge_install(self) -> None:
        """Install GIA forwarding state into capable domains' routers."""
        self._uninstall()
        if not self._members:
            return
        target_by_asn = self._search_targets()
        anycast_pfx = Prefix.host(self.address)
        for asn in sorted(self.network.domains):
            if not self.is_capable(asn):
                continue
            if asn in self._member_domains:
                continue  # the IGP anycast extension already routes it
            target_prefix = target_by_asn.get(asn)
            if target_prefix is None:
                continue
            for router in self.network.routers(asn):
                current = router.fib4.lookup(self._representative(target_prefix))
                if current is None or current.next_hop is None:
                    continue
                router.fib4.install(FibEntry(prefix=anycast_pfx,
                                             next_hop=current.next_hop,
                                             source=RouteSource.STATIC,
                                             metric=current.metric))
                self._installed[router.node_id] = anycast_pfx

    def _uninstall(self) -> None:
        for router_id, pfx in self._installed.items():
            node = self.network.nodes.get(router_id)
            if node is not None:
                node.fib4.withdraw(pfx, RouteSource.STATIC)
        self._installed.clear()
        self._search_entries.clear()

    @staticmethod
    def _representative(pfx: Prefix) -> IPv4Address:
        return IPv4Address(pfx.address.value + 1)

    def _search_targets(self) -> Dict[int, Prefix]:
        """Per capable AS, the domain prefix its GIA route should follow.

        Within ``search_ttl`` AS hops of a member domain (BFS over the
        inter-domain adjacency), the search extension found that nearer
        member domain; beyond it, GIA falls back to the home domain.
        """
        home_prefix = self.network.domains[self.home_asn].prefix
        distance: Dict[int, int] = {}
        source_of: Dict[int, int] = {}
        queue = deque()
        for asn in sorted(self._member_domains):
            distance[asn] = 0
            source_of[asn] = asn
            queue.append(asn)
        while queue:
            asn = queue.popleft()
            if distance[asn] >= self.search_ttl:
                continue
            for neighbor in sorted(self.network.domains[asn].neighbor_asns()):
                if neighbor in distance:
                    continue
                distance[neighbor] = distance[asn] + 1
                source_of[neighbor] = source_of[asn]
                queue.append(neighbor)
        targets: Dict[int, Prefix] = {}
        for asn in self.network.domains:
            if asn in self._member_domains:
                continue
            nearest = source_of.get(asn)
            if nearest is not None and nearest != self.home_asn:
                targets[asn] = self.network.domains[nearest].prefix
                self._search_entries[asn] = self._search_entries.get(asn, 0) + 1
            else:
                targets[asn] = home_prefix
        return targets

    # -- state accounting (experiment E5) ------------------------------------------------
    def routing_state_added(self) -> Dict[int, int]:
        """Per-AS routing state attributable to this group.

        Non-member capable domains following the *home* derivation hold
        zero per-group state (the mapping is algorithmic in real GIA);
        search-installed better routes are genuinely per-group and count.
        The home domain carries one registry entry.
        """
        counts = {asn: 0 for asn in self.network.domains}
        counts[self.home_asn] = 1
        for asn, n in self._search_entries.items():
            counts[asn] = counts.get(asn, 0) + n
        return counts
