"""Inter-domain anycast, option 1: non-aggregatable addresses, global routes.

Section 3.2: "designate a portion of the regular unicast address space
to serve as anycast addresses and require that ISPs propagate route
advertisements for anycast addresses in their inter-domain routing
protocols."

Every domain with at least one member *originates* the anycast host
route into BGP; standard path-vector selection then steers each AS
toward its policy-closest originating domain.  Propagation is a policy
change: domains whose ``propagates_anycast`` flag is off neither accept
nor re-export these routes (they did not make the policy change), which
is exactly the deployment concern that motivates option 2.
"""

from __future__ import annotations

from typing import Iterator

from repro.net.address import IPv4Address, Prefix
from repro.net.errors import DeploymentError
from repro.bgp.routes import RouteScope
from repro.core.orchestrator import Orchestrator
from repro.anycast.service import AnycastScheme

#: The designated anycast portion of the unicast space (class-E-like,
#: guaranteed disjoint from domain blocks which the generators draw from
#: 10.0.0.0/8 and 172.16.0.0/12).
ANYCAST_POOL = Prefix(IPv4Address.parse("240.0.0.0"), 8)


class AnycastAddressPool:
    """Sequential allocator over the designated anycast block."""

    def __init__(self, pool: Prefix = ANYCAST_POOL) -> None:
        self.pool = pool
        self._next = pool.address.value + 1

    def allocate(self) -> IPv4Address:
        limit = self.pool.address.value + (1 << (32 - self.pool.plen))
        if self._next >= limit:
            raise DeploymentError(f"anycast pool {self.pool} exhausted")
        address = IPv4Address(self._next)
        self._next += 1
        return address

    def __iter__(self) -> Iterator[IPv4Address]:
        while True:
            yield self.allocate()


class GlobalAnycast(AnycastScheme):
    """Option 1: every member domain originates the anycast prefix in BGP."""

    def __init__(self, orchestrator: Orchestrator, name: str,
                 pool: AnycastAddressPool = None) -> None:  # type: ignore[assignment]
        super().__init__(orchestrator, name)
        self._pool = pool if pool is not None else AnycastAddressPool()

    def allocate_address(self) -> IPv4Address:
        return self._pool.allocate()

    def on_domain_joined(self, asn: int) -> None:
        self.orchestrator.bgp.originate(asn, Prefix.host(self.address),
                                        scope=RouteScope.ANYCAST_GLOBAL)

    def on_domain_left(self, asn: int) -> None:
        self.orchestrator.bgp.withdraw(asn, Prefix.host(self.address))
