"""The anycast service façade shared by all deployment schemes.

An :class:`AnycastScheme` manages one anycast group — in the paper, one
group per IPvN generation being deployed.  Membership is exactly the
RFC 1546 model the paper adopts in its "stripped down" form
(Section 3.1): only configured routers inside the infrastructure are
members, membership is controlled by ISPs, and a member simply

1. *accepts* packets addressed to the anycast address (local-address
   set), and
2. *advertises* a route to it — into its domain's IGP always, and
   inter-domain according to the scheme.

Concrete schemes differ only in the inter-domain part:

* :class:`~repro.anycast.global_routes.GlobalAnycast` — option 1,
  non-aggregatable prefixes in BGP;
* :class:`~repro.anycast.default_routes.DefaultRootedAnycast` —
  option 2, addresses rooted in a default ISP;
* :class:`~repro.anycast.gia.GiaAnycast` — the GIA comparison point.

``resolve()`` answers "which member does a packet from here reach?" by
actually forwarding a probe through the data plane, so every experiment
measures the real mechanism rather than an oracle.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.errors import DeploymentError
from repro.net.forwarding import ForwardingTrace, Outcome
from repro.net.packet import ipv4_packet
from repro.core.orchestrator import Orchestrator


class AnycastScheme(abc.ABC):
    """One anycast group under one deployment scheme."""

    def __init__(self, orchestrator: Orchestrator, name: str) -> None:
        self.orchestrator = orchestrator
        self.network = orchestrator.network
        self.name = name
        self._members: Set[str] = set()
        self._member_domains: Set[int] = set()
        self._address: Optional[IPv4Address] = None

    # -- scheme-specific hooks -------------------------------------------------
    @abc.abstractmethod
    def allocate_address(self) -> IPv4Address:
        """Pick the group's anycast address (scheme-specific address space)."""

    @abc.abstractmethod
    def on_domain_joined(self, asn: int) -> None:
        """Inter-domain actions when a domain gains its first member."""

    @abc.abstractmethod
    def on_domain_left(self, asn: int) -> None:
        """Inter-domain actions when a domain loses its last member."""

    def post_converge_install(self) -> None:
        """Hook run after each orchestrator convergence.

        Most schemes need nothing here; GIA derives its forwarding
        aliases from the converged unicast tables at this point.
        """

    # -- common machinery ----------------------------------------------------------
    @property
    def address(self) -> IPv4Address:
        if self._address is None:
            self._address = self.allocate_address()
        return self._address

    @property
    def members(self) -> Set[str]:
        return set(self._members)

    @property
    def member_domains(self) -> Set[int]:
        return set(self._member_domains)

    def is_member(self, router_id: str) -> bool:
        return router_id in self._members

    def add_member(self, router_id: str) -> None:
        """Configure *router_id* as a group member (accept + advertise)."""
        if router_id in self._members:
            return
        node = self.network.node(router_id)
        if not node.is_router:
            raise DeploymentError(f"{router_id!r} is a host; anycast members are routers")
        address = self.address
        node.add_local_ipv4(address)
        self.orchestrator.igp(node.domain_id).advertise_anycast(router_id, address)
        self._members.add(router_id)
        if node.domain_id not in self._member_domains:
            self._member_domains.add(node.domain_id)
            self.on_domain_joined(node.domain_id)

    def remove_member(self, router_id: str) -> None:
        if router_id not in self._members:
            return
        node = self.network.node(router_id)
        node.remove_local_ipv4(self.address)
        self.orchestrator.igp(node.domain_id).withdraw_anycast(router_id, self.address)
        self._members.discard(router_id)
        domain_members = {m for m in self._members
                          if self.network.node(m).domain_id == node.domain_id}
        if not domain_members:
            self._member_domains.discard(node.domain_id)
            self.on_domain_left(node.domain_id)

    def members_in_domain(self, asn: int) -> Set[str]:
        return {m for m in self._members if self.network.node(m).domain_id == asn}

    # -- resolution and quality metrics ------------------------------------------------
    def resolve(self, start_node_id: str) -> Optional[str]:
        """The member a packet from *start_node_id* actually reaches."""
        trace = self.probe(start_node_id)
        if trace.outcome is not Outcome.DELIVERED:
            return None
        return trace.delivered_to

    def probe(self, start_node_id: str) -> ForwardingTrace:
        """Forward a real probe packet to the anycast address."""
        node = self.network.node(start_node_id)
        packet = ipv4_packet(node.ipv4, self.address)
        return self.orchestrator.forward(packet, start_node_id)

    def path_cost(self, trace: ForwardingTrace) -> float:
        """Sum of link costs along a probe's path."""
        path = trace.node_path()
        total = 0.0
        for a, b in zip(path, path[1:]):
            link = self.network.link_between(a, b)
            if link is not None:
                total += link.cost
        return total

    def optimal_member_cost(self, start_node_id: str) -> Optional[Tuple[str, float]]:
        """The truly closest member and its shortest-path cost (oracle)."""
        best: Optional[Tuple[str, float]] = None
        for member in sorted(self._members):
            result = self.network.shortest_path(start_node_id, member)
            if result is None:
                continue
            cost, _ = result
            if best is None or cost < best[1]:
                best = (member, cost)
        return best

    def proximity_stretch(self, start_node_id: str) -> Optional[float]:
        """Actual probe cost divided by the oracle-closest member cost.

        1.0 means the scheme found the true closest member; ``None``
        means the probe did not reach any member (access failure).
        """
        trace = self.probe(start_node_id)
        if trace.outcome is not Outcome.DELIVERED:
            return None
        actual = self.path_cost(trace)
        oracle = self.optimal_member_cost(start_node_id)
        if oracle is None:
            return None
        _, optimal = oracle
        if optimal == 0.0:
            return 1.0
        return actual / optimal

    # -- state accounting (experiment E5) -------------------------------------------------
    def routing_state_added(self) -> Dict[int, int]:
        """Extra inter-domain routing-table entries per AS due to this group.

        Computed from the BGP Loc-RIBs: entries whose prefix is the
        group's host route.
        """
        pfx = Prefix.host(self.address)
        counts: Dict[int, int] = {}
        for asn, speaker in self.orchestrator.bgp.speakers.items():
            counts[asn] = 1 if pfx in speaker.loc_rib else 0
        return counts

    def describe(self) -> str:
        return (f"{type(self).__name__}({self.name}, address={self.address}, "
                f"members={len(self._members)} in {len(self._member_domains)} domains)")
