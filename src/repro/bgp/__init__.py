"""Inter-domain path-vector routing (BGP) with anycast-aware policy."""

from repro.bgp.egress import (EgressCache, grouped_install,
                              grouped_install_enabled,
                              set_grouped_install_default)
from repro.bgp.policy import BgpPolicy, BilateralAgreements, local_pref_for
from repro.bgp.protocol import SESSION_DELAY, BgpProtocol, BgpSpeaker
from repro.bgp.routes import (LOCAL_PREF_CUSTOMER, LOCAL_PREF_ORIGINATED,
                              LOCAL_PREF_PEER, LOCAL_PREF_PROVIDER, BgpRoute,
                              BgpUpdate, RouteScope)

__all__ = ["BgpPolicy", "BilateralAgreements", "local_pref_for", "SESSION_DELAY",
           "BgpProtocol", "BgpSpeaker", "EgressCache", "grouped_install",
           "grouped_install_enabled", "set_grouped_install_default",
           "LOCAL_PREF_CUSTOMER",
           "LOCAL_PREF_ORIGINATED", "LOCAL_PREF_PEER", "LOCAL_PREF_PROVIDER",
           "BgpRoute", "BgpUpdate", "RouteScope"]
