"""Inter-domain path-vector routing (BGP) with anycast-aware policy."""

from repro.bgp.policy import BgpPolicy, BilateralAgreements, local_pref_for
from repro.bgp.protocol import SESSION_DELAY, BgpProtocol, BgpSpeaker
from repro.bgp.routes import (LOCAL_PREF_CUSTOMER, LOCAL_PREF_ORIGINATED,
                              LOCAL_PREF_PEER, LOCAL_PREF_PROVIDER, BgpRoute,
                              BgpUpdate, RouteScope)

__all__ = ["BgpPolicy", "BilateralAgreements", "local_pref_for", "SESSION_DELAY",
           "BgpProtocol", "BgpSpeaker", "LOCAL_PREF_CUSTOMER",
           "LOCAL_PREF_ORIGINATED", "LOCAL_PREF_PEER", "LOCAL_PREF_PROVIDER",
           "BgpRoute", "BgpUpdate", "RouteScope"]
