"""Topology-versioned egress-link maps for BGP forwarding installation.

Installing converged BGP state asks, for every (domain, next-hop AS)
pair, which live inter-domain links leave the domain towards that
neighbor — the answer drives both hot-potato egress selection and
session liveness checks.  The seed implementation recomputed the scan
(`sorted borders × inter-domain neighbors`) once per Loc-RIB prefix;
at internet scale a transit AS carries one route per remote AS over a
handful of sessions, so the same scan repeated thousands of times per
install pass.

:class:`EgressCache` memoizes the scan per ``(asn, next_hop_asn)``
key, invalidated — exactly like :class:`repro.perf.cache.PathCache` —
by any :attr:`~repro.net.network.Network.topology_version` change.
This is answer-preserving because every event that can change the
result bumps the version: link ``fail()``/``restore()`` flips (the
``_on_state_change`` hook), ``add_link``, and node crash/recovery.
Border-router *sets* only grow via ``add_link``/``connect_domains``,
which bump too.

The module also owns the process-wide **grouped-install** switch, the
PR-9 sibling of :func:`repro.perf.cache.caching` and
:func:`repro.net.fastpath.flow_fastpath`: it selects, at
:class:`~repro.bgp.protocol.BgpProtocol` construction time, between
the optimized control plane (grouped/incremental FIB installation and
MRAI-style update batching) and the per-prefix seed path kept as the
equivalence baseline::

    from repro.bgp.egress import grouped_install

    with grouped_install(False):        # seed-faithful control plane
        orchestrator = Orchestrator(network)

Both paths must produce byte-identical FIBs — ``tests/bgp`` asserts
it across the workload matrix, fault plans, and caching modes.

Per rule D4 the hit/miss/invalidation counters are registered behind
``obs.enabled``; the cache keeps plain integer stats that are always
live, so tests need no observability handle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.net.link import LinkScope
from repro.obs import get_obs
from repro.perf.cache import caching_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

#: Process-wide default consulted by BgpProtocol at construction time.
_GROUPED_INSTALL_DEFAULT = True


def grouped_install_enabled() -> bool:
    """The current process-wide grouped-install default."""
    return _GROUPED_INSTALL_DEFAULT


def set_grouped_install_default(enabled: bool) -> bool:
    """Set the process-wide grouped-install default; returns the
    previous value."""
    global _GROUPED_INSTALL_DEFAULT
    previous = _GROUPED_INSTALL_DEFAULT
    _GROUPED_INSTALL_DEFAULT = enabled
    return previous


@contextmanager
def grouped_install(enabled: bool) -> Iterator[None]:
    """Scope the grouped-install default (``with grouped_install(False):``
    builds a seed-faithful baseline); protocols constructed inside the
    block keep the setting for their lifetime."""
    previous = set_grouped_install_default(enabled)
    try:
        yield
    finally:
        set_grouped_install_default(previous)


#: One cache key: (domain ASN, next-hop ASN).
EgressKey = Tuple[int, int]
#: One memoized answer: (local border, remote border) pairs.
EgressLinks = List[Tuple[str, str]]


class EgressCache:
    """Memoizes per-domain egress-link scans per topology version.

    Callers treat returned lists as read-only (all in-repo consumers
    do).  ``hits``/``misses``/``invalidations`` are plain integers so
    they are observable without an active
    :class:`~repro.obs.Observability`; the equivalent
    ``perf.bgp.egress_cache.*`` counters feed the bench harness.
    """

    def __init__(self, network: "Network",
                 enabled: Optional[bool] = None) -> None:
        self.network = network
        self.obs = get_obs()
        self.enabled = caching_enabled() if enabled is None else enabled
        self._version = network.topology_version
        self._links: Dict[EgressKey, EgressLinks] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- invalidation -----------------------------------------------------
    def _check_version(self) -> None:
        version = self.network.topology_version
        if version != self._version:
            if self._links:
                self._links.clear()
                self.invalidations += 1
                if self.obs.enabled:
                    self.obs.counter(
                        "perf.bgp.egress_cache.invalidations").inc()
            self._version = version

    def __len__(self) -> int:
        return len(self._links)

    # -- queries ----------------------------------------------------------
    def links(self, asn: int, next_hop_asn: int) -> EgressLinks:
        """(local border, remote border) pairs over live links from
        *asn* to *next_hop_asn* — bit-identical to the uncached scan."""
        self._check_version()
        key = (asn, next_hop_asn)
        if self.enabled:
            cached = self._links.get(key)
            if cached is not None:
                self.hits += 1
                if self.obs.enabled:
                    self.obs.counter("perf.bgp.egress_cache.hits").inc()
                return cached
        self.misses += 1
        if self.obs.enabled:
            self.obs.counter("perf.bgp.egress_cache.misses").inc()
        pairs = self._compute(asn, next_hop_asn)
        if self.enabled:
            self._links[key] = pairs
        return pairs

    def _compute(self, asn: int, next_hop_asn: int) -> EgressLinks:
        """The raw scan the seed's ``_egress_links`` performed."""
        pairs: EgressLinks = []
        domain = self.network.domains[asn]
        for border_id in sorted(domain.border_routers):
            for neighbor_id, _link in self.network.neighbors(
                    border_id, scope=LinkScope.INTER_DOMAIN):
                if self.network.node(neighbor_id).domain_id == next_hop_asn:
                    pairs.append((border_id, neighbor_id))
        return pairs

    def stats(self) -> Dict[str, int]:
        """Plain-int snapshot (works without an observability handle)."""
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "entries": len(self._links)}
