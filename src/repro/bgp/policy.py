"""BGP import/export policy: Gao-Rexford economics plus anycast policy.

The policy layer answers two questions for a speaker:

* **import**: do I accept this route from that neighbor, and at what
  local preference?
* **export**: do I offer my best route for this prefix to that
  neighbor?

Default behaviour is the standard valley-free model: routes learned
from customers are exported to everyone; routes learned from peers or
providers are exported only to customers.  Anycast-scoped routes add
the paper's Section 3.2 rules on top (see :mod:`repro.bgp.routes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.net.address import Prefix
from repro.net.domain import Domain, Relationship
from repro.bgp.routes import (LOCAL_PREF_CUSTOMER, LOCAL_PREF_PEER,
                              LOCAL_PREF_PROVIDER, BgpRoute, RouteScope)


def local_pref_for(rel: Relationship) -> int:
    """Gao-Rexford preference for a route learned over *rel*."""
    if rel is Relationship.CUSTOMER:
        return LOCAL_PREF_CUSTOMER
    if rel is Relationship.PEER:
        return LOCAL_PREF_PEER
    return LOCAL_PREF_PROVIDER


@dataclass
class BilateralAgreements:
    """Option-2 anycast advertisement agreements (Section 3.2).

    An agreement ``(advertiser, neighbor)`` for a prefix means the
    advertiser may announce its anycast route for that prefix to that
    neighbor, and the neighbor will accept it.  ``transitive`` lets the
    receiver re-export over its *own* agreements — the ablation knob
    for "other ISPs pursue inter-domain advertising".
    """

    transitive: bool = False
    _edges: Dict[Prefix, Set[Tuple[int, int]]] = field(default_factory=dict)

    def add(self, prefix: Prefix, advertiser_asn: int, neighbor_asn: int) -> None:
        self._edges.setdefault(prefix, set()).add((advertiser_asn, neighbor_asn))

    def remove(self, prefix: Prefix, advertiser_asn: int, neighbor_asn: int) -> None:
        self._edges.get(prefix, set()).discard((advertiser_asn, neighbor_asn))

    def allows(self, prefix: Prefix, advertiser_asn: int, neighbor_asn: int) -> bool:
        return (advertiser_asn, neighbor_asn) in self._edges.get(prefix, set())

    def partners_of(self, prefix: Prefix, advertiser_asn: int) -> Set[int]:
        return {nbr for adv, nbr in self._edges.get(prefix, set())
                if adv == advertiser_asn}

    def clear(self) -> None:
        self._edges.clear()


class BgpPolicy:
    """Import/export decisions for one internetwork's BGP."""

    def __init__(self, agreements: Optional[BilateralAgreements] = None) -> None:
        self.agreements = agreements if agreements is not None else BilateralAgreements()

    # -- import ----------------------------------------------------------------
    def accept(self, domain: Domain, route: BgpRoute, from_asn: int) -> Optional[BgpRoute]:
        """The route as imported by *domain*, or None to reject it."""
        if route.contains_asn(domain.asn):
            return None  # AS-path loop
        rel = domain.relationship_with(from_asn)
        if rel is None:
            return None  # no session with this neighbor
        if route.scope is RouteScope.ANYCAST_GLOBAL and not domain.propagates_anycast:
            # Option 1 requires a policy change; this ISP hasn't made it.
            return None
        if route.scope is RouteScope.ANYCAST_BILATERAL:
            if not self.agreements.allows(route.prefix, from_asn, domain.asn):
                return None
        local_pref = local_pref_for(rel)
        if route.scope.is_anycast:
            # Section 3.1's decentralized ISP control: a domain may steer
            # its anycast traffic towards chosen origins via local-pref.
            override = domain.anycast_origin_pref.get(route.origin_asn)
            if override is not None:
                local_pref = override
        return BgpRoute(prefix=route.prefix, as_path=route.as_path,
                        local_pref=local_pref, scope=route.scope,
                        learned_from=from_asn)

    # -- export ------------------------------------------------------------------
    def should_export(self, domain: Domain, route: BgpRoute, to_asn: int) -> bool:
        """Whether *domain* offers *route* to neighbor *to_asn*."""
        rel_to = domain.relationship_with(to_asn)
        if rel_to is None:
            return False
        if route.learned_from == to_asn:
            return False  # never reflect a route back
        if route.scope is RouteScope.ANYCAST_BILATERAL:
            return self._export_bilateral(domain, route, to_asn)
        if route.scope is RouteScope.ANYCAST_GLOBAL and not domain.propagates_anycast:
            return False
        # Gao-Rexford: customer routes and our own go to everyone;
        # peer/provider routes go only to customers.
        if route.originated:
            return True
        rel_from = domain.relationship_with(route.learned_from)
        if rel_from is Relationship.CUSTOMER:
            return True
        return rel_to is Relationship.CUSTOMER

    def _export_bilateral(self, domain: Domain, route: BgpRoute, to_asn: int) -> bool:
        if route.originated:
            return self.agreements.allows(route.prefix, domain.asn, to_asn)
        if not self.agreements.transitive:
            return False
        # Transitive mode: the receiver may pass it along over its own
        # agreement edges.
        return self.agreements.allows(route.prefix, domain.asn, to_asn)
