"""The inter-domain routing protocol: path-vector BGP at AS granularity.

One :class:`BgpSpeaker` per domain holds an Adj-RIB-In per neighbor and
a Loc-RIB of best routes; the :class:`BgpProtocol` container wires
speakers together along the inter-domain links, runs the message-driven
propagation on the shared event scheduler, and — after convergence —
installs forwarding state into every router's FIB
(:meth:`BgpProtocol.install_routes`).

Forwarding installation follows hot-potato practice: each domain picks
its best route per prefix; the routers with an inter-domain link to the
chosen next-hop AS become egress borders; every other router forwards
towards its IGP-nearest egress border, using the IGP-installed route to
that border's loopback.  This keeps the data plane honest — if the IGP
hasn't learned a path to the egress, the BGP route is unusable and is
not installed.

The install path runs in one of two modes, selected process-wide at
construction time by :func:`repro.bgp.egress.grouped_install`:

* **grouped/incremental** (the default) — a router's hot-potato egress
  decision depends only on the route's next-hop AS, never on the
  prefix, so Loc-RIB prefixes are grouped by ``learned_from`` and the
  per-router IGP scan runs once per (router, next-hop AS) group before
  bulk-installing every prefix in the group: O(P×R×B) FIB lookups
  become O(R×B×A) for A next-hop ASes.  When the topology version is
  unchanged since the last install, only *dirty* prefixes (Loc-RIB
  deltas tracked by :meth:`BgpSpeaker.decide`) are withdrawn and
  reinstalled instead of rebuilding every FIB from scratch.  Update
  propagation additionally coalesces all updates one speaker sends one
  neighbor at one tick into a single MRAI-style batch event
  (per-prefix send order preserved; per-message scheduling returns
  whenever a :class:`~repro.net.simulator.MessagePerturbation` is
  active, so loss/jitter semantics stay exact).
* **seed** — the per-prefix reference path, kept verbatim so
  equivalence tests and the bench's control-plane leg can prove the
  grouped mode byte-identical (``tests/bgp/test_install_equivalence``).

Both modes produce identical FIBs because the per-(prefix, router)
entry is a pure function of (Loc-RIB route, egress links, IGP state),
FIB installs are per-source idempotent overwrites, and BGP-carried
prefixes never cover border-router loopbacks (other domains' address
blocks are disjoint), so install order cannot feed back into the
hot-potato lookups.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import Prefix
from repro.net.domain import Domain
from repro.net.errors import RoutingError
from repro.net.network import Network
from repro.net.node import FibEntry, RouteSource, Router
from repro.net.simulator import EventScheduler, MessageStats
from repro.obs import get_obs
from repro.bgp.egress import EgressCache, grouped_install_enabled
from repro.bgp.policy import BgpPolicy
from repro.bgp.routes import (LOCAL_PREF_ORIGINATED, BgpRoute, BgpUpdate,
                              RouteScope)

#: Inter-domain message propagation delay (one MRAI-ish tick).
SESSION_DELAY = 1.0

#: One MRAI batch key: (sender ASN, receiver ASN, send tick).
BatchKey = Tuple[int, int, float]


class BgpSpeaker:
    """BGP state for one domain."""

    def __init__(self, domain: Domain) -> None:
        self.domain = domain
        self.adj_rib_in: Dict[Prefix, Dict[int, BgpRoute]] = {}
        self.loc_rib: Dict[Prefix, BgpRoute] = {}
        self.originated: Dict[Prefix, BgpRoute] = {}
        #: Loc-RIB deltas since the last FIB install (the incremental
        #: reinstall set); cleared by BgpProtocol after each install.
        self.dirty: Set[Prefix] = set()

    @property
    def asn(self) -> int:
        return self.domain.asn

    def originate(self, prefix: Prefix, scope: RouteScope = RouteScope.NORMAL) -> BgpRoute:
        route = BgpRoute(prefix=prefix, as_path=(self.asn,),
                         local_pref=LOCAL_PREF_ORIGINATED, scope=scope,
                         learned_from=None)
        self.originated[prefix] = route
        return route

    def withdraw_origination(self, prefix: Prefix) -> bool:
        return self.originated.pop(prefix, None) is not None

    def best_route(self, prefix: Prefix) -> Optional[BgpRoute]:
        return self.loc_rib.get(prefix)

    def decide(self, prefix: Prefix) -> Optional[BgpRoute]:
        """Run the decision process for *prefix*; returns the new best.

        Any change to the Loc-RIB entry (including its removal) marks
        the prefix dirty so the next install pass can reinstall just
        the deltas.
        """
        old = self.loc_rib.get(prefix)
        candidates: List[BgpRoute] = []
        if prefix in self.originated:
            candidates.append(self.originated[prefix])
        candidates.extend(self.adj_rib_in.get(prefix, {}).values())
        if not candidates:
            if self.loc_rib.pop(prefix, None) is not None:
                self.dirty.add(prefix)
            return None
        best = min(candidates, key=BgpRoute.selection_key)
        if best != old:
            self.dirty.add(prefix)
        self.loc_rib[prefix] = best
        return best

    def rib_size(self) -> int:
        """Loc-RIB size — the per-AS routing-state metric of experiment E5."""
        return len(self.loc_rib)

    def adj_rib_in_size(self) -> int:
        return sum(len(routes) for routes in self.adj_rib_in.values())


class BgpProtocol:
    """Message-driven path-vector routing across all domains."""

    def __init__(self, network: Network, scheduler: EventScheduler,
                 policy: Optional[BgpPolicy] = None) -> None:
        self.network = network
        self.scheduler = scheduler
        self.policy = policy if policy is not None else BgpPolicy()
        self.stats = MessageStats()
        self.obs = get_obs()
        self._c_announcements = self.obs.counter("bgp.announcements")
        self._c_withdrawals = self.obs.counter("bgp.withdrawals")
        self._c_install_lookups = self.obs.counter(
            "perf.bgp.install_fib_lookups")
        # Default-routed domains (scale-tier stubs) do not speak BGP:
        # they get no speaker, originate nothing, and — because _send
        # drops updates to unknown speakers — receive nothing.  Their
        # reachability rides on static routes (repro.topogen.scale).
        self.speakers: Dict[int, BgpSpeaker] = {
            asn: BgpSpeaker(domain) for asn, domain in network.domains.items()
            if not domain.default_routed}
        #: Sessions torn down by resync, awaiting physical restoration.
        self._down_sessions: Set[Tuple[int, int]] = set()
        #: Speakers whose every router is crashed (fault injection).
        self._down_speakers: Set[int] = set()
        self._started = False
        #: Memoized (asn, next_hop_asn) -> egress links (repro.bgp.egress).
        self.egress_cache = EgressCache(network)
        #: Grouped/incremental install + MRAI batching vs. the verbatim
        #: seed path; consulted process-wide at construction time.
        self.grouped_install = grouped_install_enabled()
        #: MRAI-style per-(session, tick) update coalescing; follows the
        #: install mode so the seed mode is seed-faithful end to end.
        self.batch_updates = self.grouped_install
        self._pending_batches: Dict[BatchKey, List[BgpUpdate]] = {}
        #: topology_version at each speaker's last install — the gate
        #: between full rebuilds and incremental dirty-set reinstalls.
        self._install_state: Dict[int, int] = {}
        #: FIB lookups performed by forwarding-state installation.
        #: Plain int, always live — the bench's primary control-plane
        #: signal (the perf.bgp.install_fib_lookups counter mirrors it
        #: under an enabled observability handle).
        self.install_fib_lookups = 0
        #: Cumulative wall-clock cost of install_routes (D2: wall_*).
        self.wall_install_seconds = 0.0

    def speaker(self, asn: int) -> BgpSpeaker:
        try:
            return self.speakers[asn]
        except KeyError:
            raise RoutingError(f"no BGP speaker for AS{asn}") from None

    def add_speaker(self, domain: Domain) -> BgpSpeaker:
        """Register a domain added after protocol construction."""
        if domain.asn in self.speakers:
            raise RoutingError(f"speaker for AS{domain.asn} already exists")
        if domain.default_routed:
            raise RoutingError(
                f"AS{domain.asn} is default-routed; it does not speak BGP")
        speaker = BgpSpeaker(domain)
        self.speakers[domain.asn] = speaker
        return speaker

    # -- origination ------------------------------------------------------------
    def originate(self, asn: int, prefix: Prefix,
                  scope: RouteScope = RouteScope.NORMAL) -> None:
        """Have AS *asn* originate *prefix* and propagate it."""
        speaker = self.speaker(asn)
        speaker.originate(prefix, scope=scope)
        best = speaker.decide(prefix)
        if best is not None:
            self._export(speaker, prefix, best)

    def withdraw(self, asn: int, prefix: Prefix) -> None:
        """Withdraw *asn*'s origination of *prefix* and repropagate."""
        speaker = self.speaker(asn)
        if not speaker.withdraw_origination(prefix):
            return
        self._reconverge_prefix(speaker, prefix)

    def _reconverge_prefix(self, speaker: BgpSpeaker, prefix: Prefix) -> None:
        best = speaker.decide(prefix)
        if best is not None:
            self._export(speaker, prefix, best)
        else:
            self._export_withdrawal(speaker, prefix)

    # -- propagation ----------------------------------------------------------------
    def _export(self, speaker: BgpSpeaker, prefix: Prefix, route: BgpRoute) -> None:
        for neighbor_asn in sorted(speaker.domain.neighbor_asns()):
            if self.policy.should_export(speaker.domain, route, neighbor_asn):
                # Originated routes already carry our ASN; learned routes
                # get it prepended on the way out (standard AS-path build).
                exported = route if route.originated else route.prepended(speaker.asn)
                update = BgpUpdate(sender_asn=speaker.asn, prefix=prefix,
                                   route=exported)
            else:
                # If policy stops exporting a route we may have exported
                # before (e.g. best changed from customer- to peer-learned),
                # the neighbor must hear a withdrawal.
                update = BgpUpdate(sender_asn=speaker.asn, prefix=prefix, route=None)
            self._send(neighbor_asn, update)

    def _export_withdrawal(self, speaker: BgpSpeaker, prefix: Prefix) -> None:
        for neighbor_asn in sorted(speaker.domain.neighbor_asns()):
            self._send(neighbor_asn, BgpUpdate(sender_asn=speaker.asn,
                                               prefix=prefix, route=None))

    def _send(self, to_asn: int, update: BgpUpdate) -> None:
        if to_asn not in self.speakers:
            return
        if update.sender_asn in self._down_speakers:
            return  # crashed speakers fall silent
        self.stats.record_send()
        if self.obs.enabled:
            if update.is_withdrawal:
                self._c_withdrawals.inc()
            else:
                self._c_announcements.inc()
        if (not self.batch_updates
                or self.scheduler.message_perturbation is not None):
            # Per-message scheduling: the seed path.  A perturbation
            # draws loss/jitter per message, so batching would change
            # which updates are lost or reordered — fall back.
            self.scheduler.schedule_message(
                SESSION_DELAY, lambda: self._receive(to_asn, update))
            return
        key: BatchKey = (update.sender_asn, to_asn, self.scheduler.now)
        batch = self._pending_batches.get(key)
        if batch is None:
            batch = []
            self._pending_batches[key] = batch
            self.scheduler.schedule_message(
                SESSION_DELAY, lambda: self._deliver_batch(key))
        batch.append(update)

    def _deliver_batch(self, key: BatchKey) -> None:
        """Deliver one MRAI batch: every update one speaker queued for
        one neighbor at one tick, replayed in send order — so the
        per-prefix, per-session delivery order the seed path guarantees
        is preserved exactly."""
        updates = self._pending_batches.pop(key, None)
        if updates is None:
            return
        to_asn = key[1]
        for update in updates:
            self._receive(to_asn, update)

    def _receive(self, asn: int, update: BgpUpdate) -> None:
        if asn in self._down_speakers:
            return  # message lost: every router of the AS is down
        self.stats.record_delivery()
        speaker = self.speaker(asn)
        rib = speaker.adj_rib_in.get(update.prefix)
        if update.is_withdrawal:
            if rib is None or update.sender_asn not in rib:
                return
            del rib[update.sender_asn]
            if not rib:
                # Prune on last-neighbor delete: an empty per-prefix
                # dict would otherwise be iterated by every future
                # flush/size scan (the PR-9 leak fix).
                del speaker.adj_rib_in[update.prefix]
        else:
            if update.route is None:
                raise RoutingError(
                    f"announcement for {update.prefix} from "
                    f"AS{update.sender_asn} carries no route")
            imported = self.policy.accept(speaker.domain, update.route,
                                          update.sender_asn)
            if imported is None:
                if rib is not None and update.sender_asn in rib:
                    del rib[update.sender_asn]  # route became unacceptable
                    if not rib:
                        del speaker.adj_rib_in[update.prefix]
                else:
                    return
            else:
                previous = None if rib is None else rib.get(update.sender_asn)
                if previous == imported:
                    return
                if rib is None:
                    rib = {}
                    speaker.adj_rib_in[update.prefix] = rib
                rib[update.sender_asn] = imported
        old_best = speaker.loc_rib.get(update.prefix)
        new_best = speaker.decide(update.prefix)
        if new_best != old_best:
            if new_best is not None:
                self._export(speaker, update.prefix, new_best)
            else:
                self._export_withdrawal(speaker, update.prefix)

    # -- lifecycle --------------------------------------------------------------------
    def originate_domain_prefixes(self) -> None:
        """Every BGP-speaking domain announces its own address block."""
        for asn in sorted(self.speakers):
            self.originate(asn, self.network.domains[asn].prefix)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.originate_domain_prefixes()

    def converge(self, max_events: int = 2_000_000) -> int:
        """Drain BGP messages.  FIB installation is a separate step."""
        if not self._started:
            self.start()
        return self.scheduler.run_until_idle(max_events=max_events)

    # -- session maintenance ---------------------------------------------------------
    def resync_speakers(self) -> int:
        """Reconcile speaker liveness with the physical node state.

        A speaker is *crashed* once none of its domain's routers is up.
        Crashing loses all learned state — Adj-RIB-In and Loc-RIB are
        flushed, exactly as a real BGP restart would — and the speaker
        falls silent.  On revival it re-runs the decision process over
        its own originations and reannounces; routes it used to carry
        for others return only via neighbor reannouncement
        (:meth:`resync_sessions`).  Returns how many speakers changed
        liveness.  Run before :meth:`resync_sessions`.
        """
        changed = 0
        for asn in sorted(self.speakers):
            domain = self.network.domains[asn]
            alive = any(self.network.node(rid).up for rid in domain.routers)
            if not alive and asn not in self._down_speakers:
                self._down_speakers.add(asn)
                speaker = self.speakers[asn]
                # The flush empties the Loc-RIB wholesale, so every
                # previously-best prefix is a delta the next
                # incremental install must withdraw.
                speaker.dirty.update(speaker.loc_rib)
                speaker.adj_rib_in.clear()
                speaker.loc_rib.clear()
                changed += 1
            elif alive and asn in self._down_speakers:
                self._down_speakers.discard(asn)
                speaker = self.speakers[asn]
                for prefix in sorted(speaker.originated, key=Prefix.sort_key):
                    best = speaker.decide(prefix)
                    if best is not None:
                        self._export(speaker, prefix, best)
                changed += 1
        if changed and self.obs.enabled:
            self.obs.counter("bgp.speaker_transitions").inc(changed)
            self.obs.event("bgp.resync_speakers", t=self.scheduler.now,
                           changed=changed,
                           down=sorted(self._down_speakers))
            # Instant span (the flush itself is synchronous; its message
            # fallout drains under the enclosing reconvergence span).
            self.obs.span("bgp.resync", t=self.scheduler.now,
                          scope="speakers", changed=changed
                          ).end(t=self.scheduler.now)
        return changed

    def resync_sessions(self) -> int:
        """Reconcile BGP sessions with the physical topology.

        Sessions whose last live link vanished are torn down: routes
        learned over them are flushed and the decision process re-runs,
        propagating withdrawals or the new best routes.  Sessions that
        come *back* (their links restored) get a full re-announcement
        from both sides.  Returns the number of (speaker, neighbor)
        pairs flushed.  Run after topology changes, before reinstalling
        FIBs.
        """
        flushed_pairs = 0
        for asn in sorted(self.speakers):
            domain = self.network.domains[asn]
            for neighbor_asn in sorted(domain.neighbor_asns()):
                if neighbor_asn not in self.speakers:
                    continue
                alive = (bool(self._egress_links(asn, neighbor_asn))
                         and asn not in self._down_speakers
                         and neighbor_asn not in self._down_speakers)
                key = (asn, neighbor_asn)
                if alive:
                    if key in self._down_sessions:
                        self._down_sessions.discard(key)
                        if self.obs.enabled:
                            self.obs.counter("bgp.sessions_restored").inc()
                        self.reannounce(asn)
                    continue
                if key not in self._down_sessions and self.obs.enabled:
                    self.obs.counter("bgp.sessions_torn_down").inc()
                self._down_sessions.add(key)
                if self._flush_neighbor(asn, neighbor_asn):
                    flushed_pairs += 1
        if flushed_pairs and self.obs.enabled:
            self.obs.counter("bgp.sessions_flushed").inc(flushed_pairs)
            self.obs.span("bgp.resync", t=self.scheduler.now,
                          scope="sessions", flushed=flushed_pairs
                          ).end(t=self.scheduler.now)
        return flushed_pairs

    def _flush_neighbor(self, asn: int, neighbor_asn: int) -> bool:
        speaker = self.speaker(asn)
        flushed = False
        for prefix in sorted(speaker.adj_rib_in, key=Prefix.sort_key):
            rib = speaker.adj_rib_in[prefix]
            if neighbor_asn not in rib:
                continue
            del rib[neighbor_asn]
            if not rib:
                del speaker.adj_rib_in[prefix]  # prune: no empty rib dicts
            flushed = True
            old_best = speaker.loc_rib.get(prefix)
            new_best = speaker.decide(prefix)
            if new_best != old_best:
                if new_best is not None:
                    self._export(speaker, prefix, new_best)
                else:
                    self._export_withdrawal(speaker, prefix)
        return flushed

    def reannounce(self, asn: int) -> None:
        """Re-export every best route (after a session/link restoration)."""
        speaker = self.speaker(asn)
        for prefix in sorted(speaker.loc_rib, key=Prefix.sort_key):
            self._export(speaker, prefix, speaker.loc_rib[prefix])

    # -- forwarding-state installation --------------------------------------------------
    def _egress_links(self, asn: int, next_hop_asn: int) -> List[Tuple[str, str]]:
        """(local border, remote border) pairs over live links to
        *next_hop_asn* — memoized per topology version."""
        return self.egress_cache.links(asn, next_hop_asn)

    def install_routes(self) -> None:
        """Install converged BGP state into every router's FIB.

        Grouped mode rebuilds a domain in full only when the topology
        version moved since its last install; otherwise it reinstalls
        just the dirty Loc-RIB deltas.  Seed mode always rebuilds, one
        prefix at a time.  Either way the caller
        (:meth:`~repro.core.orchestrator.Orchestrator.install_routes`)
        bumps the forwarding fast path afterwards.
        """
        lookups_before = self.install_fib_lookups
        wall_t0 = time.perf_counter()
        for asn in sorted(self.speakers):
            self._install_domain(asn)
        self.wall_install_seconds += time.perf_counter() - wall_t0
        if self.obs.enabled:
            delta = self.install_fib_lookups - lookups_before
            if delta:
                self._c_install_lookups.inc(delta)

    def _install_domain(self, asn: int) -> None:
        speaker = self.speakers[asn]
        version = self.network.topology_version
        if not self.grouped_install:
            self._install_domain_seed(asn, speaker)
        elif self._install_state.get(asn) == version:
            self._install_domain_incremental(asn, speaker)
        else:
            self._install_domain_full(asn, speaker)
        # Both full paths leave FIBs consistent with the Loc-RIB at
        # this version, so the next unchanged-version pass may go
        # incremental; the dirty set has been folded in either way.
        self._install_state[asn] = version
        speaker.dirty.clear()

    def _domain_routers(self, asn: int) -> List[Router]:
        domain = self.network.domains[asn]
        return [self.network.node(rid) for rid in sorted(domain.routers)]

    def _install_domain_seed(self, asn: int, speaker: BgpSpeaker) -> None:
        """The per-prefix reference path: withdraw everything, then run
        the hot-potato scan once per (prefix, router).  Kept verbatim
        (modulo the cached sort key) as the equivalence baseline."""
        routers = self._domain_routers(asn)
        for router in routers:
            router.fib4.withdraw_all(RouteSource.BGP)
        for prefix, route in sorted(speaker.loc_rib.items(),
                                    key=lambda item: item[0].sort_key()):
            if route.originated:
                continue  # internal destinations are the IGP's job
            next_hop_asn = self._learned_from(asn, prefix, route)
            egress = self._egress_links(asn, next_hop_asn)
            if not egress:
                continue  # session exists but no live physical link
            remote_by_border = {local: remote for local, remote in egress}
            for router in routers:
                self._install_router(router, prefix, remote_by_border)

    def _install_domain_full(self, asn: int, speaker: BgpSpeaker) -> None:
        """Grouped full rebuild: one egress decision per (router,
        next-hop AS), bulk-installed across the group's prefixes."""
        routers = self._domain_routers(asn)
        for router in routers:
            router.fib4.withdraw_all(RouteSource.BGP)
        groups: Dict[int, List[Prefix]] = {}
        for prefix, route in speaker.loc_rib.items():
            if route.originated:
                continue  # internal destinations are the IGP's job
            groups.setdefault(self._learned_from(asn, prefix, route),
                              []).append(prefix)
        memo: Dict[Tuple[str, str], Optional[FibEntry]] = {}
        for next_hop_asn in sorted(groups):
            self._install_group(asn, routers, next_hop_asn,
                                sorted(groups[next_hop_asn],
                                       key=Prefix.sort_key), memo)

    def _install_domain_incremental(self, asn: int, speaker: BgpSpeaker) -> None:
        """Reinstall only the Loc-RIB deltas since the last install.

        Sound because the topology version is unchanged (checked by the
        caller): egress maps and the IGP routes the hot-potato scan
        reads cannot have moved, so every non-dirty prefix's installed
        entry is still exactly what a full rebuild would produce.
        """
        if not speaker.dirty:
            return
        routers = self._domain_routers(asn)
        dirty = sorted(speaker.dirty, key=Prefix.sort_key)
        for router in routers:
            fib = router.fib4
            for prefix in dirty:
                fib.withdraw(prefix, RouteSource.BGP)
        groups: Dict[int, List[Prefix]] = {}
        for prefix in dirty:
            route = speaker.loc_rib.get(prefix)
            if route is None or route.originated:
                continue  # withdrawn (or IGP-owned): the withdraw above sufficed
            groups.setdefault(self._learned_from(asn, prefix, route),
                              []).append(prefix)
        memo: Dict[Tuple[str, str], Optional[FibEntry]] = {}
        for next_hop_asn in sorted(groups):
            # Group lists inherit the sorted dirty order.
            self._install_group(asn, routers, next_hop_asn,
                                groups[next_hop_asn], memo)
        if self.obs.enabled:
            self.obs.counter("perf.bgp.incremental_installs").inc()

    def _learned_from(self, asn: int, prefix: Prefix, route: BgpRoute) -> int:
        next_hop_asn = route.learned_from
        if next_hop_asn is None:
            raise RoutingError(
                f"non-originated loc-rib route for {prefix} in AS{asn} "
                "has no learned_from neighbor")
        return next_hop_asn

    def _install_group(self, asn: int, routers: List[Router],
                       next_hop_asn: int, prefixes: List[Prefix],
                       memo: Optional[Dict[Tuple[str, str],
                                           Optional[FibEntry]]] = None
                       ) -> None:
        egress = self._egress_links(asn, next_hop_asn)
        if not egress:
            return  # session exists but no live physical link
        remote_by_border = {local: remote for local, remote in egress}
        for router in routers:
            decision = self._router_egress(router, remote_by_border, memo)
            if decision is None:
                continue  # egress unreachable via IGP; routes unusable here
            next_hop, metric = decision
            fib = router.fib4
            for prefix in prefixes:
                fib.install(FibEntry(prefix=prefix, next_hop=next_hop,
                                     source=RouteSource.BGP, metric=metric))

    def _install_router(self, router: Router, prefix: Prefix,
                        remote_by_border: Dict[str, str]) -> None:
        decision = self._router_egress(router, remote_by_border)
        if decision is None:
            return  # egress unreachable via IGP; BGP route unusable
        next_hop, metric = decision
        router.fib4.install(FibEntry(prefix=prefix, next_hop=next_hop,
                                     source=RouteSource.BGP, metric=metric))

    def _router_egress(self, router: Router, remote_by_border: Dict[str, str],
                       memo: Optional[Dict[Tuple[str, str],
                                           Optional[FibEntry]]] = None
                       ) -> Optional[Tuple[str, float]]:
        """One router's egress decision towards one next-hop AS:
        ``(next hop, metric)``, or ``None`` if no egress is usable.
        A pure function of (router, egress links, IGP routes) — the
        invariant that makes grouped bulk-install answer-preserving.

        *memo* (grouped paths only) reuses the (router, border) IGP
        lookup across next-hop-AS groups within one install pass —
        safe because the pass only mutates BGP FIB entries, and BGP
        prefixes never cover border loopbacks, so the lookups it
        memoizes cannot change mid-pass.
        """
        if router.node_id in remote_by_border:
            return remote_by_border[router.node_id], 0.0
        # Hot potato: forward towards the IGP-nearest egress border.
        best: Optional[Tuple[float, str, str]] = None
        for border_id in sorted(remote_by_border):
            border = self.network.node(border_id)
            if memo is None:
                self.install_fib_lookups += 1
                igp_entry = router.fib4.lookup(border.ipv4)
            else:
                memo_key = (router.node_id, border_id)
                if memo_key in memo:
                    igp_entry = memo[memo_key]
                else:
                    self.install_fib_lookups += 1
                    igp_entry = router.fib4.lookup(border.ipv4)
                    memo[memo_key] = igp_entry
            if igp_entry is None or igp_entry.next_hop is None:
                continue
            key = (igp_entry.metric, border_id, igp_entry.next_hop)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        metric, _border_id, next_hop = best
        return next_hop, metric

    # -- inspection --------------------------------------------------------------------
    def total_rib_size(self) -> int:
        return sum(s.rib_size() for s in self.speakers.values())

    def route_counts(self) -> Dict[int, int]:
        """Loc-RIB size per AS (experiment E5's routing-state metric)."""
        return {asn: s.rib_size() for asn, s in sorted(self.speakers.items())}

    def as_path_to(self, asn: int, prefix: Prefix) -> Optional[Tuple[int, ...]]:
        route = self.speaker(asn).best_route(prefix)
        return route.as_path if route is not None else None
