"""BGP route objects.

A :class:`BgpRoute` is an AS-level path-vector route.  Besides the
standard attributes, routes carry a :class:`RouteScope` that implements
the paper's two inter-domain anycast deployment options:

* ``ANYCAST_GLOBAL`` (Section 3.2, option 1): a non-aggregatable
  anycast prefix.  Propagating it is a *policy* decision — an ISP whose
  ``propagates_anycast`` flag is off will neither accept nor re-export
  it.
* ``ANYCAST_BILATERAL`` (Section 3.2, option 2): an anycast route a
  non-default adopter advertises to selected neighbors under an
  explicit peering agreement "to widen their reach".  It is only
  exported over agreement edges and, by default, is not re-exported by
  the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Tuple

from repro.net.address import Prefix

#: Local-preference values implementing Gao-Rexford economics: routes
#: through customers are the most preferred (they pay us), then peers,
#: then providers (we pay them).
LOCAL_PREF_ORIGINATED = 200
LOCAL_PREF_CUSTOMER = 100
LOCAL_PREF_PEER = 90
LOCAL_PREF_PROVIDER = 80


class RouteScope(Enum):
    NORMAL = "normal"
    ANYCAST_GLOBAL = "anycast-global"
    ANYCAST_BILATERAL = "anycast-bilateral"

    @property
    def is_anycast(self) -> bool:
        return self is not RouteScope.NORMAL


@dataclass(frozen=True)
class BgpRoute:
    """One path-vector route as held by a speaker.

    ``as_path[0]`` is the neighbor the route was learned from (or the
    local ASN for originated routes); ``as_path[-1]`` is the origin.
    """

    prefix: Prefix
    as_path: Tuple[int, ...]
    local_pref: int = LOCAL_PREF_ORIGINATED
    scope: RouteScope = RouteScope.NORMAL
    #: ASN of the neighbor this route was learned from; None if originated.
    learned_from: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("AS path cannot be empty")

    @property
    def origin_asn(self) -> int:
        return self.as_path[-1]

    @property
    def path_length(self) -> int:
        return len(self.as_path)

    @property
    def originated(self) -> bool:
        return self.learned_from is None

    def contains_asn(self, asn: int) -> bool:
        return asn in self.as_path

    def prepended(self, asn: int) -> "BgpRoute":
        """The route as exported by *asn* (ASN prepended to the path)."""
        return replace(self, as_path=(asn,) + self.as_path)

    def selection_key(self) -> Tuple[int, int, int, int]:
        """Sort key: smaller is better (standard BGP decision process).

        Order: higher local-pref, shorter AS path, lower origin ASN,
        lower learned-from ASN (deterministic final tie-break, standing
        in for lowest-router-id).
        """
        return (-self.local_pref, self.path_length, self.origin_asn,
                self.learned_from if self.learned_from is not None else -1)

    def __str__(self) -> str:
        path = " ".join(str(asn) for asn in self.as_path)
        return (f"{self.prefix} via [{path}] pref={self.local_pref} "
                f"scope={self.scope.value}")


@dataclass(frozen=True)
class BgpUpdate:
    """One UPDATE message: an announcement or (route=None) a withdrawal."""

    sender_asn: int
    prefix: Prefix
    route: Optional[BgpRoute] = None

    @property
    def is_withdrawal(self) -> bool:
        return self.route is None
