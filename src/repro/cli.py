"""Command-line interface: ``python -m repro <command>``.

Runs the library's headline experiments from the shell:

* ``topology`` — generate (or load) an internetwork and describe it;
* ``trace`` — deploy IPvN in selected ISPs and trace one packet;
* ``reachability`` — measure universal access over sampled host pairs;
* ``adoption`` — run the Section 2.1 adoption-dynamics comparison;
* ``faults`` — crash the nearest anycast member under a live IPvN
  deployment and report the failover as JSON;
* ``obs`` — run an experiment under the observability layer: structured
  JSONL trace plus a metrics summary (scheduler event counts, SPF
  recomputations, per-outcome forwarding counters, ...);
* ``report`` — analyze a JSONL trace offline (:mod:`repro.analyze`):
  per-epoch critical paths, forwarding distributions, blackhole/loop
  detection, and the convergence timeline, as human tables or a
  schema-validated ``repro.report/v1`` document; ``--catchment``
  instead builds the anycast catchment observatory document
  (``repro.catchment/v1``) from the trace's ``probe.rtt`` events;
* ``probes`` — run a deterministic RTT probe plan
  (:mod:`repro.measure`) against an anycast deployment through a
  crash/recover fault plan and fold the probe series into a
  ``repro.catchment/v1`` document: per-epoch catchment maps,
  fault-attributed shifts vs. flaps, RTT inflation against the delay
  oracle, and probe-observed convergence time;
* ``lint`` — run the determinism & invariant linter
  (:mod:`repro.analysis`) over the source tree: per-file seeded-RNG,
  wall-clock, iteration-order, obs-guard, and public-API rules
  (D1–D5), plus — with ``--project`` — the whole-program
  cache-coherence, fleet-safety, and schema-drift families
  (C1/C2, P1–P3, S1/S2) with baseline and SARIF support;
* ``bench`` — run the seeded perf-trajectory workload matrix
  (:mod:`repro.perf.bench`) cached and uncached, write the
  ``repro.bench/v2`` JSON, and fail unless cached Dijkstra work shrank
  with bit-identical experiment metrics; ``--scale-sweep`` instead
  sweeps the topology-size axis (:mod:`repro.perf.scale_bench`),
  fast path on vs. off on power-law internets;
* ``fleet`` — fan a declarative ``repro.matrix/v1`` workload matrix
  (:mod:`repro.fleet`) across worker processes and merge the per-cell
  artifacts into one deterministic ``repro.fleet/v1`` report: the same
  matrix yields byte-identical reports at any ``--workers`` count.

Every command is seeded and deterministic; ``--save``/``--load`` move
topologies through the JSON format in :mod:`repro.net.serialize`; all
JSON output goes through the shared ``to_dict()``/``json_safe``
serialization contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.evolution import EvolvableInternet
from repro.core.incentives import compare_access_models
from repro.net.serialize import load_network, save_network
from repro.topogen import InternetSpec


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--tier1", type=int, default=3, help="tier-1 count")
    parser.add_argument("--tier2", type=int, default=6, help="tier-2 count")
    parser.add_argument("--stubs", type=int, default=12, help="stub count")
    parser.add_argument("--hosts", type=int, default=2, help="hosts per stub")
    parser.add_argument("--load", metavar="FILE",
                        help="load a topology JSON instead of generating")


def _build_internet(args: argparse.Namespace) -> EvolvableInternet:
    if args.load:
        return EvolvableInternet(load_network(args.load), seed=args.seed)
    spec = InternetSpec(n_tier1=args.tier1, n_tier2=args.tier2,
                        n_stub=args.stubs, hosts_per_stub=args.hosts,
                        seed=args.seed)
    return EvolvableInternet.generate(spec, seed=args.seed)


def _deploy(internet: EvolvableInternet, args: argparse.Namespace):
    deployment = internet.new_deployment(version=args.version,
                                         scheme=args.scheme)
    adopters = args.deploy
    if not adopters:
        adopters = [getattr(deployment.scheme, "default_asn", None)
                    or internet.tier1_asns()[0]]
    for asn in adopters:
        deployment.deploy(asn)
    deployment.rebuild()
    return deployment


def _add_deploy_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--version", type=int, default=8,
                        help="IPvN version number (default 8)")
    parser.add_argument("--scheme", choices=("default", "global"),
                        default="default", help="anycast scheme")
    parser.add_argument("--deploy", type=int, nargs="*", metavar="ASN",
                        help="adopting ASNs (default: the default ISP)")


def cmd_topology(args: argparse.Namespace) -> int:
    internet = _build_internet(args)
    stats = internet.network.stats()
    print(f"domains: {stats['domains']}  routers: {stats['routers']}  "
          f"hosts: {stats['hosts']}  links: {stats['links']} "
          f"({stats['inter_domain_links']} inter-domain)")
    for asn in sorted(internet.network.domains):
        domain = internet.network.domains[asn]
        rels = ", ".join(f"AS{n}:{r.value}" for n, r in
                         sorted(domain.relationships.items()))
        print(f"  AS{asn} tier{domain.tier} {domain.prefix} "
              f"routers={len(domain.routers)} hosts={len(domain.hosts)} "
              f"[{rels}]")
    if args.save:
        save_network(internet.network, args.save)
        print(f"saved topology to {args.save}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    internet = _build_internet(args)
    deployment = _deploy(internet, args)
    hosts = internet.hosts()
    src = args.src or hosts[0]
    dst = args.dst or hosts[-1]
    trace = deployment.send(src, dst)
    print(f"IPv{args.version} {src} -> {dst} via anycast "
          f"{deployment.scheme.address}:")
    print(trace)
    return 0 if trace.delivered else 1


def cmd_reachability(args: argparse.Namespace) -> int:
    internet = _build_internet(args)
    deployment = _deploy(internet, args)
    report = internet.reachability(args.version, sample=args.sample,
                                   seed=args.seed)
    if args.json:
        import json

        print(json.dumps({"adopters": sorted(deployment.adopting_asns()),
                          "report": report.to_dict()},
                         indent=2, sort_keys=True))
        return 0 if report.delivery_ratio == 1.0 else 1
    print(f"adopters: {sorted(deployment.adopting_asns())}")
    print(f"host pairs attempted: {report.attempted}")
    print(f"delivered: {report.delivery_ratio:.1%}")
    if report.mean_stretch is not None:
        print(f"mean stretch: {report.mean_stretch:.2f}  "
              f"median: {report.median_stretch:.2f}  "
              f"max: {report.max_stretch:.2f}")
    for outcome, count in sorted(report.failures.items()):
        print(f"failures[{outcome}]: {count}")
    return 0 if report.delivery_ratio == 1.0 else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import available, describe, run

    if args.list or not args.ids:
        for experiment_id in available():
            print(f"{experiment_id:>5}  {describe(experiment_id)}")
        return 0
    for experiment_id in args.ids:
        result = run(experiment_id)
        print(result.table())
        print()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Anycast failover under fault injection, reported as JSON.

    Deploys IPvN, resolves the member nearest to a probe host, crashes
    it with a :class:`~repro.faults.FaultPlan`, and reports transient
    loss, reconvergence time, and where delivery shifted.
    """
    import json

    from repro.faults import FaultInjector, FaultPlan

    internet = _build_internet(args)
    deployment = _deploy(internet, args)
    scheme = deployment.scheme
    hosts = internet.hosts()
    probe = args.probe or hosts[0]
    victim = scheme.resolve(probe)
    if victim is None:
        print(json.dumps({"error": f"no anycast member reachable from {probe}"}))
        return 1
    plan = (FaultPlan()
            .crash_node(victim, at=args.crash_at)
            .recover_node(victim, at=args.recover_at))
    injector = FaultInjector(internet.orchestrator, plan,
                             deployments=[deployment])
    reports = injector.play(
        workload=lambda: internet.reachability(args.version,
                                               sample=args.sample))
    failover = scheme.resolve(probe)
    result = {
        "probe": probe,
        "victim": victim,
        "failover_member": reports and _failover_member(scheme, deployment,
                                                        probe, victim),
        "member_after_recovery": failover,
        "live_members": sorted(deployment.live_members()),
        "epochs": [report.to_dict() for report in reports],
        "faults_applied": [str(record) for record in injector.records],
    }
    print(json.dumps(result, indent=2))
    healed = failover == victim
    recovered_ok = all(report.recovered_delivery_ratio == 1.0
                       for report in reports)
    return 0 if healed and recovered_ok else 1


def _failover_member(scheme, deployment, probe: str, victim: str):
    """Who served *probe* while *victim* was down (re-resolved live)."""
    # The play() loop already recovered the victim; replaying the crash
    # here would double-fault.  Instead report the oracle next-nearest
    # at recovery time minus the victim, which the failover tests pin
    # to the actual resolution.
    best = None
    for member in sorted(deployment.live_members()):
        if member == victim:
            continue
        result = scheme.network.shortest_path(probe, member)
        if result is None:
            continue
        cost, _ = result
        if best is None or cost < best[1]:
            best = (member, cost)
    return best[0] if best else None


#: Counters the self-check requires after a traced anycast_failover run.
_SELF_CHECK_COUNTERS = ("scheduler.events_scheduled", "scheduler.events_fired",
                        "igp.ls.spf_runs", "forwarding.outcome.delivered",
                        "faults.applied", "vnbone.rebuilds")


def _parse_params(pairs) -> dict:
    """``k=v`` pairs with JSON-typed values (``k=3`` is an int)."""
    import json

    params = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--param needs k=v, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_obs(args: argparse.Namespace) -> int:
    """Run one experiment under the observability layer.

    Prints a JSON summary (experiment result + metrics snapshot) and,
    with ``--trace``, writes and validates the structured JSONL trace.
    """
    import json

    from repro.experiments import available, describe, run
    from repro.obs import Observability, Tracer, validate_trace

    if args.list:
        for experiment_id in available():
            print(f"{experiment_id:>16}  {describe(experiment_id)}")
        return 0
    if args.self_check:
        return _obs_self_check(args)
    if args.span_check:
        return _obs_span_check(args)
    if not args.id:
        print("obs: give an experiment id, --list, --self-check, or "
              "--span-check")
        return 2
    params = _parse_params(args.param)
    tracer = None
    if args.trace:
        tracer = Tracer(args.trace, context={
            "experiment": args.id, "seed": args.seed, "params": params})
    obs = Observability(tracer=tracer)
    result = run(args.id, seed=args.seed, params=params or None, obs=obs)
    obs.close()
    errors = []
    if args.trace:
        errors = validate_trace(args.trace)
    summary = result.to_dict()
    summary["trace_valid"] = not errors if args.trace else None
    if errors:
        summary["trace_errors"] = errors[:10]
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if errors else 0


def _obs_self_check(args: argparse.Namespace) -> int:
    """Smoke-test the observability pipeline end to end (CI hook)."""
    import json
    import os
    import tempfile

    from repro.experiments import run
    from repro.obs import Observability, Tracer, validate_spans, validate_trace

    handle, path = tempfile.mkstemp(prefix="repro-obs-", suffix=".jsonl")
    os.close(handle)
    try:
        obs = Observability(tracer=Tracer(path, context={
            "experiment": "anycast_failover", "seed": args.seed,
            "self_check": True}))
        result = run("anycast_failover", seed=args.seed, obs=obs)
        obs.close()
        errors = list(validate_trace(path))
        errors.extend(validate_spans(path))
        counters = result.metrics.get("counters", {})
        for name in _SELF_CHECK_COUNTERS:
            if not counters.get(name):
                errors.append(f"expected counter {name!r} to be nonzero")
        status = {"ok": not errors, "trace_events": sum(
            1 for _ in open(path, encoding="utf-8")),
            "counters_checked": list(_SELF_CHECK_COUNTERS)}
        if errors:
            status["errors"] = errors[:10]
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if not errors else 1
    finally:
        os.unlink(path)


#: Span kinds the span-check requires in a traced anycast_failover run.
_SPAN_CHECK_NAMES = ("experiment", "fault.epoch", "fault.apply",
                     "fault.workload", "fault.reconverge", "igp.holddown",
                     "vnbone.rebuild", "orchestrator.reconverge", "forward")


def _obs_span_check(args: argparse.Namespace) -> int:
    """Validate the causal-span layer over a seeded run (CI hook).

    Runs the acceptance scenario under a traced handle, then checks the
    span causality invariants (every ``span.end`` has a matching
    ``span.start``, parents precede children, no orphan ``parent_id``)
    and that every expected span kind actually appeared.
    """
    import json
    import os
    import tempfile

    from repro.experiments import run
    from repro.obs import (Observability, SPAN_START, Tracer, validate_spans,
                           validate_trace)
    from repro.analyze import iter_trace_events

    handle, path = tempfile.mkstemp(prefix="repro-spans-", suffix=".jsonl")
    os.close(handle)
    try:
        obs = Observability(tracer=Tracer(path, context={
            "experiment": "anycast_failover", "seed": args.seed,
            "span_check": True}))
        run("anycast_failover", seed=args.seed, obs=obs)
        obs.close()
        errors = list(validate_trace(path))
        errors.extend(validate_spans(path))
        counts: dict = {}
        for event in iter_trace_events(path):
            if event.get("kind") == SPAN_START:
                name = event.get("name")
                if isinstance(name, str):
                    counts[name] = counts.get(name, 0) + 1
        for name in _SPAN_CHECK_NAMES:
            if not counts.get(name):
                errors.append(f"expected span kind {name!r} in the trace")
        status = {"ok": not errors,
                  "spans": sum(counts.values()),
                  "span_kinds": dict(sorted(counts.items()))}
        if errors:
            status["errors"] = errors[:10]
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if not errors else 1
    finally:
        os.unlink(path)


def cmd_report(args: argparse.Namespace) -> int:
    """Analyze a JSONL trace offline (``repro.report/v1``).

    ``--check`` additionally validates the trace schema, the span
    causality invariants, and the built report document, exiting 1 on
    any problem — the CI report-smoke gate.  ``--catchment`` switches
    the analysis to the anycast catchment observatory: the trace's
    ``probe.rtt`` events and ``fault.apply`` boundaries become a
    ``repro.catchment/v1`` document instead.
    """
    import json

    from repro.analyze import (build_report, catchment_from_trace,
                               render_catchment, render_report,
                               validate_catchment_dict, validate_report_dict)
    from repro.obs import validate_spans, validate_trace

    errors: List[str] = []
    if args.check:
        errors.extend(validate_trace(args.trace))
        errors.extend(validate_spans(args.trace))
    if args.catchment:
        doc = catchment_from_trace(args.trace)
        if args.check:
            errors.extend(validate_catchment_dict(doc))
        rendered = render_catchment(doc)
    else:
        doc = build_report(args.trace)
        if args.check:
            errors.extend(validate_report_dict(doc))
        rendered = render_report(doc)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(rendered)
    if errors:
        for problem in errors[:20]:
            print(f"report: {problem}", file=sys.stderr)
        if len(errors) > 20:
            print(f"report: ... {len(errors) - 20} more problems",
                  file=sys.stderr)
        return 1
    return 0


def cmd_probes(args: argparse.Namespace) -> int:
    """Run a deterministic RTT probe plan over an anycast deployment.

    Deploys IPvN, arms a :class:`~repro.measure.ProbeEngine` across the
    first ``--vantages`` hosts, plays a crash/recover fault plan
    against the member serving the most vantages, and folds the probe
    series into a ``repro.catchment/v1`` document
    (``docs/measurement.md``).  ``--check`` validates the trace schema,
    the span invariants, the catchment document, and — when tracing —
    that the trace-derived document matches the in-memory probe series
    exactly; the CI probe-smoke job gates on it plus byte-identical
    ``--out`` files across same-seed runs.
    """
    import json

    from repro.analyze import (build_catchment, catchment_from_trace,
                               render_catchment, validate_catchment_dict)
    from repro.experiments.measurement_claims import _serving_victim
    from repro.faults import FaultInjector, FaultPlan
    from repro.measure import ProbeEngine, ProbePlan, ProbeTarget
    from repro.obs import (Observability, Tracer, observing, validate_spans,
                           validate_trace)

    # The context lands both in the trace header and in the catchment
    # document; it must stay path- and wall-clock-free so same-seed
    # catchment files compare byte-identical.
    context = {"command": "probes", "seed": args.seed,
               "version": args.version, "scheme": args.scheme,
               "vantages": args.vantages, "rounds": args.rounds,
               "interval": args.interval, "start": args.start,
               "crash_at": args.crash_at, "recover_at": args.recover_at}
    obs = None
    if args.trace:
        obs = Observability(tracer=Tracer(args.trace, context=context))
    with observing(obs):
        internet = _build_internet(args)
        deployment = _deploy(internet, args)
        hosts = internet.hosts()
        vantages = tuple(hosts[:max(1, args.vantages)])
        plan = ProbePlan(
            vantages=vantages,
            targets=(ProbeTarget(name="anycast",
                                 dst=deployment.scheme.address,
                                 kind="anycast"),),
            interval=args.interval, start=args.start, rounds=args.rounds)
        engine = ProbeEngine(internet.orchestrator.scheduler,
                             internet.orchestrator.engine, internet.network,
                             plan, replicas=deployment.live_members)
        victim = _serving_victim(internet, deployment, vantages,
                                 sorted(deployment.members())[0])
        fault_plan = (FaultPlan()
                      .crash_node(victim, at=args.crash_at)
                      .recover_node(victim, at=args.recover_at))
        injector = FaultInjector(internet.orchestrator, fault_plan,
                                 deployments=[deployment])
        engine.arm()
        injector.play()  # the probes are the workload
        engine.finish()
    if obs is not None:
        obs.close()

    errors: List[str] = []
    doc = build_catchment(
        [sample.to_dict() for sample in engine.samples],
        [{"t": record.time, "description": record.description}
         for record in injector.records],
        context=context)
    errors.extend(validate_catchment_dict(doc))
    if args.trace and args.check:
        errors.extend(validate_trace(args.trace))
        errors.extend(validate_spans(args.trace))
        from_trace = catchment_from_trace(args.trace)
        if (json.dumps(from_trace, sort_keys=True)
                != json.dumps(doc, sort_keys=True)):
            errors.append("trace-derived catchment diverged from the "
                          "in-memory probe series")
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.write("\n")
    if args.json:
        print(payload)
    else:
        print(f"victim: {victim}")
        print(render_catchment(doc))
    for problem in errors[:20]:
        print(f"probes: {problem}", file=sys.stderr)
    if len(errors) > 20:
        print(f"probes: ... {len(errors) - 20} more problems",
              file=sys.stderr)
    return 1 if errors else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism & invariant linter (the CI correctness gate).

    ``--project`` adds the whole-program pass: a project index (import
    graph, call graph, workload roots, emitter/validator pairs) feeds
    the C (cache coherence), P (fleet safety), and S (schema drift)
    rule families on top of D1–D5.  ``--baseline`` absorbs committed
    findings so only new ones gate; ``--update-baseline`` rewrites the
    file from the current run.

    Exit status 0 means every checked file parsed and no actionable
    error-severity finding remains; 1 means findings (or parse
    errors); 2 means the invocation itself was bad (unknown rule,
    missing path, unreadable baseline).
    """
    from repro.analysis import (AnalysisError, Baseline, lint_paths,
                                lint_project, render_human, render_json,
                                render_rule_list, render_sarif)

    if args.list_rules:
        print(render_rule_list())
        return 0
    try:
        baseline = None
        if args.baseline and not args.update_baseline:
            baseline = Baseline.from_file(args.baseline)
        common = dict(rule_ids=args.rule, jobs=args.jobs,
                      warn_unused_suppressions=args.warn_unused_suppressions)
        if args.project:
            report = lint_project(args.paths or ["src"], baseline=baseline,
                                  **common)
        else:
            report = lint_paths(args.paths or ["src"], **common)
    except AnalysisError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        if not args.baseline:
            print("lint: --update-baseline needs --baseline FILE",
                  file=sys.stderr)
            return 2
        Baseline.from_findings(report.findings).save(args.baseline)
        print(f"lint: wrote baseline with "
              f"{len(report.unsuppressed)} finding(s) to {args.baseline}",
              file=sys.stderr)
        return 0
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(report))
            handle.write("\n")
    if args.json:
        print(render_json(report))
    else:
        print(render_human(report, show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf workload matrix (or the ``--scale-sweep`` size axis)
    and write ``BENCH_*.json``.

    Matrix mode: exit status 0 requires (a) a schema-valid document,
    (b) bit-identical cached/uncached experiment metrics for every
    workload, and (c) fewer total Dijkstra runs cached than uncached.
    Sweep mode: (a) plus bit-identical fast-path-on/off delivery
    metrics for every cell, plus byte-identical grouped-vs-seed FIBs
    on every cell's control-plane leg, plus a sample-for-sample
    identical probe RTT series across both forwarding legs.  Wall seconds and speedups are
    recorded for trajectory plots but never gated on (no timing
    thresholds).

    ``--profile`` wraps the whole run in :mod:`cProfile` and prints
    the top functions by cumulative time; ``--profile-out FILE``
    additionally dumps the raw pstats data for ``snakeviz``/
    ``pstats`` digging.
    """
    import json

    from repro.perf.bench import (DEFAULT_BENCH_PATH, run_bench,
                                  validate_bench_dict, write_bench)

    def profiled(run):
        """Run *run* under cProfile when --profile is set."""
        if not args.profile and args.profile_out is None:
            return run()
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = run()
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            stats.print_stats(25)
            if args.profile_out is not None:
                stats.dump_stats(args.profile_out)
                print(f"pstats dump written to {args.profile_out}",
                      file=sys.stderr)
        return result

    if args.scale_sweep:
        from repro.perf.scale_bench import DEFAULT_SWEEP_PATH, run_sweep

        doc = profiled(lambda: run_sweep(seed=args.seed, quick=args.quick))
        path = write_bench(doc, args.out or DEFAULT_SWEEP_PATH)
        errors = validate_bench_dict(doc)
        totals: dict = doc["totals"]  # type: ignore[assignment]
        if not totals["identical_metrics"]:
            errors.append(
                "fast-path delivery metrics diverged from the slow path")
        if not totals.get("identical_fibs", True):
            errors.append(
                "grouped-install FIBs diverged from the seed install path")
        if not totals.get("identical_probe_series", True):
            errors.append(
                "fast-path probe RTT series diverged from the slow path")
        status = {"ok": not errors, "out": path,
                  "identical_metrics": totals["identical_metrics"],
                  "identical_fibs": totals.get("identical_fibs"),
                  "identical_probe_series":
                      totals.get("identical_probe_series"),
                  "speedups": {str(cell["routers_requested"]):
                               round(float(cell["speedup"]), 2)  # type: ignore[arg-type]
                               for cell in doc["cells"]},  # type: ignore[union-attr]
                  "lookup_reductions": {
                      str(cell["routers_requested"]):
                      round(float(cell["control_plane"]["lookup_reduction"]), 2)  # type: ignore[index]
                      for cell in doc["cells"]}}  # type: ignore[union-attr]
        if errors:
            status["errors"] = errors[:10]
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if not errors else 1

    doc = profiled(lambda: run_bench(seed=args.seed, quick=args.quick))
    path = write_bench(doc, args.out or DEFAULT_BENCH_PATH)
    errors = validate_bench_dict(doc)
    matrix_totals: dict = doc["totals"]  # type: ignore[assignment]
    runs: dict = matrix_totals["dijkstra_runs"]
    if not matrix_totals["identical_metrics"]:
        errors.append("cached metrics diverged from the uncached baseline")
    if not runs["cached"] < runs["uncached"]:
        errors.append(
            f"caching saved no Dijkstra runs ({runs['cached']} cached vs "
            f"{runs['uncached']} uncached)")
    status = {"ok": not errors, "out": path,
              "dijkstra_runs": runs,
              "identical_metrics": matrix_totals["identical_metrics"]}
    if errors:
        status["errors"] = errors[:10]
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if not errors else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """Fan a workload matrix across worker processes and merge it.

    Reads a ``repro.matrix/v1`` file, executes every cell (optionally
    cached under ``--cache-dir`` and traced under ``--traces``), writes
    the merged ``repro.fleet/v1`` report, and validates it.  Exit 0
    means every cell succeeded and the report validates; failed cells
    (isolated, never aborting the sweep) exit 1; a malformed matrix or
    invocation exits 2.
    """
    import json

    from repro.fleet import (FleetMatrix, run_fleet, validate_fleet_dict,
                             write_fleet)
    from repro.net.errors import FleetError

    def progress(record: dict) -> None:
        state = "ok" if record["ok"] else f"FAIL ({record['error']})"
        print(f"fleet: {record['name']} {record['workload_id']} "
              f"seed={record['seed']} params={record['params']} {state}",
              file=sys.stderr)

    try:
        matrix = FleetMatrix.from_file(args.matrix)
        doc = run_fleet(matrix, workers=args.workers,
                        traces_dir=args.traces, cache_dir=args.cache_dir,
                        progress=None if args.quiet else progress)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    errors = validate_fleet_dict(doc)
    write_fleet(doc, args.out)
    totals: dict = doc["totals"]  # type: ignore[assignment]
    status = {"ok": not errors and not totals["failed"], "out": args.out,
              "spec_hash": doc["spec_hash"], "totals": totals}
    if errors:
        status["errors"] = errors[:10]
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status["ok"] else 1


def cmd_adoption(args: argparse.Namespace) -> int:
    print(f"{'seed':>5} {'UA share':>9} {'walled share':>13}")
    for seed in range(args.seeds):
        result = compare_access_models(n_isps=args.isps, rounds=args.rounds,
                                       seed=seed)
        ua = result["universal_access"].final_share()
        wg = result["walled_garden"].final_share()
        print(f"{seed:>5} {ua:>9.0%} {wg:>13.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards an Evolvable Internet "
                    "Architecture' (SIGCOMM 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topology", help="generate/describe a topology")
    _add_topology_options(p_topo)
    p_topo.add_argument("--save", metavar="FILE", help="save topology JSON")
    p_topo.set_defaults(func=cmd_topology)

    p_trace = sub.add_parser("trace", help="trace one IPvN packet")
    _add_topology_options(p_trace)
    _add_deploy_options(p_trace)
    p_trace.add_argument("--src", help="source host id")
    p_trace.add_argument("--dst", help="destination host id")
    p_trace.set_defaults(func=cmd_trace)

    p_reach = sub.add_parser("reachability",
                             help="measure IPvN universal access")
    _add_topology_options(p_reach)
    _add_deploy_options(p_reach)
    p_reach.add_argument("--sample", type=int, default=100,
                         help="host pairs to sample")
    p_reach.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    p_reach.set_defaults(func=cmd_reachability)

    p_exp = sub.add_parser("experiment",
                           help="run reproduced experiments by id")
    p_exp.add_argument("ids", nargs="*", metavar="ID",
                       help="experiment ids (e.g. F1 E5 E12a); empty lists "
                            "the registry")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiments")
    p_exp.set_defaults(func=cmd_experiment)

    p_adopt = sub.add_parser("adoption",
                             help="run the adoption-dynamics comparison")
    p_adopt.add_argument("--seeds", type=int, default=5)
    p_adopt.add_argument("--isps", type=int, default=30)
    p_adopt.add_argument("--rounds", type=int, default=80)
    p_adopt.set_defaults(func=cmd_adoption)

    p_faults = sub.add_parser(
        "faults", help="crash the nearest anycast member; report failover")
    _add_topology_options(p_faults)
    _add_deploy_options(p_faults)
    p_faults.add_argument("--probe", help="probe host id (default: first host)")
    p_faults.add_argument("--crash-at", type=float, default=10.0,
                          help="crash time, relative to scenario start")
    p_faults.add_argument("--recover-at", type=float, default=100.0,
                          help="recovery time, relative to scenario start")
    p_faults.add_argument("--sample", type=int, default=20,
                          help="host pairs per reachability probe")
    p_faults.set_defaults(func=cmd_faults)

    p_obs = sub.add_parser(
        "obs", help="run an experiment under the observability layer")
    p_obs.add_argument("id", nargs="?", metavar="ID",
                       help="experiment id (e.g. anycast_failover, F1)")
    p_obs.add_argument("--trace", metavar="FILE",
                       help="write the structured JSONL trace here")
    p_obs.add_argument("--seed", type=int, default=None,
                       help="seed threaded to new-style runners")
    p_obs.add_argument("--param", action="append", metavar="K=V",
                       help="experiment parameter (repeatable; JSON values)")
    p_obs.add_argument("--list", action="store_true",
                       help="list available experiments")
    p_obs.add_argument("--self-check", action="store_true",
                       help="smoke-test the observability pipeline (CI)")
    p_obs.add_argument("--span-check", action="store_true",
                       help="validate causal-span invariants over a "
                            "seeded run (CI)")
    p_obs.set_defaults(func=cmd_obs)

    p_report = sub.add_parser(
        "report", help="analyze a JSONL trace offline (repro.report/v1)")
    p_report.add_argument("trace", metavar="TRACE",
                          help="path to a JSONL trace file")
    p_report.add_argument("--json", action="store_true",
                          help="emit the repro.report/v1 JSON document")
    p_report.add_argument("--check", action="store_true",
                          help="validate trace schema, span invariants, "
                               "and the report document (exit 1 on any)")
    p_report.add_argument("--catchment", action="store_true",
                          help="build the repro.catchment/v1 anycast "
                               "catchment document from the trace's "
                               "probe.rtt events instead")
    p_report.set_defaults(func=cmd_report)

    p_probes = sub.add_parser(
        "probes", help="run a deterministic RTT probe plan through a "
                       "fault plan (repro.catchment/v1)")
    _add_topology_options(p_probes)
    _add_deploy_options(p_probes)
    p_probes.add_argument("--vantages", type=int, default=4,
                          help="probing hosts (the first N hosts)")
    p_probes.add_argument("--rounds", type=int, default=24,
                          help="probe rounds")
    p_probes.add_argument("--interval", type=float, default=5.0,
                          help="sim time between rounds")
    p_probes.add_argument("--start", type=float, default=0.0,
                          help="sim-time offset of round 0")
    p_probes.add_argument("--crash-at", type=float, default=10.0,
                          help="victim crash time, relative to scenario "
                               "start")
    p_probes.add_argument("--recover-at", type=float, default=80.0,
                          help="victim recovery time, relative to "
                               "scenario start")
    p_probes.add_argument("--trace", metavar="FILE",
                          help="write the structured JSONL trace here")
    p_probes.add_argument("--out", metavar="FILE",
                          help="write the catchment JSON document here")
    p_probes.add_argument("--json", action="store_true",
                          help="print the catchment JSON instead of the "
                               "human rendering")
    p_probes.add_argument("--check", action="store_true",
                          help="validate trace, spans, the catchment "
                               "document, and trace/in-memory identity "
                               "(exit 1 on any problem)")
    p_probes.set_defaults(func=cmd_probes)

    p_lint = sub.add_parser(
        "lint", help="run the determinism & invariant linter "
                     "(D1-D5; --project adds C/P/S)")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--project", action="store_true",
                        help="build the whole-program index and run the "
                             "C (cache coherence), P (fleet safety), and "
                             "S (schema drift) rule families too")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the repro.analysis/v2 JSON report")
    p_lint.add_argument("--sarif", metavar="FILE",
                        help="also write a SARIF 2.1.0 report here")
    p_lint.add_argument("--rule", action="append", metavar="ID",
                        help="run only this rule (repeatable, e.g. D1 or C1)")
    p_lint.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse files across N processes (default 1)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="absorb findings recorded in this baseline "
                             "file; only new findings gate")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline FILE from this run's "
                             "findings instead of reporting")
    p_lint.add_argument("--warn-unused-suppressions", action="store_true",
                        help="warn (W1) on allow[...] pragmas that "
                             "suppressed nothing")
    p_lint.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list rule ids and descriptions")
    p_lint.set_defaults(func=cmd_lint)

    p_bench = sub.add_parser(
        "bench", help="run the perf workload matrix or topology-size "
                      "sweep (repro.bench/v2)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small topology / fewer samples (CI smoke)")
    p_bench.add_argument("--scale-sweep", action="store_true",
                         help="sweep the topology-size axis instead of the "
                              "workload matrix: fast-path on vs. off on "
                              "power-law internets (repro.topogen.scale)")
    p_bench.add_argument("--seed", type=int, default=42,
                         help="workload seed (the matrix is a pure "
                              "function of it)")
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help="where to write the JSON document (default: "
                              "BENCH_PR6.json, or BENCH_PR9.json "
                              "with --scale-sweep)")
    p_bench.add_argument("--profile", action="store_true",
                         help="run under cProfile and print the top "
                              "functions by cumulative time to stderr")
    p_bench.add_argument("--profile-out", metavar="FILE", default=None,
                         help="also dump raw pstats data to FILE "
                              "(implies --profile)")
    p_bench.set_defaults(func=cmd_bench)

    p_fleet = sub.add_parser(
        "fleet", help="fan a workload matrix across worker processes "
                      "(repro.fleet/v1)")
    p_fleet.add_argument("--matrix", required=True, metavar="FILE",
                         help="repro.matrix/v1 JSON file")
    p_fleet.add_argument("--workers", type=int, default=1,
                         help="worker processes (default 1; the merged "
                              "report is byte-identical at any count)")
    p_fleet.add_argument("--out", metavar="FILE", default="FLEET.json",
                         help="merged report path (default FLEET.json)")
    p_fleet.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="resume cache keyed by the matrix spec hash")
    p_fleet.add_argument("--traces", metavar="DIR", default=None,
                         help="write one JSONL trace per cell here")
    p_fleet.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress on stderr")
    p_fleet.set_defaults(func=cmd_fleet)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
