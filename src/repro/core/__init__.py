"""Core: orchestration, deployment scenarios, metrics, incentives, facade."""

from repro.core.closed_loop import CoupledEvolution, CoupledResult, CoupledRound
from repro.core.deployment import (AdoptionStep, DeploymentSchedule,
                                   ScenarioResult, ScenarioRunner)
from repro.core.evolution import EvolvableInternet
from repro.core.incentives import (AdoptionModel, AdoptionTrajectory, IspAgent,
                                   compare_access_models)
from repro.core.metrics import (ReachabilityReport, last_vn_domain,
                                measure_reachability, outcome_histogram,
                                path_stretch, routing_state_table, summarize,
                                trace_path_cost, traffic_share, vn_coverage,
                                vn_tail_length)
from repro.core.orchestrator import Orchestrator

__all__ = ["CoupledEvolution", "CoupledResult", "CoupledRound",
           "AdoptionStep", "DeploymentSchedule", "ScenarioResult",
           "ScenarioRunner", "EvolvableInternet", "AdoptionModel",
           "AdoptionTrajectory", "IspAgent", "compare_access_models",
           "ReachabilityReport", "last_vn_domain", "measure_reachability",
           "outcome_histogram", "path_stretch", "routing_state_table",
           "summarize", "trace_path_cost", "traffic_share", "vn_coverage",
           "vn_tail_length", "Orchestrator"]
