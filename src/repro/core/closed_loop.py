"""Closed-loop evolution: incentives drive deployment, mechanisms
deliver the experience the incentives assumed.

The adoption model (:mod:`repro.core.incentives`) reasons about
universal access abstractly; the network simulator realizes it
mechanically.  :class:`CoupledEvolution` wires them together:

* each ISP agent in the adoption model is bound to a domain of a real
  internetwork (largest market shares to the provider core);
* every round, agents that decided to deploy actually deploy —
  anycast membership, vN-Bone construction, routing;
* user experience is then *measured* on the data plane (delivery ratio
  and stretch over sampled host pairs), confirming that the premise the
  incentive argument rests on (universal access from the first adopter)
  holds mechanically at every round.

This is the experiment the paper could only argue for: the virtuous
cycle running end to end, with the mechanism layer underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.evolution import EvolvableInternet
from repro.core.incentives import AdoptionModel
from repro.core.metrics import measure_reachability
from repro.net.errors import DeploymentError


@dataclass
class CoupledRound:
    """Measured state after one adoption round."""

    round_index: int
    deployed_asns: List[int]
    deployed_share: float
    demand: float
    delivery_ratio: Optional[float]
    mean_stretch: Optional[float]


@dataclass
class CoupledResult:
    rounds: List[CoupledRound] = field(default_factory=list)

    def final(self) -> CoupledRound:
        if not self.rounds:
            raise DeploymentError("coupled run produced no rounds")
        return self.rounds[-1]

    def first_deployment_round(self) -> Optional[int]:
        for entry in self.rounds:
            if entry.deployed_asns:
                return entry.round_index
        return None

    def delivery_always_total_once_deployed(self) -> bool:
        """Every *measured* round with any deployment saw 100% delivery."""
        return all(entry.delivery_ratio == 1.0
                   for entry in self.rounds
                   if entry.deployed_asns and entry.delivery_ratio is not None)


class CoupledEvolution:
    """Runs an adoption model against a live internetwork."""

    def __init__(self, internet: EvolvableInternet, model: AdoptionModel,
                 version: int = 8, sample_pairs: int = 30,
                 measure_every: int = 1, seed: int = 0) -> None:
        if measure_every < 1:
            raise DeploymentError("measure_every must be >= 1")
        self.internet = internet
        self.model = model
        self.version = version
        self.sample_pairs = sample_pairs
        self.measure_every = measure_every
        self.seed = seed
        self._asn_of_agent = self._bind_agents()
        #: Created lazily: option 2 defines the default ISP as "the
        #: first ISP to initiate deployment of IPvN", which only the
        #: adoption dynamics can tell us.
        self.deployment = None
        self._deployed_agents: set = set()

    def _bind_agents(self) -> Dict[int, int]:
        """Map agents to domains: biggest shares to the provider core.

        Domains sort core-first (tier, then ASN); agents sort by
        descending market share.  Extra agents (beyond the domain
        count) wrap around — they model ISPs outside the simulated
        region and trigger no mechanical deployment twice.
        """
        domains = sorted(self.internet.network.domains,
                         key=lambda a: (self.internet.network.domains[a].tier, a))
        agents = sorted(range(len(self.model.isps)),
                        key=lambda i: -self.model.isps[i].market_share)
        return {agent: domains[index % len(domains)]
                for index, agent in enumerate(agents)}

    # -- the loop -----------------------------------------------------------------
    def run(self, rounds: int) -> CoupledResult:
        result = CoupledResult()
        pairs = self.internet.host_pairs(sample=self.sample_pairs,
                                         seed=self.seed)
        for round_index in range(1, rounds + 1):
            self.model.step()
            changed = self._apply_new_deployments()
            if changed:
                self.deployment.rebuild()
            delivery = stretch = None
            deployed_asns: List[int] = []
            if self.deployment is not None:
                deployed_asns = sorted(self.deployment.adopting_asns())
                if (round_index % self.measure_every == 0
                        and self.deployment.members()):
                    if self.deployment.needs_rebuild:
                        self.deployment.rebuild()
                    report = measure_reachability(
                        self.internet.network, self.deployment.send, pairs)
                    delivery = report.delivery_ratio
                    stretch = report.mean_stretch
            result.rounds.append(CoupledRound(
                round_index=round_index,
                deployed_asns=deployed_asns,
                deployed_share=self.model.deployed_share(),
                demand=self.model.demand,
                delivery_ratio=delivery,
                mean_stretch=stretch))
        return result

    def _apply_new_deployments(self) -> bool:
        changed = False
        for index, agent in enumerate(self.model.isps):
            if not agent.deployed or index in self._deployed_agents:
                continue
            self._deployed_agents.add(index)
            asn = self._asn_of_agent[index]
            if self.deployment is None:
                # The first mover becomes the default ISP (option 2).
                self.deployment = self.internet.new_deployment(
                    version=self.version, scheme="default", default_asn=asn)
            if self.internet.network.domains[asn].deploys(self.version):
                continue  # another agent bound to this domain deployed it
            self.deployment.deploy(asn)
            changed = True
        return changed
