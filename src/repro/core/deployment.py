"""Deployment scenario engine: who adopts IPvN, when, and how much.

The paper's story is a *process* — deployment spreads ISP by ISP
(Figure 1), possibly partially within each ISP (assumption A1).  A
:class:`DeploymentSchedule` is an ordered list of adoption steps; the
:class:`ScenarioRunner` applies them to a live
:class:`~repro.vnbone.deployment.VnDeployment`, rebuilding the control
planes after each step and collecting whatever per-step measurements an
experiment asks for.

Schedule generators cover the adoption orders the experiments sweep:
random order, core-first (tier-1 providers lead), edge-first (stubs
lead), and single-ISP flag-day subsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.errors import DeploymentError
from repro.net.network import Network
from repro.vnbone.deployment import VnDeployment, adoption_rng


def _apply_step(deployment: VnDeployment, step: "AdoptionStep") -> None:
    """Adopt per *step*, threading the canonical per-AS rng when partial."""
    if step.fraction >= 1.0:
        deployment.deploy(step.asn)
    else:
        deployment.deploy(step.asn, fraction=step.fraction,
                          rng=adoption_rng(step.asn))


@dataclass(frozen=True)
class AdoptionStep:
    """One scheduled adoption: AS *asn* upgrades *fraction* of its routers."""

    asn: int
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise DeploymentError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass
class DeploymentSchedule:
    """An ordered adoption plan."""

    steps: List[AdoptionStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def asns(self) -> List[int]:
        return [step.asn for step in self.steps]

    @classmethod
    def random_order(cls, network: Network, seed: int = 0,
                     fraction: float = 1.0,
                     limit: Optional[int] = None) -> "DeploymentSchedule":
        """Every domain adopts, in seeded-random order."""
        asns = sorted(network.domains)
        random.Random(seed).shuffle(asns)
        if limit is not None:
            asns = asns[:limit]
        return cls([AdoptionStep(asn=a, fraction=fraction) for a in asns])

    @classmethod
    def core_first(cls, network: Network, fraction: float = 1.0,
                   limit: Optional[int] = None) -> "DeploymentSchedule":
        """Adoption led by the provider core (ascending tier, then ASN)."""
        asns = sorted(network.domains,
                      key=lambda a: (network.domains[a].tier, a))
        if limit is not None:
            asns = asns[:limit]
        return cls([AdoptionStep(asn=a, fraction=fraction) for a in asns])

    @classmethod
    def edge_first(cls, network: Network, fraction: float = 1.0,
                   limit: Optional[int] = None) -> "DeploymentSchedule":
        """Adoption led by the edge (descending tier)."""
        asns = sorted(network.domains,
                      key=lambda a: (-network.domains[a].tier, a))
        if limit is not None:
            asns = asns[:limit]
        return cls([AdoptionStep(asn=a, fraction=fraction) for a in asns])

    @classmethod
    def explicit(cls, asns: Sequence[int],
                 fraction: float = 1.0) -> "DeploymentSchedule":
        return cls([AdoptionStep(asn=a, fraction=fraction) for a in asns])


#: Per-step measurement callback: (step index, deployment) -> row dict.
StepProbe = Callable[[int, VnDeployment], Dict[str, object]]


@dataclass
class ScenarioResult:
    """Per-step measurement rows produced by a scenario run."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def last(self) -> Dict[str, object]:
        if not self.rows:
            raise DeploymentError("scenario produced no rows")
        return self.rows[-1]


class ScenarioRunner:
    """Applies a schedule to a deployment, measuring after each step."""

    def __init__(self, deployment: VnDeployment) -> None:
        self.deployment = deployment

    def run(self, schedule: DeploymentSchedule, probe: StepProbe,
            measure_baseline: bool = True) -> ScenarioResult:
        """Adopt step by step; call *probe* after each rebuild.

        With ``measure_baseline`` the probe also runs once before any
        adoption (step index 0); adoption steps are indexed from 1.
        """
        result = ScenarioResult()
        if measure_baseline:
            self.deployment.rebuild()
            row = dict(probe(0, self.deployment))
            row.setdefault("step", 0)
            row.setdefault("adopted_asn", None)
            result.rows.append(row)
        for index, step in enumerate(schedule, start=1):
            _apply_step(self.deployment, step)
            self.deployment.rebuild()
            row = dict(probe(index, self.deployment))
            row.setdefault("step", index)
            row.setdefault("adopted_asn", step.asn)
            result.rows.append(row)
        return result

    def run_with_churn(self, schedule: DeploymentSchedule, probe: StepProbe,
                       churn_every: int, seed: int = 0) -> ScenarioResult:
        """Like :meth:`run`, but every *churn_every* steps a previously
        adopting AS rolls IPvN back (deployment churn for E7)."""
        if churn_every < 1:
            raise DeploymentError("churn_every must be >= 1")
        rng = random.Random(seed)
        result = ScenarioResult()
        adopted: List[int] = []
        for index, step in enumerate(schedule, start=1):
            _apply_step(self.deployment, step)
            adopted.append(step.asn)
            if index % churn_every == 0 and len(adopted) > 1:
                victim = adopted.pop(rng.randrange(len(adopted) - 1))
                self.deployment.undeploy(victim)
            self.deployment.rebuild()
            row = dict(probe(index, self.deployment))
            row.setdefault("step", index)
            row.setdefault("adopted_asn", step.asn)
            result.rows.append(row)
        return result
