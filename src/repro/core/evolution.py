"""The top-level public API: an evolvable internetwork.

:class:`EvolvableInternet` is the one object most users need.  It wraps
a topology (generated or hand-built), converges the IPv(N-1) control
planes, and manages IPvN deployments — each a
:class:`~repro.vnbone.deployment.VnDeployment` bound to an anycast
redirection scheme.

Typical use::

    from repro.core.evolution import EvolvableInternet

    internet = EvolvableInternet.generate(seed=7)
    ipv8 = internet.new_deployment(version=8, scheme="default",
                                   default_asn=internet.tier1_asns()[0])
    ipv8.deploy(internet.tier1_asns()[0])
    ipv8.rebuild()
    trace = ipv8.send(src_host, dst_host)   # works from *any* host

Universal access in one line: ``internet.reachability(8)`` measures the
fraction of host pairs that can exchange IPvN packets.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.errors import DeploymentError, RoutingError
from repro.net.network import Network
from repro.core.metrics import ReachabilityReport, measure_reachability
from repro.core.orchestrator import Orchestrator
from repro.anycast.default_routes import DefaultRootedAnycast
from repro.anycast.gia import GiaAnycast
from repro.anycast.global_routes import AnycastAddressPool, GlobalAnycast
from repro.anycast.service import AnycastScheme
from repro.vnbone.deployment import VnDeployment
from repro.vnbone.egress import EgressPolicy
from repro.topogen.hierarchy import (GeneratedInternet, InternetSpec,
                                     generate_internet)

SCHEME_KINDS = ("default", "global", "gia")


class EvolvableInternet:
    """An internetwork that can grow new IP generations."""

    def __init__(self, network: Network, seed: int = 0,
                 igp_kind: str = "linkstate",
                 igp_overrides: Optional[Dict[int, str]] = None,
                 generated: Optional[GeneratedInternet] = None) -> None:
        self.network = network
        self.orchestrator = Orchestrator(network, seed=seed, igp_kind=igp_kind,
                                         igp_overrides=igp_overrides)
        self.generated = generated
        self.deployments: Dict[int, VnDeployment] = {}
        self._anycast_pool = AnycastAddressPool()
        self.orchestrator.converge()

    # -- construction ----------------------------------------------------------
    @classmethod
    def generate(cls, spec: Optional[InternetSpec] = None, seed: int = 0,
                 igp_kind: str = "linkstate",
                 igp_overrides: Optional[Dict[int, str]] = None
                 ) -> "EvolvableInternet":
        """Generate a tiered internetwork and converge it."""
        spec = spec if spec is not None else InternetSpec(seed=seed)
        generated = generate_internet(spec)
        return cls(generated.network, seed=seed, igp_kind=igp_kind,
                   igp_overrides=igp_overrides, generated=generated)

    def tier1_asns(self) -> List[int]:
        return sorted(asn for asn, d in self.network.domains.items() if d.tier == 1)

    def stub_asns(self) -> List[int]:
        tiers = {d.tier for d in self.network.domains.values()}
        edge = max(tiers)
        return sorted(asn for asn, d in self.network.domains.items()
                      if d.tier == edge)

    def hosts(self) -> List[str]:
        return sorted(n.node_id for n in self.network.nodes.values() if n.is_host)

    # -- deployments -------------------------------------------------------------------
    def new_deployment(self, version: int = 8, scheme: str = "default",
                       default_asn: Optional[int] = None,
                       home_asn: Optional[int] = None,
                       k_neighbors: int = 2,
                       egress_policy: EgressPolicy = EgressPolicy.BGP_INFORMED,
                       proxy_threshold: int = 1,
                       fallback_exit: bool = True) -> VnDeployment:
        """Create the machinery for a new IP generation.

        ``scheme`` selects the inter-domain anycast option: ``"default"``
        (option 2, needs ``default_asn``), ``"global"`` (option 1), or
        ``"gia"`` (needs ``home_asn``).
        """
        if version in self.deployments:
            raise DeploymentError(f"IPv{version} deployment already exists")
        scheme_obj = self._make_scheme(scheme, version, default_asn, home_asn)
        deployment = VnDeployment(self.orchestrator, scheme_obj, version=version,
                                  k_neighbors=k_neighbors,
                                  egress_policy=egress_policy,
                                  proxy_threshold=proxy_threshold,
                                  fallback_exit=fallback_exit)
        self.deployments[version] = deployment
        return deployment

    def _make_scheme(self, kind: str, version: int, default_asn: Optional[int],
                     home_asn: Optional[int]) -> AnycastScheme:
        name = f"ipv{version}"
        if kind == "default":
            if default_asn is None:
                default_asn = self.tier1_asns()[0] if self.tier1_asns() else \
                    sorted(self.network.domains)[0]
            return DefaultRootedAnycast(self.orchestrator, name,
                                        default_asn=default_asn)
        if kind == "global":
            return GlobalAnycast(self.orchestrator, name, pool=self._anycast_pool)
        if kind == "gia":
            if home_asn is None:
                raise DeploymentError("GIA scheme needs home_asn")
            return GiaAnycast(self.orchestrator, name, home_asn=home_asn)
        raise DeploymentError(f"unknown scheme {kind!r}; choose from {SCHEME_KINDS}")

    def deployment(self, version: int) -> VnDeployment:
        try:
            return self.deployments[version]
        except KeyError:
            raise DeploymentError(f"no IPv{version} deployment") from None

    # -- measurement ------------------------------------------------------------------------
    def host_pairs(self, sample: Optional[int] = None,
                   seed: int = 0) -> List[Tuple[str, str]]:
        """All ordered host pairs, optionally a seeded random sample."""
        hosts = self.hosts()
        pairs = [(a, b) for a, b in itertools.permutations(hosts, 2)]
        if sample is not None and sample < len(pairs):
            pairs = random.Random(seed).sample(pairs, sample)
        return pairs

    def reachability(self, version: int, sample: Optional[int] = None,
                     seed: int = 0) -> ReachabilityReport:
        """Universal-access measurement: IPvN delivery over host pairs."""
        deployment = self.deployment(version)
        if deployment.needs_rebuild:
            deployment.rebuild()
        pairs = self.host_pairs(sample=sample, seed=seed)
        return measure_reachability(self.network, deployment.send, pairs)

    def ipv4_reachability(self, sample: Optional[int] = None,
                          seed: int = 0) -> ReachabilityReport:
        """Plain IPv(N-1) reachability (substrate sanity check)."""
        from repro.net.packet import ipv4_packet

        def send(src: str, dst: str):
            packet = ipv4_packet(self.network.node(src).ipv4,
                                 self.network.node(dst).ipv4)
            return self.orchestrator.forward(packet, src)

        pairs = self.host_pairs(sample=sample, seed=seed)
        return measure_reachability(self.network, send, pairs)

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = dict(self.network.stats())
        info["deployments"] = {
            version: sorted(dep.adopting_asns())
            for version, dep in sorted(self.deployments.items())}
        return info
