"""Adoption dynamics: the universal-access virtuous cycle (Section 2.1).

The paper's incentive argument is qualitative; this module gives it a
minimal quantitative form so experiment E8 can show the *shape*:

* With **universal access**, any deployment at all makes the whole
  Internet's user base addressable by IPvN applications, so application
  demand grows as soon as one ISP deploys; growing demand raises the
  revenue an ISP captures by attracting IPvN traffic (assumption A4),
  so more ISPs deploy — "a virtuous cycle between application demand
  and service demand".

* Without universal access (the IP Multicast story), an application
  can only serve customers of deployed ISPs, so demand grows in
  proportion to deployed market share; with deployment near zero,
  demand stays near zero and no ISP ever clears its deployment cost —
  the chicken-and-egg deadlock.

This is a *model*, documented as a substitution in DESIGN.md: the paper
ran no such experiment, but its Section 2.1 narrative is exactly the
two trajectories this model produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IspAgent:
    """One ISP in the adoption game."""

    asn: int
    market_share: float
    deploy_cost: float
    deployed: bool = False
    revenue: float = 0.0


@dataclass
class AdoptionTrajectory:
    """Per-round aggregate state of one simulation run."""

    demand: List[float] = field(default_factory=list)
    deployed_share: List[float] = field(default_factory=list)
    deployed_count: List[int] = field(default_factory=list)

    def final_demand(self) -> float:
        return self.demand[-1] if self.demand else 0.0

    def final_share(self) -> float:
        return self.deployed_share[-1] if self.deployed_share else 0.0

    def rounds_to_share(self, target: float) -> Optional[int]:
        """First round at which deployed market share reaches *target*."""
        for round_index, share in enumerate(self.deployed_share):
            if share >= target:
                return round_index
        return None


class AdoptionModel:
    """Discrete-round adoption dynamics with or without universal access.

    Per round:

    1. *Application demand* ``A`` relaxes towards application
       viability.  Under universal access, any deployment at all makes
       every Internet user addressable, so viability is 1 as soon as
       one ISP deploys.  Without it, an application can only serve the
       deployed ISPs' customers, and developers are "reluctant to
       develop applications that could only service a fraction of
       Internet users": viability stays zero until the deployed market
       share clears ``viability_threshold`` and ramps up only beyond
       it — the multicast chicken-and-egg.
    2. Each undeployed ISP estimates per-round *revenue* from
       deploying: under universal access an offering ISP attracts IPvN
       traffic from its own customers plus a split of everyone not yet
       served (revenue flows towards offering ISPs, A4); without UA,
       only its own customers can ever use the service.  The ISP
       deploys when projected revenue over ``horizon`` clears its cost.
    3. Late-adopter pressure: once most of the market offers IPvN and
       demand is real, the remaining ISPs deploy defensively ("at a
       competitive disadvantage without it").
    4. A small seeding probability lets an experimental deployment
       happen regardless (testbeds, niche markets), so the no-UA case
       is not trivially frozen at zero.
    """

    def __init__(self, n_isps: int = 30, universal_access: bool = True,
                 demand_rate: float = 0.25, revenue_coeff: float = 3.0,
                 cost_mean: float = 1.0, horizon: int = 10,
                 viability_threshold: float = 0.5,
                 defense_threshold: float = 0.6,
                 seeding_prob: float = 0.002, seed: int = 0) -> None:
        if n_isps < 1:
            raise ValueError("need at least one ISP")
        self.universal_access = universal_access
        self.demand_rate = demand_rate
        self.revenue_coeff = revenue_coeff
        self.horizon = horizon
        self.viability_threshold = viability_threshold
        self.defense_threshold = defense_threshold
        self.seeding_prob = seeding_prob
        self.rng = random.Random(seed)
        shares = [self.rng.uniform(0.5, 1.5) for _ in range(n_isps)]
        total = sum(shares)
        self.isps: List[IspAgent] = [
            IspAgent(asn=i + 1, market_share=share / total,
                     deploy_cost=max(0.2, self.rng.gauss(cost_mean, cost_mean / 4)))
            for i, share in enumerate(shares)]
        self.demand = 0.0

    # -- state ------------------------------------------------------------------
    def deployed_share(self) -> float:
        return sum(isp.market_share for isp in self.isps if isp.deployed)

    def deployed_count(self) -> int:
        return sum(1 for isp in self.isps if isp.deployed)

    def addressable_base(self) -> float:
        """User base an IPvN application can serve."""
        share = self.deployed_share()
        if self.universal_access:
            return 1.0 if share > 0.0 else 0.0
        return share

    def application_viability(self) -> float:
        """How attractive building IPvN applications currently is.

        Universal access makes the whole user base addressable the
        moment anyone deploys; without it, developers hold back until
        the addressable fraction clears the viability threshold.
        """
        base = self.addressable_base()
        if self.universal_access:
            return base  # 0 or 1
        if base <= self.viability_threshold:
            return 0.0
        return (base - self.viability_threshold) / (1.0 - self.viability_threshold)

    # -- dynamics -----------------------------------------------------------------
    def step(self) -> None:
        viability = self.application_viability()
        self.demand += self.demand_rate * (viability - self.demand)
        self.demand = min(max(self.demand, 0.0), 1.0)
        share = self.deployed_share()
        offerers = self.deployed_count() + 1
        for isp in self.isps:
            if isp.deployed:
                continue
            if self.universal_access:
                # Revenue flow (A4): an offering ISP attracts IPvN
                # traffic from its own customers plus a split of the
                # customers of every non-offering ISP.
                attractable = isp.market_share + (1.0 - share) / offerers
            else:
                attractable = isp.market_share
            projected = self.revenue_coeff * self.demand * attractable * self.horizon
            defensive = (share >= self.defense_threshold and self.demand >= 0.5)
            if projected >= isp.deploy_cost or defensive:
                isp.deployed = True
            elif self.rng.random() < self.seeding_prob:
                isp.deployed = True  # experimental / niche deployment

    def run(self, rounds: int = 60) -> AdoptionTrajectory:
        trajectory = AdoptionTrajectory()
        for _ in range(rounds):
            self.step()
            trajectory.demand.append(self.demand)
            trajectory.deployed_share.append(self.deployed_share())
            trajectory.deployed_count.append(self.deployed_count())
        return trajectory


def compare_access_models(n_isps: int = 30, rounds: int = 60, seed: int = 0,
                          **kwargs) -> Dict[str, AdoptionTrajectory]:
    """Run the UA and no-UA variants with identical ISP populations."""
    with_ua = AdoptionModel(n_isps=n_isps, universal_access=True, seed=seed,
                            **kwargs).run(rounds)
    without_ua = AdoptionModel(n_isps=n_isps, universal_access=False, seed=seed,
                               **kwargs).run(rounds)
    return {"universal_access": with_ua, "walled_garden": without_ua}
