"""Metrics for the paper's experiments.

Everything here is computed from real forwarding traces and converged
control-plane state — no oracles on the measurement path (oracles are
used only as *denominators*, e.g. the true shortest path for stretch).

The vocabulary mirrors the evaluation axes in DESIGN.md:

* **stretch** — trace path cost over the direct IPv4 shortest-path cost
  between the endpoints (how much the anycast + vN-Bone detour costs);
* **vN coverage / v(N-1) tail** — how much of a delivery the vN-Bone
  carried vs. how far the packet traveled as plain IPv(N-1) after its
  egress (Figure 3's quality axis);
* **universal access** — fraction of IPvN-aware host pairs that can
  communicate (the paper's central requirement);
* **routing state** — per-AS BGP table growth (the option 1 vs 2 vs
  GIA scalability comparison).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.measure.oracle import DelayOracle
from repro.net.forwarding import ForwardingTrace, Outcome
from repro.net.network import Network
from repro.obs import get_obs


def trace_path_cost(network: Network, trace: ForwardingTrace) -> float:
    """Sum of link costs along the trace's node path."""
    path = trace.node_path()
    total = 0.0
    for a, b in zip(path, path[1:]):
        link = network.link_between(a, b)
        if link is not None:
            total += link.cost
    return total


def path_stretch(network: Network, trace: ForwardingTrace, src: str,
                 dst: str) -> Optional[float]:
    """Trace cost / direct shortest-path cost; None if undeliverable."""
    if not trace.delivered:
        return None
    direct = network.shortest_path(src, dst)
    if direct is None:
        return None
    optimal, _ = direct
    if optimal == 0.0:
        return 1.0
    return trace_path_cost(network, trace) / optimal


def delay_stretch(oracle: DelayOracle, trace: ForwardingTrace, src: str,
                  dst: str) -> Optional[float]:
    """Trace latency / best possible one-way delay; None if undelivered.

    The delay-weighted sibling of :func:`path_stretch`: how much slower
    the walk was than the lowest-latency path the live topology offers.
    1.0 when the optimal delay is zero (src == dst).
    """
    if not trace.delivered:
        return None
    optimal = oracle.delay(src, dst)
    if optimal is None:
        return None
    if optimal == 0.0:
        return 1.0
    return trace.latency / optimal


def vn_tail_length(network: Network, trace: ForwardingTrace) -> Optional[int]:
    """Physical hops traveled *after* the packet left the vN-Bone.

    The quantity Figure 3 minimizes: a better egress choice shortens
    the plain-IPv(N-1) tail.  None when the packet never rode the
    vN-Bone or was not delivered.
    """
    if not trace.delivered or trace.egress_router is None:
        return None
    hops = 0
    seen_egress = False
    for record in trace.hops:
        if record.node_id == trace.egress_router and record.action == "vn-egress":
            seen_egress = True
            continue
        if seen_egress and record.action == "ipv4-forward":
            hops += 1
    return hops


def vn_coverage(trace: ForwardingTrace) -> Optional[float]:
    """Fraction of physical forwarding hops spent inside the vN-Bone.

    A hop counts as "inside" while the packet is in a vN-Bone tunnel —
    between a ``vn-forward`` and the next decapsulation.  Hops after a
    ``vn-egress`` (the IPv(N-1) tail) are outside, even though the
    packet is still encapsulated.
    """
    if trace.physical_hops == 0:
        return None
    inside = 0
    in_tunnel = False
    for record in trace.hops:
        if record.action == "vn-forward":
            in_tunnel = True
        elif record.action in ("decap", "vn-egress", "deliver", "vn-deliver"):
            in_tunnel = False
        elif record.action == "ipv4-forward" and in_tunnel:
            inside += 1
    return inside / trace.physical_hops


def last_vn_domain(network: Network, trace: ForwardingTrace) -> Optional[int]:
    """The domain of the last IPvN router that handled the packet."""
    if trace.last_vn_node is None:
        return None
    return network.node(trace.last_vn_node).domain_id


@dataclass
class ReachabilityReport:
    """Outcome counts over a set of (src, dst) delivery attempts."""

    attempted: int = 0
    delivered: int = 0
    failures: Dict[str, int] = field(default_factory=dict)
    stretches: List[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def mean_stretch(self) -> Optional[float]:
        return statistics.fmean(self.stretches) if self.stretches else None

    @property
    def median_stretch(self) -> Optional[float]:
        return statistics.median(self.stretches) if self.stretches else None

    @property
    def max_stretch(self) -> Optional[float]:
        return max(self.stretches) if self.stretches else None

    def record(self, network: Network, trace: ForwardingTrace, src: str,
               dst: str) -> None:
        self.attempted += 1
        if trace.delivered:
            self.delivered += 1
            stretch = path_stretch(network, trace, src, dst)
            if stretch is not None:
                self.stretches.append(stretch)
        else:
            key = trace.outcome.value
            self.failures[key] = self.failures.get(key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (shared serialization contract)."""
        return {"attempted": self.attempted, "delivered": self.delivered,
                "delivery_ratio": self.delivery_ratio,
                "failures": dict(sorted(self.failures.items())),
                "mean_stretch": self.mean_stretch,
                "median_stretch": self.median_stretch,
                "max_stretch": self.max_stretch}


@dataclass
class FaultEpochReport:
    """What one fault epoch (a batch of same-time fault events) did.

    Captures the paper's anycast-failover measurement: the *transient*
    reachability probe runs against stale forwarding state right after
    the faults hit (packets black-holing at the failure), the
    *recovered* probe runs after the control plane reconverged and FIBs
    were reinstalled.
    """

    time: float
    events: List[str] = field(default_factory=list)
    reconverged_at: Optional[float] = None
    events_processed: int = 0
    transient: Optional[ReachabilityReport] = None
    recovered: Optional[ReachabilityReport] = None

    @property
    def reconvergence_time(self) -> Optional[float]:
        """Sim-time from fault injection to control-plane quiescence."""
        if self.reconverged_at is None:
            return None
        return self.reconverged_at - self.time

    @property
    def transient_losses(self) -> int:
        """Probes lost in the window before reconvergence."""
        if self.transient is None:
            return 0
        return self.transient.attempted - self.transient.delivered

    @property
    def recovered_delivery_ratio(self) -> Optional[float]:
        if self.recovered is None:
            return None
        return self.recovered.delivery_ratio

    def to_dict(self) -> Dict[str, object]:
        def report_dict(report: Optional[ReachabilityReport]) -> Optional[Dict[str, object]]:
            return report.to_dict() if report is not None else None

        return {"time": self.time, "events": list(self.events),
                "reconverged_at": self.reconverged_at,
                "reconvergence_time": self.reconvergence_time,
                "events_processed": self.events_processed,
                "transient_losses": self.transient_losses,
                "transient": report_dict(self.transient),
                "recovered": report_dict(self.recovered)}


def measure_reachability(network: Network, send, pairs: Iterable[Tuple[str, str]]
                         ) -> ReachabilityReport:
    """Run *send(src, dst) -> trace* over *pairs* and aggregate.

    Under an enabled observability handle, each probe additionally
    emits a ``reach.probe`` event carrying the per-packet path stretch
    (trace cost / direct shortest-path cost — an oracle quantity the
    trace alone cannot reconstruct), the delay-weighted analogue
    ``delay_stretch`` (trace latency / best possible delay, from
    :class:`~repro.measure.oracle.DelayOracle`), plus the hop/
    encapsulation counts, which is what the offline analyzer's stretch
    and encapsulation-overhead distributions are built from.  Older
    (pre-v3) traces simply lack ``delay_stretch``; the analyzer treats
    it as optional.
    """
    report = ReachabilityReport()
    obs = get_obs()
    oracle = DelayOracle(network) if obs.enabled else None
    for src, dst in pairs:
        trace = send(src, dst)
        report.record(network, trace, src, dst)
        if obs.enabled:
            assert oracle is not None  # repro: allow[D5]
            obs.event("reach.probe", src=src, dst=dst,
                      outcome=trace.outcome.value,
                      stretch=path_stretch(network, trace, src, dst),
                      delay_stretch=delay_stretch(oracle, trace, src, dst),
                      latency=trace.latency,
                      physical_hops=trace.physical_hops,
                      vn_hops=trace.vn_hops,
                      encapsulations=trace.encapsulations,
                      max_depth=trace.max_depth,
                      faulted=trace.faulted)
    return report


def routing_state_table(route_counts: Dict[int, int]) -> Dict[str, float]:
    """Summary statistics over per-AS routing-state counts (E5 rows)."""
    values = list(route_counts.values())
    if not values:
        return {"total": 0.0, "mean": 0.0, "max": 0.0}
    return {"total": float(sum(values)),
            "mean": float(statistics.fmean(values)),
            "max": float(max(values))}


def traffic_share(network: Network, traces: Sequence[ForwardingTrace],
                  asn: int) -> float:
    """Fraction of delivered traces whose anycast ingress is in *asn*.

    The "default provider receives a larger than normal share" metric
    of Section 3.2, option 2.
    """
    delivered = [t for t in traces if t.delivered and t.ingress_router is not None]
    if not delivered:
        return 0.0
    hits = sum(1 for t in delivered
               if network.node(t.ingress_router).domain_id == asn)
    return hits / len(delivered)


def outcome_histogram(traces: Sequence[ForwardingTrace]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for trace in traces:
        counts[trace.outcome.value] = counts.get(trace.outcome.value, 0) + 1
    return counts


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/median/max of a metric series (bench table helper)."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0, "n": 0.0}
    return {"min": float(min(values)), "mean": float(statistics.fmean(values)),
            "median": float(statistics.median(values)),
            "max": float(max(values)), "n": float(len(values))}
