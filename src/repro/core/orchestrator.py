"""The routing orchestrator: one object that owns all control planes.

``Orchestrator`` wires together, over a single deterministic event
scheduler:

* one IGP instance per domain (link-state by default, distance-vector
  per domain on request — the paper treats both, Section 3.2),
* one BGP protocol spanning all domains,
* the forwarding engine.

``converge()`` runs everything to quiescence and installs forwarding
state in dependency order: IGPs first (BGP's hot-potato installation
needs IGP routes to border loopbacks), then BGP.  Deployment actions
(anycast advertisements, new originations, peering agreements) call
``reconverge()`` afterwards.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.net.errors import RoutingError
from repro.net.forwarding import ForwardingEngine, ForwardingTrace
from repro.net.link import Link, LinkScope
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.simulator import EventScheduler
from repro.obs import get_obs
from repro.bgp.policy import BgpPolicy, BilateralAgreements
from repro.bgp.protocol import BgpProtocol
from repro.routing.distancevector import DistanceVectorRouting
from repro.routing.igp import IgpProtocol
from repro.routing.linkstate import LinkStateRouting

IGP_KINDS = ("linkstate", "distancevector")


class Orchestrator:
    """Owns and sequences every control-plane protocol of one internetwork."""

    def __init__(self, network: Network, seed: int = 0,
                 igp_kind: str = "linkstate",
                 igp_overrides: Optional[Dict[int, str]] = None,
                 policy: Optional[BgpPolicy] = None) -> None:
        if igp_kind not in IGP_KINDS:
            raise RoutingError(f"unknown IGP kind {igp_kind!r}; choose from {IGP_KINDS}")
        self.network = network
        self.obs = get_obs()
        self.scheduler = EventScheduler(seed=seed, obs=self.obs)
        self.policy = policy if policy is not None else BgpPolicy()
        self.bgp = BgpProtocol(network, self.scheduler, policy=self.policy)
        self.engine = ForwardingEngine(network, clock=lambda: self.scheduler.now)
        self.igps: Dict[int, IgpProtocol] = {}
        overrides = igp_overrides or {}
        for asn, domain in sorted(network.domains.items()):
            kind = overrides.get(asn, igp_kind)
            if kind not in IGP_KINDS:
                raise RoutingError(f"unknown IGP kind {kind!r} for AS{asn}")
            cls = LinkStateRouting if kind == "linkstate" else DistanceVectorRouting
            self.igps[asn] = cls(network, domain, self.scheduler)
        self._converged = False
        if self.obs.enabled:
            self.obs.event("topology", seed=seed, igp_kind=igp_kind,
                           **network.stats())

    @property
    def agreements(self) -> BilateralAgreements:
        return self.policy.agreements

    def igp(self, asn: int) -> IgpProtocol:
        try:
            return self.igps[asn]
        except KeyError:
            raise RoutingError(f"no IGP for AS{asn}") from None

    # -- convergence -------------------------------------------------------------
    def converge(self, max_events: int = 5_000_000) -> int:
        """Run all protocols to quiescence and install forwarding state."""
        observed = self.obs.enabled
        if observed:
            wall_t0 = time.perf_counter()
        processed = 0
        with self.obs.span("orchestrator.converge", t=self.scheduler.now) as span:
            for asn in sorted(self.igps):
                igp = self.igps[asn]
                if not igp._started:  # noqa: SLF001 - orchestrator owns lifecycle
                    igp.start()
            processed += self.scheduler.run_until_idle(max_events=max_events)
            for asn in sorted(self.igps):
                self.igps[asn].install_routes()
            self.bgp.start()
            processed += self.scheduler.run_until_idle(max_events=max_events)
            self.bgp.install_routes()
            self.engine.fastpath.bump()
            self._converged = True
            span.end(t=self.scheduler.now, events=processed)
        if observed:
            wall_ms = (time.perf_counter() - wall_t0) * 1000.0
            self.obs.counter("orchestrator.convergences").inc()
            self.obs.histogram("orchestrator.converge_wall_ms").observe(wall_ms)
            self.obs.event("orchestrator.converge", t=self.scheduler.now,
                           events=processed, wall_ms=wall_ms)
        return processed

    def reconverge(self, max_events: int = 5_000_000) -> int:
        """Re-run protocols after a control-plane change.

        IGP refreshes are triggered by the protocols themselves when
        anycast advertisements change; BGP propagation is triggered by
        origination calls.  This drains whatever is pending and
        reinstalls in order.
        """
        if not self._converged:
            return self.converge(max_events=max_events)
        observed = self.obs.enabled
        if observed:
            wall_t0 = time.perf_counter()
        with self.obs.span("orchestrator.reconverge", t=self.scheduler.now) as span:
            for asn in sorted(self.igps):
                self.igps[asn].refresh()
            # Tear down crashed speakers and BGP sessions whose physical
            # links vanished; the flush propagates withdrawals/alternatives.
            self.bgp.resync_speakers()
            self.bgp.resync_sessions()
            processed = self.scheduler.run_until_idle(max_events=max_events)
            self.install_routes()
            span.end(t=self.scheduler.now, events=processed)
        if observed:
            wall_ms = (time.perf_counter() - wall_t0) * 1000.0
            self.obs.counter("orchestrator.reconvergences").inc()
            self.obs.histogram("orchestrator.reconverge_wall_ms").observe(wall_ms)
            self.obs.event("orchestrator.reconverge", t=self.scheduler.now,
                           events=processed, wall_ms=wall_ms)
        return processed

    def install_routes(self) -> None:
        """Install converged state into FIBs: IGPs first, then BGP."""
        for asn in sorted(self.igps):
            self.igps[asn].install_routes()
        self.bgp.install_routes()
        # FIBs changed: cached flow-level walks are stale.
        self.engine.fastpath.bump()

    # -- failure notification ----------------------------------------------------
    def notify_link_change(self, link: Link) -> None:
        """Tell the control planes a link changed state (fault injection).

        Intra-domain links go to the owning domain's IGP, which arms
        hold-down timers at the endpoints; inter-domain links go to BGP
        session maintenance.  The caller is responsible for draining the
        scheduler (:meth:`EventScheduler.run_until_idle`) and calling
        :meth:`install_routes` afterwards — the :class:`FaultInjector`
        does both.
        """
        if link.scope is LinkScope.INTER_DOMAIN:
            self.bgp.resync_sessions()
            return
        domain_id = self.network.node(link.a).domain_id
        igp = self.igps.get(domain_id)
        if igp is not None:
            igp.on_link_change(link)

    def notify_node_change(self, node_id: str) -> None:
        """Tell the control planes a node crashed or recovered."""
        self.bgp.resync_speakers()
        self.bgp.resync_sessions()
        node = self.network.node(node_id)
        igp = self.igps.get(node.domain_id)
        if igp is not None and node.up:
            # A recovered router must re-advertise itself; its neighbors
            # react to the restored links via notify_link_change.
            igp.refresh()

    # -- convenience -----------------------------------------------------------------
    def forward(self, packet: Packet, start: str, strict: bool = False) -> ForwardingTrace:
        """Send *packet* from node *start* through the converged data plane."""
        if not self._converged:
            raise RoutingError("converge() before forwarding packets")
        return self.engine.forward(packet, start, strict=strict)

    def message_totals(self) -> Dict[str, int]:
        """Control-plane message counters (experiment E11)."""
        igp_sent = sum(igp.stats.sent for igp in self.igps.values())
        return {"igp_messages": igp_sent, "bgp_messages": self.bgp.stats.sent,
                "events": self.scheduler.events_processed}
