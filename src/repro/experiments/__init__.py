"""The experiment suite: every reproduced figure and claim, runnable.

Importing this package populates the workload-spec registry; use::

    from repro.experiments import all_specs, available, describe, run

    print(available())          # ['E10', 'E11', ..., 'F1', ..., 'bench_*']
    result = run("F1")
    print(result.table())

Every entry is a declarative :class:`WorkloadSpec` — id, runner, typed
param schema with defaults, tags, artifact schema — so the CLI, the
bench harness, the benchmark suite, and the :mod:`repro.fleet` sweep
engine all enumerate and validate workloads through this one surface.
"""

from repro.experiments.base import (EXPERIMENT_SCHEMA, ExperimentResult,
                                    Param, RunOutcome, WorkloadSpec,
                                    all_specs, available, describe,
                                    format_error, get_spec, register, run,
                                    run_many, validate_experiment_dict)

# Importing the modules registers their experiments.
from repro.experiments import figures  # noqa: F401  (F1-F4)
from repro.experiments import anycast_claims  # noqa: F401  (E5, E6)
from repro.experiments import redirection_claims  # noqa: F401  (E7)
from repro.experiments import incentive_claims  # noqa: F401  (E8, E14)
from repro.experiments import vnbone_claims  # noqa: F401  (E9a, E9b, E15)
from repro.experiments import access_claims  # noqa: F401  (E10, E13a, E13b)
from repro.experiments import igp_claims  # noqa: F401  (E11)
from repro.experiments import service_claims  # noqa: F401  (E12a/b, E16)
from repro.experiments import resilience_claims  # noqa: F401  (E17)
from repro.experiments import measurement_claims  # noqa: F401  (rtt_catchment)
# The perf-bench workloads register under bench_* so the fleet and the
# CLI can sweep them through the same registry.
from repro.perf import bench as _bench  # noqa: F401  (bench_*)

__all__ = ["EXPERIMENT_SCHEMA", "ExperimentResult", "Param", "RunOutcome",
           "WorkloadSpec", "all_specs", "available", "describe",
           "format_error", "get_spec", "register", "run", "run_many",
           "validate_experiment_dict"]
