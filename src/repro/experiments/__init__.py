"""The experiment suite: every reproduced figure and claim, runnable.

Importing this package populates the registry; use::

    from repro.experiments import available, describe, run

    print(available())          # ['E10', 'E11', ..., 'F1', ..., 'F4']
    result = run("F1")
    print(result.table())
"""

from repro.experiments.base import (ExperimentInfo, ExperimentResult,
                                    available, describe, register, run,
                                    run_many)

# Importing the modules registers their experiments.
from repro.experiments import figures  # noqa: F401  (F1-F4)
from repro.experiments import anycast_claims  # noqa: F401  (E5, E6)
from repro.experiments import redirection_claims  # noqa: F401  (E7)
from repro.experiments import incentive_claims  # noqa: F401  (E8, E14)
from repro.experiments import vnbone_claims  # noqa: F401  (E9a, E9b, E15)
from repro.experiments import access_claims  # noqa: F401  (E10, E13a, E13b)
from repro.experiments import igp_claims  # noqa: F401  (E11)
from repro.experiments import service_claims  # noqa: F401  (E12a/b, E16)
from repro.experiments import resilience_claims  # noqa: F401  (E17)

__all__ = ["ExperimentInfo", "ExperimentResult", "available", "describe",
           "register", "run", "run_many"]
