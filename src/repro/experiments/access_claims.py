"""Experiments E10 and E13: universal access and control-plane cost."""

from __future__ import annotations

import statistics

from typing import Dict, Optional

from repro.anycast import DefaultRootedAnycast, GlobalAnycast
from repro.core.evolution import EvolvableInternet
from repro.core.metrics import measure_reachability, vn_tail_length
from repro.topogen import InternetSpec
from repro.vnbone import EgressPolicy, adoption_rng
from repro.experiments.base import ExperimentResult, Param, register
from repro.experiments.common import converged_internet, experiment_spec

E10_ADOPTION_STEPS = [1, 3, 6, 10]
E13_SIZES = [(2, 4, 8), (3, 6, 12), (4, 8, 20)]


def _run_policy(policy, seed, sample):
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=10, hosts_per_stub=2,
                     seed=seed))
    deployment = internet.new_deployment(version=8, scheme="default",
                                         egress_policy=policy)
    # Core-first adoption (the shape Figure 1 narrates).
    order = [deployment.scheme.default_asn]
    order += [asn for asn in sorted(internet.network.domains)
              if internet.network.domains[asn].tier == 2]
    order += [asn for asn in internet.stub_asns() if asn not in order]
    pairs = internet.host_pairs(sample=sample, seed=2)
    rows = []
    adopted = 0
    for target in E10_ADOPTION_STEPS:
        while adopted < target:
            deployment.deploy(order[adopted], fraction=0.5,
                              rng=adoption_rng(order[adopted]))
            adopted += 1
        deployment.rebuild()
        report = measure_reachability(internet.network, deployment.send,
                                      pairs)
        tails = [t for t in (vn_tail_length(internet.network,
                                            deployment.send(a, b))
                             for a, b in pairs[:25]) if t is not None]
        rows.append({"adopters": target,
                     "delivery": report.delivery_ratio,
                     "stretch": report.mean_stretch,
                     "tail": statistics.fmean(tails) if tails else None})
    return rows


@register("E10", "universal access vs deployment spread (A1 partial)",
          params={"sample": Param("int", 50, "host pairs per stage")},
          tags=("claim", "access"))
def run_universal_access(seed: int = 23,
                         params: Optional[Dict[str, object]] = None
                         ) -> ExperimentResult:
    params = dict(params or {})
    sample = int(params.get("sample", 50))
    data = {policy.value: _run_policy(policy, seed, sample)
            for policy in (EgressPolicy.EXIT_IMMEDIATELY,
                           EgressPolicy.BGP_INFORMED)}
    naive = data["exit-immediately"]
    informed = data["bgp-informed"]
    header = (f"{'adopters':>8} | {'naive deliv':>11} {'stretch':>8} "
              f"{'tail':>5} | {'informed deliv':>14} {'stretch':>8} "
              f"{'tail':>5}")
    rows = [f"{n['adopters']:>8} | {n['delivery']:>11.0%} "
            f"{n['stretch']:>8.2f} {n['tail']:>5.1f} | "
            f"{i['delivery']:>14.0%} {i['stretch']:>8.2f} {i['tail']:>5.1f}"
            for n, i in zip(naive, informed)]
    return ExperimentResult(
        experiment_id="E10",
        title="E10: universal access vs deployment spread "
              "(50% of each adopter's routers, A1)",
        header=header, rows=rows, data=data,
        footer="paper: access is total from one adopter on; quality "
               "improves with spread; BGPv(N-1) egress shortens tails",
        seed=seed, params=params)


@register("E13a", "cold-start convergence cost vs topology size",
          params={}, tags=("claim", "cost"))
def run_cold_start(seed: int = 61,
                   params: Optional[Dict[str, object]] = None
                   ) -> ExperimentResult:
    data = []
    for n_tier1, n_tier2, n_stub in E13_SIZES:
        spec = experiment_spec(seed=seed, n_tier1=n_tier1, n_tier2=n_tier2,
                               n_stub=n_stub)
        generated, orch = converged_internet(spec)
        totals = orch.message_totals()
        data.append({
            "domains": spec.total_domains(),
            "routers": generated.network.stats()["routers"],
            "igp_msgs": totals["igp_messages"],
            "bgp_msgs": totals["bgp_messages"],
            "sim_time": orch.scheduler.now,
        })
    header = (f"{'domains':>7} {'routers':>8} {'IGP msgs':>9} "
              f"{'BGP msgs':>9} {'sim time':>9}")
    rows = [f"{r['domains']:>7} {r['routers']:>8} {r['igp_msgs']:>9} "
            f"{r['bgp_msgs']:>9} {r['sim_time']:>9.1f}" for r in data]
    return ExperimentResult(
        experiment_id="E13a",
        title="E13a: cold-start convergence vs topology size",
        header=header, rows=rows, data=data,
        footer="substrate sanity: cost grows with size, no blow-up",
        seed=seed, params=dict(params or {}))


@register("E13b", "control-plane cost of one ISP adopting IPvN",
          params={}, tags=("claim", "cost"))
def run_adoption_cost(seed: int = 61,
                      params: Optional[Dict[str, object]] = None
                      ) -> ExperimentResult:
    data = []
    for scheme_name in ("option2", "option1"):
        generated, orch = converged_internet(experiment_spec(seed=seed))
        if scheme_name == "option2":
            scheme = DefaultRootedAnycast(orch, "a",
                                          default_asn=generated.tier1[0])
        else:
            scheme = GlobalAnycast(orch, "a")
        adopter = generated.tier1[0]
        igp_before = sum(igp.stats.sent for igp in orch.igps.values())
        bgp_before = orch.bgp.stats.sent
        time_before = orch.scheduler.now
        for router in sorted(orch.network.domains[adopter].routers):
            scheme.add_member(router)
        orch.reconverge()
        data.append({
            "scheme": scheme_name,
            "igp_msgs": sum(igp.stats.sent
                            for igp in orch.igps.values()) - igp_before,
            "bgp_msgs": orch.bgp.stats.sent - bgp_before,
            "sim_time": orch.scheduler.now - time_before,
        })
    header = (f"{'scheme':>8} {'IGP msgs':>9} {'BGP msgs':>9} "
              f"{'sim time':>9}")
    rows = [f"{r['scheme']:>8} {r['igp_msgs']:>9} {r['bgp_msgs']:>9} "
            f"{r['sim_time']:>9.1f}" for r in data]
    return ExperimentResult(
        experiment_id="E13b",
        title="E13b: control-plane cost of ONE ISP adopting IPvN",
        header=header, rows=rows, data=data,
        footer="paper: option 2 keeps adoption local (zero BGP churn); "
               "option 1 perturbs global BGP",
        seed=seed, params=dict(params or {}))
