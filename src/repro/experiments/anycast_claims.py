"""Experiments E5-E6: the Section 3.2 scalability and proximity claims."""

from __future__ import annotations

import statistics

from typing import Dict, Optional

from repro.anycast import DefaultRootedAnycast, GiaAnycast, GlobalAnycast
from repro.trace import sources_for_probes
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import converged_internet, experiment_spec

E5_GROUP_COUNTS = [1, 2, 4, 8, 16]
E6_FRACTIONS = [0.1, 0.25, 0.5, 0.75, 1.0]


def _deploy_groups(scheme_factory, orch, generated, count):
    """Create *count* one-domain-per-tier groups and converge once."""
    schemes = []
    adopter_pool = generated.tier1 + generated.tier2
    for index in range(count):
        scheme = scheme_factory(index)
        adopter = adopter_pool[index % len(adopter_pool)]
        for router in sorted(orch.network.domains[adopter].routers):
            scheme.add_member(router)
        schemes.append(scheme)
    orch.reconverge()
    for scheme in schemes:
        scheme.post_converge_install()
    totals = {asn: 0 for asn in orch.network.domains}
    for scheme in schemes:
        for asn, added in scheme.routing_state_added().items():
            totals[asn] += added
    return {"total": sum(totals.values()), "max_per_as": max(totals.values())}


@register("E5", "routing-state scaling: option 1 vs option 2 vs GIA",
          params={}, tags=("claim", "anycast"))
def run_routing_state(seed: int = 3,
                      params: Optional[Dict[str, object]] = None
                      ) -> ExperimentResult:
    data = []
    for count in E5_GROUP_COUNTS:
        generated, orch = converged_internet(experiment_spec(seed=seed))
        option1 = _deploy_groups(
            lambda i: GlobalAnycast(orch, f"g{i}"), orch, generated, count)

        generated2, orch2 = converged_internet(experiment_spec(seed=seed))
        option2 = _deploy_groups(
            lambda i: DefaultRootedAnycast(
                orch2, f"d{i}",
                default_asn=generated2.tier1[i % len(generated2.tier1)]),
            orch2, generated2, count)

        generated3, orch3 = converged_internet(experiment_spec(seed=seed))
        gia = _deploy_groups(
            lambda i: GiaAnycast(
                orch3, f"a{i}", group_index=i,
                home_asn=generated3.tier1[i % len(generated3.tier1)]),
            orch3, generated3, count)
        data.append({"groups": count, "option1": option1,
                     "option2": option2, "gia": gia})
    n_domains = experiment_spec().total_domains()
    header = (f"{'groups':>6} | {'opt1 total':>10} {'opt1 max/AS':>11} | "
              f"{'opt2 total':>10} {'opt2 max/AS':>11} | "
              f"{'GIA total':>9} {'GIA max/AS':>10}")
    rows = [f"{r['groups']:>6} | {r['option1']['total']:>10} "
            f"{r['option1']['max_per_as']:>11} | {r['option2']['total']:>10} "
            f"{r['option2']['max_per_as']:>11} | {r['gia']['total']:>9} "
            f"{r['gia']['max_per_as']:>10}" for r in data]
    return ExperimentResult(
        experiment_id="E5",
        title=(f"E5: added inter-domain routing state vs concurrent "
               f"deployments ({n_domains} ASes)"),
        header=header, rows=rows, data=data,
        footer="paper: opt1 state ~ groups x ASes; opt2 adds none; GIA "
               "stays bounded",
        seed=seed, params=dict(params or {}))


def _adopters_for(generated, fraction):
    pool = generated.tier1 + generated.tier2 + generated.stubs
    count = max(1, round(fraction * len(pool)))
    return pool[:count]  # deterministic: core first


def _measure_proximity(scheme, orch, adopters, advertise):
    for asn in adopters:
        for router in sorted(orch.network.domains[asn].routers):
            scheme.add_member(router)
    if advertise and hasattr(scheme, "advertise_to_neighbor"):
        for asn in adopters:
            if asn == scheme.default_asn:
                continue
            for neighbor in sorted(orch.network.domains[asn].neighbor_asns()):
                scheme.advertise_to_neighbor(asn, neighbor)
    orch.reconverge()
    sources = sources_for_probes(orch.network, seed=1)
    stretches = [s for s in (scheme.proximity_stretch(src) for src in sources)
                 if s is not None]
    default_share = (scheme.default_share(sources)
                     if isinstance(scheme, DefaultRootedAnycast) else None)
    return {"mean": statistics.fmean(stretches), "max": max(stretches),
            "default_share": default_share}


@register("E6", "anycast proximity stretch vs deployment fraction",
          params={}, tags=("claim", "anycast"))
def run_proximity(seed: int = 9,
                  params: Optional[Dict[str, object]] = None
                  ) -> ExperimentResult:
    data = []
    for fraction in E6_FRACTIONS:
        generated, orch = converged_internet(experiment_spec(seed=seed))
        adopters = _adopters_for(generated, fraction)
        opt1 = _measure_proximity(GlobalAnycast(orch, "o1"), orch, adopters,
                                  False)

        generated2, orch2 = converged_internet(experiment_spec(seed=seed))
        opt2 = _measure_proximity(
            DefaultRootedAnycast(orch2, "o2", default_asn=generated2.tier1[0]),
            orch2, _adopters_for(generated2, fraction), False)

        generated3, orch3 = converged_internet(experiment_spec(seed=seed))
        opt2adv = _measure_proximity(
            DefaultRootedAnycast(orch3, "o2a",
                                 default_asn=generated3.tier1[0]),
            orch3, _adopters_for(generated3, fraction), True)
        data.append({"fraction": fraction, "opt1": opt1, "opt2": opt2,
                     "opt2adv": opt2adv})
    header = (f"{'deployed':>8} | {'opt1 mean':>9} | {'opt2 mean':>9} "
              f"{'opt2 max':>8} {'dflt share':>10} | {'opt2+adv mean':>13} "
              f"{'dflt share':>10}")
    rows = [f"{r['fraction']:>8.0%} | {r['opt1']['mean']:>9.2f} | "
            f"{r['opt2']['mean']:>9.2f} {r['opt2']['max']:>8.1f} "
            f"{r['opt2']['default_share']:>10.0%} | "
            f"{r['opt2adv']['mean']:>13.2f} "
            f"{r['opt2adv']['default_share']:>10.0%}" for r in data]
    return ExperimentResult(
        experiment_id="E6",
        title="E6: anycast proximity stretch vs deployment fraction",
        header=header, rows=rows, data=data,
        footer="paper: opt2 imperfect proximity, improving with spread and "
               "peer advertising; default ISP over-weighted early",
        seed=seed, params=dict(params or {}))
