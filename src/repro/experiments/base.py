"""The workload-spec registry, result type, and run API.

Every reproduced figure, claim, and perf workload is a declarative
:class:`WorkloadSpec` registered here: an id, a one-line description, a
runner with the uniform ``runner(*, seed, params)`` signature, a typed
parameter schema with defaults, a set of tags, and the schema tag of
the artifact the runner emits.  The whole evaluation is therefore
enumerable and validatable through one surface::

    from repro.experiments import all_specs, run

    for spec in all_specs():
        errors = spec.validate_params(spec.default_params())
        result = run(spec.workload_id)

The same surface drives the shell (``python -m repro experiment F1``),
the perf harness (:mod:`repro.perf.bench` registers its workloads under
``bench_*`` tags), the benchmark suite (`benchmarks/`), and the
multiprocess sweep engine (:mod:`repro.fleet`), which fans a parameter
matrix over these specs across worker processes.

Runners have exactly one signature shape: keyword-accessible ``seed``
and ``params`` (each may carry a runner-chosen default).  The zero-arg
runner style — and the ``DeprecationWarning`` shim that tolerated it —
is gone; :func:`register` rejects runners that cannot accept both
keywords.

:func:`run` also drives the observability layer: pass an
:class:`~repro.obs.Observability` and the runner executes under
:func:`~repro.obs.observing`, so every scheduler/IGP/BGP/forwarding
object the experiment constructs binds to it.  The returned
:class:`ExperimentResult` then carries ``metrics`` (the registry
snapshot) and ``trace_path``, and serializes to the versioned
``repro.experiment/v1`` document (:func:`validate_experiment_dict`).
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, Iterable, List, Mapping,
                    Optional, Tuple)

from repro.net.errors import ReproError, WorkloadError
from repro.obs import Observability, observing
from repro.obs.serialize import json_safe

#: Schema tag stamped into :meth:`ExperimentResult.to_dict` documents.
EXPERIMENT_SCHEMA = "repro.experiment/v1"

#: Keywords every registered runner must accept.
_REQUIRED_KEYWORDS = ("seed", "params")

#: Parameter kinds a :class:`Param` may declare, with the runtime types
#: each accepts.  ``float`` accepts ints (JSON has one number type);
#: ``bool`` is never accepted where a number is declared.
PARAM_KINDS: Dict[str, Tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "str": (str,),
}


@dataclass(frozen=True)
class Param:
    """One declared workload parameter: kind, default, description."""

    kind: str
    default: object
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise WorkloadError(
                f"unknown param kind {self.kind!r}; "
                f"expected one of {sorted(PARAM_KINDS)}")
        if not self.accepts(self.default):
            raise WorkloadError(
                f"param default {self.default!r} is not a {self.kind}")

    def accepts(self, value: object) -> bool:
        accepted = PARAM_KINDS[self.kind]
        if bool not in accepted and isinstance(value, bool):
            return False
        return isinstance(value, accepted)


@dataclass
class ExperimentResult:
    """One experiment's regenerated table plus its raw data.

    ``metrics`` and ``trace_path`` are populated by :func:`run` when the
    experiment executes under an enabled
    :class:`~repro.obs.Observability`; ``seed`` and ``params`` echo what
    the runner was invoked with.
    """

    experiment_id: str
    title: str
    header: str
    rows: List[str]
    #: Structured per-row data, for assertions and further analysis.
    data: object
    footer: str = ""
    seed: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    #: Metrics-registry snapshot from the run's Observability (if any).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Where the structured JSONL trace was written (if tracing was on).
    trace_path: Optional[str] = None

    def table(self) -> str:
        lines = [f"== {self.title} ==", self.header, "-" * len(self.header)]
        lines.extend(self.rows)
        if self.footer:
            lines.append(self.footer)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Canonical ``repro.experiment/v1`` form (shared serialization
        contract; see :func:`validate_experiment_dict`)."""
        return {"schema": EXPERIMENT_SCHEMA,
                "experiment_id": self.experiment_id, "title": self.title,
                "header": self.header, "rows": list(self.rows),
                "data": json_safe(self.data), "footer": self.footer,
                "seed": self.seed, "params": json_safe(self.params),
                "metrics": json_safe(self.metrics),
                "trace_path": self.trace_path}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


#: ``(field, required type or types, nullable)`` rows of the
#: ``repro.experiment/v1`` document, checked by
#: :func:`validate_experiment_dict`.
_EXPERIMENT_FIELDS: Tuple[Tuple[str, Tuple[type, ...], bool], ...] = (
    ("experiment_id", (str,), False),
    ("title", (str,), False),
    ("header", (str,), False),
    ("rows", (list,), False),
    ("footer", (str,), False),
    ("seed", (int,), True),
    ("params", (dict,), False),
    ("metrics", (dict,), False),
    ("trace_path", (str,), True),
)


def validate_experiment_dict(doc: object) -> List[str]:
    """Validate a ``repro.experiment/v1`` document; returns error strings.

    The fleet merge step runs every per-cell artifact through this
    before folding it into the cross-scenario report.
    """
    if not isinstance(doc, dict):
        return [f"document: expected object, got {type(doc).__name__}"]
    errors: List[str] = []
    schema = doc.get("schema")
    if schema != EXPERIMENT_SCHEMA:
        errors.append(f"schema: expected {EXPERIMENT_SCHEMA!r}, "
                      f"got {schema!r}")
    for name, types, nullable in _EXPERIMENT_FIELDS:
        if name not in doc:
            errors.append(f"{name}: missing")
            continue
        value = doc[name]
        if value is None:
            if not nullable:
                errors.append(f"{name}: may not be null")
            continue
        if not isinstance(value, types) or (bool not in types
                                            and isinstance(value, bool)):
            errors.append(f"{name}: expected {types[0].__name__}, "
                          f"got {type(value).__name__}")
    rows = doc.get("rows")
    if isinstance(rows, list) and not all(isinstance(r, str) for r in rows):
        errors.append("rows: expected array of strings")
    if "data" not in doc:
        errors.append("data: missing")
    return errors


_Runner = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry: a declarative, enumerable workload description.

    ``params`` is the typed parameter schema — every knob the runner
    understands, with its default.  ``None`` means the workload is
    unconstrained (scratch/test runners); a mapping (possibly empty)
    means :meth:`validate_params` rejects unknown keys and wrong types.
    ``artifact_schema`` names the document schema :meth:`call`'s result
    serializes to, so consumers know what to validate against.
    """

    workload_id: str
    description: str
    runner: _Runner
    params: Optional[Mapping[str, Param]] = None
    tags: FrozenSet[str] = frozenset()
    artifact_schema: str = EXPERIMENT_SCHEMA

    def default_params(self) -> Dict[str, object]:
        """The schema's defaults (empty when unconstrained)."""
        if not self.params:
            return {}
        return {name: param.default
                for name, param in sorted(self.params.items())}

    def resolve_params(
            self, params: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        """Defaults overlaid with *params* (the cell the runner sees)."""
        resolved = self.default_params()
        resolved.update(params or {})
        return resolved

    def validate_params(
            self, params: Optional[Mapping[str, object]] = None
    ) -> List[str]:
        """Check *params* against the schema; returns error strings."""
        errors: List[str] = []
        if self.params is None:
            return errors
        for name, value in sorted((params or {}).items()):
            declared = self.params.get(name)
            if declared is None:
                known = ", ".join(sorted(self.params)) or "none"
                errors.append(f"{self.workload_id}: unknown param {name!r} "
                              f"(declared: {known})")
            elif not declared.accepts(value):
                errors.append(f"{self.workload_id}: param {name!r} expects "
                              f"{declared.kind}, got {value!r}")
        return errors

    def call(self, seed: Optional[int] = None,
             params: Optional[Dict[str, object]] = None) -> ExperimentResult:
        """Validate *params* and invoke the runner.

        ``None`` values are withheld so the runner's own defaults apply;
        schema violations raise :class:`~repro.net.errors.WorkloadError`
        before any work happens.
        """
        errors = self.validate_params(params)
        if errors:
            raise WorkloadError("; ".join(errors))
        kwargs: Dict[str, object] = {}
        if seed is not None:
            kwargs["seed"] = seed
        if params is not None:
            kwargs["params"] = dict(params)
        return self.runner(**kwargs)


_REGISTRY: Dict[str, WorkloadSpec] = {}


def _check_runner_signature(experiment_id: str, runner: _Runner) -> None:
    """Every runner must accept ``seed`` and ``params`` by keyword."""
    try:
        signature = inspect.signature(runner)
    except (TypeError, ValueError):  # builtins / odd callables
        raise WorkloadError(
            f"experiment {experiment_id!r}: runner signature is not "
            "introspectable; runners must accept seed= and params=")
    accepted = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return
        if parameter.name in _REQUIRED_KEYWORDS and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY):
            accepted.add(parameter.name)
    missing = [name for name in _REQUIRED_KEYWORDS if name not in accepted]
    if missing:
        raise WorkloadError(
            f"experiment {experiment_id!r}: runner must accept "
            f"{', '.join(missing)} by keyword (zero-arg runners were "
            "removed; declare runner(*, seed=..., params=None))")


def register(experiment_id: str, description: str, *,
             params: Optional[Mapping[str, Param]] = None,
             tags: Iterable[str] = ()) -> Callable[[_Runner], _Runner]:
    """Decorator registering a workload under *experiment_id*.

    *params* declares the typed parameter schema (``None`` leaves the
    workload unconstrained); *tags* label workload families (e.g.
    ``figure``, ``claim``, ``bench``) for enumeration and sweeps.
    """

    def wrap(runner: _Runner) -> _Runner:
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        _check_runner_signature(experiment_id, runner)
        _REGISTRY[experiment_id] = WorkloadSpec(
            workload_id=experiment_id, description=description,
            runner=runner,
            params=dict(params) if params is not None else None,
            tags=frozenset(tags))
        return runner

    return wrap


def available() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def all_specs() -> List[WorkloadSpec]:
    """Every registered :class:`WorkloadSpec`, sorted by id."""
    return [_REGISTRY[experiment_id] for experiment_id in available()]


def get_spec(experiment_id: str) -> WorkloadSpec:
    """The :class:`WorkloadSpec` registered under *experiment_id*."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available())}") from None


def describe(experiment_id: str) -> str:
    return get_spec(experiment_id).description


def run(experiment_id: str, *, seed: Optional[int] = None,
        params: Optional[Dict[str, object]] = None,
        obs: Optional[Observability] = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"F1"``, ``"E5"``, ``"E12a"``).

    ``seed`` and ``params`` thread into the runner after validating
    against the workload's declared schema; ``obs`` activates the
    observability layer for the duration of the run (the runner's
    scheduler, protocols, and forwarding engine bind to it at
    construction).  The result is stamped with the run's metrics
    snapshot and trace path.
    """
    spec = get_spec(experiment_id)
    if obs is None:
        result = spec.call(seed=seed, params=params)
    else:
        with observing(obs):
            if obs.enabled:
                obs.event("experiment.start", experiment=experiment_id,
                          seed=seed, params=json_safe(params or {}))
            # The run's root span: every epoch/convergence/forwarding
            # span the runner produces lands in this one trace tree.
            with obs.span("experiment", experiment=experiment_id,
                          seed=seed) as span:
                result = spec.call(seed=seed, params=params)
                span.end()
            if obs.enabled:
                obs.event("experiment.end", experiment=experiment_id)
        if obs.enabled:
            result.metrics = obs.metrics_summary()
            result.trace_path = obs.trace_path
    if seed is not None and result.seed is None:
        result.seed = seed
    if params and not result.params:
        result.params = dict(params)
    return result


@dataclass
class RunOutcome:
    """One :func:`run_many` entry: the result, or the isolated failure.

    Exactly one of ``result``/``error`` is set.  ``error`` is the
    deterministic ``"TypeName: message"`` rendering of the exception, so
    cross-run reports built from outcomes stay byte-comparable.
    """

    experiment_id: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        return {"experiment_id": self.experiment_id,
                "ok": self.ok,
                "result": self.result.to_dict() if self.result else None,
                "error": self.error}


def format_error(exc: BaseException) -> str:
    """The deterministic error rendering shared by run_many and fleet."""
    return f"{type(exc).__name__}: {exc}"


def run_many(experiment_ids: Iterable[str], *, seed: Optional[int] = None,
             params: Optional[Dict[str, object]] = None,
             obs: Optional[Observability] = None) -> List[RunOutcome]:
    """Run several experiments, isolating per-id failures.

    One crashing experiment no longer aborts the batch: its
    :class:`RunOutcome` carries the error string and the remaining ids
    still run.  The fleet merge step relies on the same contract.
    """
    outcomes: List[RunOutcome] = []
    for experiment_id in experiment_ids:
        try:
            result = run(experiment_id, seed=seed, params=params, obs=obs)
        except ReproError as exc:
            outcomes.append(RunOutcome(experiment_id=experiment_id,
                                       error=format_error(exc)))
        else:
            outcomes.append(RunOutcome(experiment_id=experiment_id,
                                       result=result))
    return outcomes
