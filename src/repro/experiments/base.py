"""The experiment registry, result type, and run API.

Every reproduced figure and claim is a callable registered here, so the
full evaluation is available programmatically::

    from repro.experiments import available, run

    for experiment_id in available():
        result = run(experiment_id)
        print(result.table())

and from the shell (``python -m repro experiment F1``).  The benchmark
suite (`benchmarks/`) wraps the same callables with pytest-benchmark
timing and shape assertions.

Runners come in two signatures:

* **new-style** — accepts ``seed`` and/or ``params`` keywords (or
  ``**kwargs``); :func:`run` threads the caller's values through.
* **zero-arg** (deprecated) — takes nothing.  Still runs, but passing
  ``seed``/``params`` to one raises a :class:`DeprecationWarning` and
  the values are dropped.

:func:`run` also drives the observability layer: pass an
:class:`~repro.obs.Observability` and the runner executes under
:func:`~repro.obs.observing`, so every scheduler/IGP/BGP/forwarding
object the experiment constructs binds to it.  The returned
:class:`ExperimentResult` then carries ``metrics`` (the registry
snapshot) and ``trace_path``.
"""

from __future__ import annotations

import inspect
import json
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.net.errors import ReproError
from repro.obs import Observability, observing
from repro.obs.serialize import json_safe

#: Keywords :func:`run` knows how to thread into a runner.
_THREADABLE = ("seed", "params")


@dataclass
class ExperimentResult:
    """One experiment's regenerated table plus its raw data.

    ``metrics`` and ``trace_path`` are populated by :func:`run` when the
    experiment executes under an enabled
    :class:`~repro.obs.Observability`; ``seed`` and ``params`` echo what
    the runner was invoked with (``None``/empty for zero-arg runners).
    """

    experiment_id: str
    title: str
    header: str
    rows: List[str]
    #: Structured per-row data, for assertions and further analysis.
    data: object
    footer: str = ""
    seed: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    #: Metrics-registry snapshot from the run's Observability (if any).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Where the structured JSONL trace was written (if tracing was on).
    trace_path: Optional[str] = None

    def table(self) -> str:
        lines = [f"== {self.title} ==", self.header, "-" * len(self.header)]
        lines.extend(self.rows)
        if self.footer:
            lines.append(self.footer)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (shared serialization contract)."""
        return {"experiment_id": self.experiment_id, "title": self.title,
                "header": self.header, "rows": list(self.rows),
                "data": json_safe(self.data), "footer": self.footer,
                "seed": self.seed, "params": json_safe(self.params),
                "metrics": json_safe(self.metrics),
                "trace_path": self.trace_path}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry entry: id, one-line description, runner, accepted kwargs."""

    experiment_id: str
    description: str
    runner: Callable[..., ExperimentResult]
    #: Which of (seed, params) the runner's signature accepts.
    accepts: FrozenSet[str] = frozenset()

    def call(self, seed: Optional[int] = None,
             params: Optional[Dict[str, object]] = None) -> ExperimentResult:
        """Invoke the runner, threading whatever kwargs it accepts.

        Passing ``seed``/``params`` to a zero-arg (deprecated-style)
        runner warns and drops them rather than failing, so callers can
        treat the whole registry uniformly.
        """
        kwargs: Dict[str, object] = {}
        dropped: List[str] = []
        for name, value in (("seed", seed), ("params", params)):
            if value is None:
                continue
            if name in self.accepts:
                kwargs[name] = value
            else:
                dropped.append(name)
        if dropped:
            warnings.warn(
                f"experiment {self.experiment_id!r} has a zero-arg runner; "
                f"ignoring {', '.join(dropped)} — add seed=/params= keywords "
                "to the runner (zero-arg runners are deprecated)",
                DeprecationWarning, stacklevel=3)
        return self.runner(**kwargs)


_REGISTRY: Dict[str, ExperimentInfo] = {}


def _threadable_kwargs(
        runner: Callable[..., ExperimentResult]) -> FrozenSet[str]:
    """Which of ``seed``/``params`` can be passed to *runner* by keyword."""
    try:
        signature = inspect.signature(runner)
    except (TypeError, ValueError):  # builtins / odd callables
        return frozenset()
    accepts = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return frozenset(_THREADABLE)
        if parameter.name in _THREADABLE and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY):
            accepts.add(parameter.name)
    return frozenset(accepts)


_Runner = Callable[..., ExperimentResult]


def register(experiment_id: str,
             description: str) -> Callable[[_Runner], _Runner]:
    """Decorator registering an experiment runner under *experiment_id*."""

    def wrap(runner: _Runner) -> _Runner:
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentInfo(
            experiment_id=experiment_id, description=description,
            runner=runner, accepts=_threadable_kwargs(runner))
        return runner

    return wrap


def available() -> List[str]:
    """All registered experiment ids, in registration-friendly order."""
    return sorted(_REGISTRY)


def describe(experiment_id: str) -> str:
    return _info(experiment_id).description


def run(experiment_id: str, *, seed: Optional[int] = None,
        params: Optional[Dict[str, object]] = None,
        obs: Optional[Observability] = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"F1"``, ``"E5"``, ``"E12a"``).

    ``seed`` and ``params`` thread into new-style runners; ``obs``
    activates the observability layer for the duration of the run (the
    runner's scheduler, protocols, and forwarding engine bind to it at
    construction).  The result is stamped with the run's metrics
    snapshot and trace path.
    """
    info = _info(experiment_id)
    if obs is None:
        result = info.call(seed=seed, params=params)
    else:
        with observing(obs):
            if obs.enabled:
                obs.event("experiment.start", experiment=experiment_id,
                          seed=seed, params=json_safe(params or {}))
            # The run's root span: every epoch/convergence/forwarding
            # span the runner produces lands in this one trace tree.
            with obs.span("experiment", experiment=experiment_id,
                          seed=seed) as span:
                result = info.call(seed=seed, params=params)
                span.end()
            if obs.enabled:
                obs.event("experiment.end", experiment=experiment_id)
        if obs.enabled:
            result.metrics = obs.metrics_summary()
            result.trace_path = obs.trace_path
    if seed is not None and result.seed is None:
        result.seed = seed
    if params and not result.params:
        result.params = dict(params)
    return result


def run_many(experiment_ids: Iterable[str], *, seed: Optional[int] = None,
             params: Optional[Dict[str, object]] = None,
             obs: Optional[Observability] = None) -> List[ExperimentResult]:
    return [run(experiment_id, seed=seed, params=params, obs=obs)
            for experiment_id in experiment_ids]


def _info(experiment_id: str) -> ExperimentInfo:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available())}") from None
