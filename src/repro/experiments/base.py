"""The experiment registry and result type.

Every reproduced figure and claim is a callable registered here, so the
full evaluation is available programmatically::

    from repro.experiments import available, run

    for experiment_id in available():
        result = run(experiment_id)
        print(result.table())

and from the shell (``python -m repro experiment F1``).  The benchmark
suite (`benchmarks/`) wraps the same callables with pytest-benchmark
timing and shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

from repro.net.errors import ReproError


@dataclass
class ExperimentResult:
    """One experiment's regenerated table plus its raw data."""

    experiment_id: str
    title: str
    header: str
    rows: List[str]
    #: Structured per-row data, for assertions and further analysis.
    data: object
    footer: str = ""

    def table(self) -> str:
        lines = [f"== {self.title} ==", self.header, "-" * len(self.header)]
        lines.extend(self.rows)
        if self.footer:
            lines.append(self.footer)
        return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry entry: id, one-line description, runner."""

    experiment_id: str
    description: str
    runner: Callable[[], ExperimentResult]


_REGISTRY: Dict[str, ExperimentInfo] = {}


def register(experiment_id: str, description: str):
    """Decorator registering an experiment runner under *experiment_id*."""

    def wrap(runner: Callable[[], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentInfo(
            experiment_id=experiment_id, description=description,
            runner=runner)
        return runner

    return wrap


def available() -> List[str]:
    """All registered experiment ids, in registration-friendly order."""
    return sorted(_REGISTRY)


def describe(experiment_id: str) -> str:
    return _info(experiment_id).description


def run(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"F1"``, ``"E5"``, ``"E12a"``)."""
    return _info(experiment_id).runner()


def run_many(experiment_ids: Iterable[str]) -> List[ExperimentResult]:
    return [run(experiment_id) for experiment_id in experiment_ids]


def _info(experiment_id: str) -> ExperimentInfo:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available())}") from None
