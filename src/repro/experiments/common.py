"""Shared topology builders for the experiment suite."""

from __future__ import annotations

from repro.core.orchestrator import Orchestrator
from repro.topogen import InternetSpec, generate_internet


def converged_internet(spec: InternetSpec):
    """Generate a tiered internetwork and converge its control planes."""
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network, seed=spec.seed)
    orch.converge()
    return generated, orch


def experiment_spec(seed: int = 0, **overrides) -> InternetSpec:
    """The default mid-size internetwork used by the sweep experiments."""
    params = dict(n_tier1=3, n_tier2=6, n_stub=12, routers_tier1=5,
                  routers_tier2=4, routers_stub=2, hosts_per_stub=2,
                  seed=seed)
    params.update(overrides)
    return InternetSpec(**params)
