"""Experiments F1-F4: the paper's figure walk-throughs, regenerated.

The figure topologies are fixed by the paper (no randomness), so the
uniform ``seed`` keyword does not perturb them; it is accepted, stamped
into the result, and exists so the registry presents one runner shape
to the CLI, bench harness, and fleet engine.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.metrics import vn_coverage, vn_tail_length
from repro.core.orchestrator import Orchestrator
from repro.anycast import DefaultRootedAnycast, GlobalAnycast
from repro.topogen import figure1, figure2, figure3, figure4
from repro.vnbone import EgressPolicy, VnDeployment
from repro.experiments.base import ExperimentResult, register


@register("F1", "Figure 1: seamless spread of deployment via anycast",
          params={}, tags=("figure",))
def run_figure1(seed: int = 0,
                params: Optional[Dict[str, object]] = None) -> ExperimentResult:
    fig = figure1()
    orch = Orchestrator(fig.network)
    orch.converge()
    scheme = GlobalAnycast(orch, "ipv8")
    address_at_start = scheme.address
    data = []
    for stage, name in enumerate(["X", "Y", "Z"], start=1):
        for router in sorted(fig.network.domains[fig.asn(name)].routers):
            scheme.add_member(router)
        orch.reconverge()
        trace = scheme.probe("client_c")
        member = trace.delivered_to
        data.append({
            "stage": stage,
            "adopter": name,
            "redirected_to_domain": fig.network.domains[
                fig.network.node(member).domain_id].name,
            "cost": scheme.path_cost(trace),
            "client_reconfigured": scheme.address != address_at_start,
        })
    header = (f"{'stage':>5} {'adopter':>8} {'C redirected to':>16} "
              f"{'path cost':>10} {'client reconfig?':>17}")
    rows = [f"{r['stage']:>5} {r['adopter']:>8} "
            f"{r['redirected_to_domain']:>16} {r['cost']:>10.1f} "
            f"{str(r['client_reconfigured']):>17}" for r in data]
    return ExperimentResult(
        experiment_id="F1",
        title="Figure 1: seamless spread of IPv8 deployment",
        header=header, rows=rows, data=data,
        footer="paper: X -> Y -> Z, non-increasing cost, no reconfiguration",
        seed=seed, params=dict(params or {}))


@register("F2", "Figure 2: default-ISP anycast, before/after Q-Y peering",
          params={}, tags=("figure",))
def run_figure2(seed: int = 0,
                params: Optional[Dict[str, object]] = None) -> ExperimentResult:
    fig = figure2()
    orch = Orchestrator(fig.network)
    orch.converge()
    rib_before = orch.bgp.total_rib_size()
    scheme = DefaultRootedAnycast(orch, "ipvN", default_asn=fig.asn("D"))
    scheme.add_member("d1")
    scheme.add_member("q1")
    orch.reconverge()
    hosts = ["host_x", "host_y", "host_z"]

    def panel():
        return {h: fig.network.domains[
            fig.network.node(scheme.resolve(h)).domain_id].name
            for h in hosts}

    before = panel()
    share_before = scheme.default_share(hosts)
    rib_after_join = orch.bgp.total_rib_size()
    scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("Y"))
    orch.reconverge()
    after = panel()
    share_after = scheme.default_share(hosts)
    data = {"before": before, "after": after,
            "bgp_added_by_joining": rib_after_join - rib_before,
            "share_before": share_before, "share_after": share_after}
    header = f"{'source':>8} {'before peering':>15} {'after peering':>14}"
    rows = [f"{host:>8} {data['before'][host]:>15} {data['after'][host]:>14}"
            for host in sorted(data["before"])]
    return ExperimentResult(
        experiment_id="F2",
        title="Figure 2: default-ISP anycast, before/after Q-Y peering",
        header=header, rows=rows, data=data,
        footer=(f"routes added to global BGP by adoption: "
                f"{data['bgp_added_by_joining']}; default-ISP traffic "
                f"share {data['share_before']:.0%} -> "
                f"{data['share_after']:.0%} "
                "(paper: X,Y->D and Z->Q; then Y->Q)"),
        seed=seed, params=dict(params or {}))


FIG3_POLICIES = [EgressPolicy.EXIT_IMMEDIATELY, EgressPolicy.BGP_INFORMED,
                 EgressPolicy.HOST_ADVERTISED]


@register("F3", "Figure 3: egress selection with BGPv(N-1) import",
          params={}, tags=("figure",))
def run_figure3(seed: int = 0,
                params: Optional[Dict[str, object]] = None) -> ExperimentResult:
    data = []
    for policy in FIG3_POLICIES:
        fig = figure3()
        orch = Orchestrator(fig.network)
        orch.converge()
        scheme = DefaultRootedAnycast(orch, "ipvN", default_asn=fig.asn("M"))
        deployment = VnDeployment(orch, scheme, version=8,
                                  egress_policy=policy)
        deployment.deploy(fig.asn("M"))
        deployment.deploy(fig.asn("O"))
        deployment.rebuild()
        if policy is EgressPolicy.HOST_ADVERTISED:
            deployment.register_host("client_c")
            deployment.rebuild()
        trace = deployment.send("host_m", "client_c")
        exit_domain = (fig.network.domains[
            fig.network.node(trace.egress_router).domain_id].name
            if trace.egress_router else "-")
        data.append({
            "policy": policy.value,
            "delivered": trace.delivered,
            "egress_domain": exit_domain,
            "tail": vn_tail_length(fig.network, trace),
            "coverage": vn_coverage(trace),
        })
    header = (f"{'egress policy':>17} {'delivered':>10} {'exit domain':>12} "
              f"{'v(N-1) tail':>12} {'vN coverage':>12}")
    rows = []
    for r in data:
        coverage = f"{r['coverage']:.0%}" if r["coverage"] is not None else "-"
        rows.append(f"{r['policy']:>17} {str(r['delivered']):>10} "
                    f"{r['egress_domain']:>12} {r['tail']!s:>12} "
                    f"{coverage:>12}")
    return ExperimentResult(
        experiment_id="F3",
        title="Figure 3: egress selection for a non-IPvN destination",
        header=header, rows=rows, data=data,
        footer="paper: BGPv(N-1) import moves the exit from M to O, "
               "shortening the legacy tail",
        seed=seed, params=dict(params or {}))


def _figure4_deployment(policy: EgressPolicy, threshold: int):
    fig = figure4()
    orch = Orchestrator(fig.network)
    orch.converge()
    scheme = DefaultRootedAnycast(orch, "ipvN", default_asn=fig.asn("A"))
    deployment = VnDeployment(orch, scheme, version=8, egress_policy=policy,
                              proxy_threshold=threshold)
    for name in ("A", "B", "C"):
        deployment.deploy(fig.asn(name))
    deployment.rebuild()
    return fig, deployment


@register("F4", "Figure 4: advertising-by-proxy",
          params={}, tags=("figure",))
def run_figure4(seed: int = 0,
                params: Optional[Dict[str, object]] = None) -> ExperimentResult:
    data = []
    configs = [("no proxy", EgressPolicy.EXIT_IMMEDIATELY, 0),
               ("proxy, thr=1", EgressPolicy.PROXY, 1),
               ("proxy, thr=2", EgressPolicy.PROXY, 2)]
    for label, policy, threshold in configs:
        fig, deployment = _figure4_deployment(policy, threshold)
        if policy is EgressPolicy.PROXY:
            proxies = deployment.proxy.proxies_for_domain(
                fig.asn("Z"), deployment.members(),
                deployment.adopting_asns())
            proxy_domains = sorted({fig.network.domains[
                fig.network.node(p).domain_id].name for p in proxies})
        else:
            proxy_domains = []
        trace = deployment.send("host_a", "host_z")
        names = [fig.network.domains[asn].name
                 for asn in trace.domain_path()]
        exit_domain = fig.network.domains[
            fig.network.node(trace.egress_router).domain_id].name
        data.append({
            "config": label,
            "proxies": "+".join(proxy_domains) if proxy_domains else "-",
            "as_path": "->".join(names),
            "exit": exit_domain,
            "tail": vn_tail_length(fig.network, trace),
            "delivered": trace.delivered,
        })
    header = (f"{'config':>13} {'proxies of Z':>13} {'AS-level path':>18} "
              f"{'exit':>5} {'tail':>5}")
    rows = [f"{r['config']:>13} {r['proxies']:>13} {r['as_path']:>18} "
            f"{r['exit']:>5} {r['tail']:>5}" for r in data]
    return ExperimentResult(
        experiment_id="F4",
        title="Figure 4: path A -> Z with and without advertising-by-proxy",
        header=header, rows=rows, data=data,
        footer="paper: proxying shifts the path from A->M->N->Z onto the "
               "vN-Bone via B/C",
        seed=seed, params=dict(params or {}))
