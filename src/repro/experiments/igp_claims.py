"""Experiment E11: cost of the IGP anycast extensions."""

from __future__ import annotations

import random

from typing import Dict, Optional

from repro.net import Domain, EventScheduler, Network, Prefix, ipv4
from repro.routing.distancevector import DistanceVectorRouting
from repro.routing.linkstate import LinkStateRouting
from repro.topogen.intra import random_domain
from repro.experiments.base import ExperimentResult, register

N_ROUTERS = 24
GROUP_COUNTS = [0, 1, 4]


def _build_domain(seed):
    net = Network()
    net.add_domain(Domain(asn=1, name="one",
                          prefix=Prefix.parse("10.1.0.0/16")))
    random_domain(net, 1, N_ROUTERS, extra_edges=8, rng=random.Random(seed))
    return net


def _run_igp(igp_cls, seed):
    rows = []
    for groups in GROUP_COUNTS:
        net = _build_domain(seed)
        sched = EventScheduler()
        igp = igp_cls(net, net.domains[1], sched)
        routers = sorted(net.domains[1].routers)
        for index in range(groups):
            address = ipv4(f"240.0.{index}.1")
            for member in routers[index::6][:3]:
                net.node(member).add_local_ipv4(address)
                igp.advertise_anycast(member, address)
        igp.converge()
        cold = igp.stats.sent
        incremental = 0
        if groups:
            address = ipv4("240.0.0.1")
            joiner = routers[1]
            before = igp.stats.sent
            net.node(joiner).add_local_ipv4(address)
            igp.advertise_anycast(joiner, address)
            sched.run_until_idle()
            igp.install_routes()
            incremental = igp.stats.sent - before
        rows.append({"groups": groups, "cold": cold,
                     "incremental": incremental,
                     "discovery": igp_cls.supports_member_discovery})
    return rows


@register("E11", "IGP message cost of the anycast extensions",
          params={}, tags=("claim", "igp"))
def run_igp_cost(seed: int = 41,
                 params: Optional[Dict[str, object]] = None
                 ) -> ExperimentResult:
    data = {"linkstate": _run_igp(LinkStateRouting, seed),
            "distancevector": _run_igp(DistanceVectorRouting, seed)}
    ls, dv = data["linkstate"], data["distancevector"]
    header = (f"{'groups':>6} | {'LS cold':>8} {'LS incr':>8} "
              f"{'LS disc':>8} | {'DV cold':>8} {'DV incr':>8} "
              f"{'DV disc':>8}")
    rows = [f"{l['groups']:>6} | {l['cold']:>8} {l['incremental']:>8} "
            f"{str(l['discovery']):>8} | {d['cold']:>8} "
            f"{d['incremental']:>8} {str(d['discovery']):>8}"
            for l, d in zip(ls, dv)]
    return ExperimentResult(
        experiment_id="E11",
        title=f"E11: IGP message cost of the anycast extension "
              f"({N_ROUTERS}-router domain)",
        header=header, rows=rows, data=data,
        footer="paper: the extension is a small modification; only "
               "link-state lets IPvN routers discover one another",
        seed=seed, params=dict(params or {}))
