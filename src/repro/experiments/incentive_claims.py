"""Experiments E8 and E14: the universal-access virtuous cycle."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.closed_loop import CoupledEvolution
from repro.core.evolution import EvolvableInternet
from repro.core.incentives import AdoptionModel, compare_access_models
from repro.topogen import InternetSpec
from repro.experiments.base import ExperimentResult, Param, register

E8_SEEDS = list(range(10))
E8_ROUNDS = 80
E14_ROUNDS = 40


@register("E8", "adoption dynamics: universal access vs walled garden",
          params={"n_isps": Param("int", 30, "ISPs in the adoption model"),
                  "rounds": Param("int", E8_ROUNDS, "simulated rounds")},
          tags=("claim", "economics"))
def run_adoption_dynamics(seed: int = 0,
                          params: Optional[Dict[str, object]] = None
                          ) -> ExperimentResult:
    params = dict(params or {})
    n_isps = int(params.get("n_isps", 30))
    rounds = int(params.get("rounds", E8_ROUNDS))
    data = []
    for offset in E8_SEEDS:
        result = compare_access_models(n_isps=n_isps, rounds=rounds,
                                       seed=seed + offset)
        ua = result["universal_access"]
        wg = result["walled_garden"]
        data.append({
            "seed": seed + offset,
            "ua_share": ua.final_share(),
            "ua_demand": ua.final_demand(),
            "ua_half": ua.rounds_to_share(0.5),
            "wg_share": wg.final_share(),
            "wg_demand": wg.final_demand(),
            "wg_half": wg.rounds_to_share(0.5),
        })
    header = (f"{'seed':>4} | {'UA share':>8} {'UA demand':>9} "
              f"{'UA t(50%)':>9} | {'WG share':>8} {'WG demand':>9} "
              f"{'WG t(50%)':>9}")
    rows = [f"{r['seed']:>4} | {r['ua_share']:>8.0%} {r['ua_demand']:>9.0%} "
            f"{r['ua_half'] if r['ua_half'] is not None else '-':>9} | "
            f"{r['wg_share']:>8.0%} {r['wg_demand']:>9.0%} "
            f"{r['wg_half'] if r['wg_half'] is not None else '-':>9}"
            for r in data]
    return ExperimentResult(
        experiment_id="E8",
        title=f"E8: adoption after {rounds} rounds, universal access vs "
              "walled garden",
        header=header, rows=rows, data=data,
        footer="paper: UA -> virtuous cycle to saturation; no UA -> "
               "multicast-style chicken-and-egg stall",
        seed=seed, params=params)


def _coupled(universal_access: bool, seed: int) -> CoupledEvolution:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=4, n_stub=8, hosts_per_stub=1,
                     seed=seed))
    # Slower demand growth and higher deployment cost than the model's
    # defaults, so the cascade unfolds over rounds instead of at once.
    model = AdoptionModel(n_isps=14, universal_access=universal_access,
                          seed=seed, seeding_prob=0.02, cost_mean=2.5,
                          demand_rate=0.12)
    return CoupledEvolution(internet, model, sample_pairs=20,
                            measure_every=2, seed=seed)


@register("E14", "closed-loop virtuous cycle on a live network",
          params={"rounds": Param("int", E14_ROUNDS, "simulated rounds")},
          tags=("claim", "economics"))
def run_closed_loop(seed: int = 81,
                    params: Optional[Dict[str, object]] = None
                    ) -> ExperimentResult:
    params = dict(params or {})
    rounds = int(params.get("rounds", E14_ROUNDS))
    ua = _coupled(universal_access=True, seed=seed).run(rounds)
    wg = _coupled(universal_access=False, seed=seed).run(rounds)
    rows = []
    for entry in ua.rounds:
        if entry.delivery_ratio is None:
            continue
        rows.append(
            f"{entry.round_index:>5} {len(entry.deployed_asns):>9} "
            f"{entry.deployed_share:>12.0%} {entry.demand:>7.0%} "
            f"{entry.delivery_ratio:>9.0%} "
            f"{entry.mean_stretch:>8.2f}")
    header = (f"{'round':>5} {'adopters':>9} {'model share':>12} "
              f"{'demand':>7} {'delivered':>9} {'stretch':>8}")
    return ExperimentResult(
        experiment_id="E14",
        title="E14: closed-loop virtuous cycle (universal access)",
        header=header, rows=rows, data={"ua": ua, "wg": wg},
        footer=f"walled-garden twin after {rounds} rounds: "
               f"{len(wg.final().deployed_asns)} adopters vs "
               f"{len(ua.final().deployed_asns)} with UA",
        seed=seed, params=params)
