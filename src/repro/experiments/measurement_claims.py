"""Experiment: RTT-probed anycast catchment under member failure.

The paper's anycast access story promises proximity ("the nearest
IPvN router serves you") and self-managing failover.  This workload
measures both the way a *user* would: a deterministic RTT probe plan
(`repro.measure`) runs across fault epochs that crash and recover an
anycast member, and the resulting probe series is folded into a
``repro.catchment/v1`` document — per-epoch vantage→replica catchment
maps, fault-attributed catchment shifts vs. unattributed flaps, RTT
inflation against the delay oracle's best-replica ground truth, and
probe-observed convergence time.

The runner works with or without an enabled observability handle: the
catchment document is built from the engine's in-memory samples plus
the injector's fault records, so fleet sweeps get deterministic
catchment artifacts without paying for tracing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analyze.catchment import build_catchment, validate_catchment_dict
from repro.core.evolution import EvolvableInternet
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.measure import ProbeEngine, ProbePlan, ProbeTarget
from repro.net.packet import ipv4_packet
from repro.obs import get_obs
from repro.topogen import InternetSpec
from repro.experiments.base import ExperimentResult, Param, register
from repro.experiments.resilience_claims import _safe_members


def _serving_victim(internet, deployment, vantages, fallback):
    """The member serving the most probe vantages at baseline.

    Crashing it guarantees the fault plan actually moves catchments
    (the shift-attribution fixture); access routers are excluded so no
    vantage is physically stranded.  Ties break to the smallest member
    id, so the choice is deterministic.
    """
    network = internet.network
    counts: Dict[str, int] = {}
    for vantage in vantages:
        node = network.node(vantage)
        trace = internet.orchestrator.engine.forward(
            ipv4_packet(node.ipv4, deployment.scheme.address), vantage)
        if trace.delivered and trace.delivered_to is not None:
            counts[trace.delivered_to] = counts.get(trace.delivered_to, 0) + 1
    access = {network.node(h).access_router for h in internet.hosts()}
    for member, _ in sorted(counts.items(),
                            key=lambda item: (-item[1], item[0])):
        if member not in access:
            return member
    return fallback


@register("rtt_catchment",
          "RTT-probed anycast catchment maps across fault epochs",
          params={"n_tier2": Param("int", 4, "tier-2 domains"),
                  "n_stub": Param("int", 6, "stub domains"),
                  "vantages": Param("int", 4, "probing hosts"),
                  "rounds": Param("int", 24, "probe rounds"),
                  "interval": Param("float", 5.0, "sim-time between rounds"),
                  "crash_at": Param("float", 10.0, "victim crash time"),
                  "recover_at": Param("float", 80.0, "victim recovery time"),
                  "serving_victim": Param("bool", False,
                                          "crash the member serving the "
                                          "most vantages (guarantees "
                                          "catchment shifts)")},
          tags=("claim", "measurement", "faults"))
def run_rtt_catchment(seed: int = 19,
                      params: Optional[Dict[str, object]] = None
                      ) -> ExperimentResult:
    """Probe an anycast deployment through a crash/recover fault plan.

    Expected shape: every catchment change is a *shift* (attributed to
    a fault boundary) and the flap count is zero — anycast catchments
    only move when the fault plan moves them.
    """
    params = dict(params or {})
    spec = InternetSpec(n_tier1=2, n_tier2=int(params.get("n_tier2", 4)),
                        n_stub=int(params.get("n_stub", 6)),
                        hosts_per_stub=1, seed=seed)
    internet = EvolvableInternet.generate(spec, seed=seed)
    obs = get_obs()
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    for asn in internet.stub_asns()[:2]:
        deployment.deploy(asn)
    deployment.rebuild()

    hosts = internet.hosts()
    n_vantages = max(1, int(params.get("vantages", 4)))
    plan = ProbePlan(
        vantages=tuple(hosts[:n_vantages]),
        targets=(ProbeTarget(name="anycast", dst=deployment.scheme.address,
                             kind="anycast"),),
        interval=float(params.get("interval", 5.0)),
        rounds=int(params.get("rounds", 24)))
    engine = ProbeEngine(internet.orchestrator.scheduler,
                         internet.orchestrator.engine, internet.network,
                         plan, replicas=deployment.live_members)

    members = sorted(deployment.members())
    safe = sorted(_safe_members(internet, deployment))
    victim = safe[0] if safe else members[0]
    if bool(params.get("serving_victim", False)):
        victim = _serving_victim(internet, deployment, plan.vantages, victim)
    fault_plan = (FaultPlan()
                  .crash_node(victim,
                              at=float(params.get("crash_at", 10.0)))
                  .recover_node(victim,
                                at=float(params.get("recover_at", 80.0))))
    injector = FaultInjector(internet.orchestrator, fault_plan,
                             deployments=[deployment])

    engine.arm()
    injector.play()  # the probes are the workload
    engine.finish()

    catchment = build_catchment(
        [sample.to_dict() for sample in engine.samples],
        [{"t": record.time, "description": record.description}
         for record in injector.records],
        context={"experiment": "rtt_catchment", "seed": seed,
                 "victim": victim})
    problems = validate_catchment_dict(catchment)
    if problems:
        raise AssertionError(f"invalid catchment document: {problems}")
    shifts = catchment["shifts"]
    flaps = catchment["flaps"]
    assert isinstance(shifts, dict) and isinstance(flaps, dict)  # repro: allow[D5]
    if obs.enabled:
        obs.event("catchment.summary", probes=len(engine.samples),
                  shifts=shifts["count"], flaps=flaps["count"])

    epochs = catchment["epochs"]
    assert isinstance(epochs, list)  # repro: allow[D5]
    header = f"{'epoch':>6} {'probes':>7} {'delivered':>10} {'shifts':>7} {'converged':>10}"
    rows = []
    for entry in epochs:
        convergence = entry["convergence_time"]
        rows.append(f"{entry['epoch']:>6} {entry['probes']:>7} "
                    f"{entry['delivered']:>10} {len(entry['shifts']):>7} "
                    f"{('-' if convergence is None else format(convergence, 'g')):>10}")
    return ExperimentResult(
        experiment_id="rtt_catchment",
        title="Anycast catchment under member crash and recovery",
        header=header, rows=rows,
        data={"victim": victim,
              "catchment": catchment,
              "series": engine.series()},
        footer=(f"{len(engine.samples)} probes, "
                f"{flaps['count']} flaps (victim {victim})"),
        seed=seed, params=params)
