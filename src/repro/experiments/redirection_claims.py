"""Experiment E7: application-level redirection baselines vs anycast."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.evolution import EvolvableInternet
from repro.net.errors import RedirectionError
from repro.redirection import (BrokerLookupService, IspLookupService,
                               app_level_send)
from repro.topogen import InternetSpec
from repro.experiments.base import ExperimentResult, register


def _score(deployment, clients, server, service=None):
    served = delivered = 0
    for client in clients:
        try:
            if service is None:
                trace = deployment.send(client, server)
            else:
                trace = app_level_send(deployment, service, client, server)
        except RedirectionError:
            continue
        served += 1
        delivered += trace.delivered
    return served / len(clients), delivered / len(clients)


@register("E7", "redirection mechanisms under partial participation/churn",
          params={}, tags=("claim", "redirection"))
def run_redirection_comparison(seed: int = 17,
                               params: Optional[Dict[str, object]] = None
                               ) -> ExperimentResult:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=5, n_stub=10, hosts_per_stub=2,
                     seed=seed))
    ipv8 = internet.new_deployment(version=8, scheme="default")
    ipv8.deploy(ipv8.scheme.default_asn)
    extra = internet.stub_asns()[0]
    ipv8.deploy(extra)
    ipv8.rebuild()
    server = internet.hosts()[0]
    clients = [h for h in internet.hosts() if h != server]

    isp = IspLookupService(ipv8)
    broker = BrokerLookupService(ipv8)
    partial_broker = BrokerLookupService(
        ipv8, reporting_asns={ipv8.scheme.default_asn})
    for service in (isp, broker, partial_broker):
        service.sync()

    data = []

    def add(label, service, contracts):
        served, delivered = _score(ipv8, clients, server, service)
        data.append({"mechanism": label, "served": served,
                     "delivered": delivered, "contracts": contracts})

    add("anycast (paper)", None, False)
    add("ISP lookup", isp, False)
    add("broker, full reports", broker, True)
    add("broker, partial reports", partial_broker, True)

    # Deployment churn: the extra adopter rolls back, two others adopt.
    newcomers = [asn for asn in internet.stub_asns()[1:3]]
    ipv8.undeploy(extra)
    for asn in newcomers:
        ipv8.deploy(asn)
    ipv8.rebuild()
    isp.sync()  # ISPs track their own deployment state natively
    add("anycast, after churn", None, False)
    add("ISP lookup, after churn", isp, False)
    add("broker, stale snapshot", broker, True)
    broker.sync()
    add("broker, after re-sync", broker, True)

    header = (f"{'mechanism':>26} {'served':>7} {'delivered':>10} "
              f"{'new contracts?':>15}")
    rows = [f"{r['mechanism']:>26} {r['served']:>7.0%} "
            f"{r['delivered']:>10.0%} {str(r['contracts']):>15}"
            for r in data]
    return ExperimentResult(
        experiment_id="E7",
        title="E7: redirection mechanisms under partial participation "
              "and churn",
        header=header, rows=rows, data=data,
        footer="paper: only network-level anycast keeps universal access "
               "within the existing market structure",
        seed=seed, params=dict(params or {}))
