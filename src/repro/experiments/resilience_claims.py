"""Experiment E17: availability of an IPvN deployment under failures.

The self-managing property the paper claims for anycast redirection
("the network, in a completely decentralized manner, 'self-manages'
redirection") implies resilience: when an IPvN router dies, routing
simply steers clients to the next member; when it returns, they steer
back.  This experiment injects a sequence of failure/repair events —
member routers, plain transit routers, and redundant links — and
measures IPvN delivery over a fixed host-pair sample after each event.

Expected shape: delivery stays 100% for every event that leaves the
underlying IPv4 network (and its valley-free route space) connected;
the dead member carries no anycast traffic while down; redirection
state returns to baseline after restoration.  The redirection *shift*
when a client's own target dies is exercised by
``tests/integration/test_failures.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.evolution import EvolvableInternet
from repro.core.metrics import measure_reachability
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import get_obs
from repro.topogen import InternetSpec
from repro.experiments.base import ExperimentResult, Param, register


def _build(seed):
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=5, n_stub=8, hosts_per_stub=1,
                     routers_tier1=5, seed=seed), seed=seed)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    for asn in internet.stub_asns()[:2]:
        deployment.deploy(asn)
    deployment.rebuild()
    return internet, deployment


def _probe_and_victim(internet, deployment):
    """The probe host plus a redundant member to fail.

    In tiered topologies anycast resolution lands on border members, so
    the redundant (internal) victim is generally *not* the probe's
    target; E17's claim is therefore about delivery staying total and
    the dead member handling no traffic, with redirection shift under
    member loss covered by the failure-injection integration tests.
    """
    safe = sorted(_safe_members(internet, deployment))
    if not safe:
        raise AssertionError("topology offers no redundant member to fail")
    return internet.hosts()[0], safe[0]


def _safe_members(internet, deployment):
    """Members whose failure is pure redundancy loss.

    Exclusions: host access routers (failing one physically strands a
    host), border routers (losing an inter-domain link can partition
    the *valley-free* route space even when the physical graph stays
    connected), and intra-domain cut vertices.
    """
    network = internet.network
    access_routers = {network.node(h).access_router
                      for h in internet.hosts()}
    safe = set()
    for member in sorted(deployment.members()):
        node = network.node(member)
        if member in access_routers or getattr(node, "is_border", False):
            continue
        siblings = sorted(network.domains[node.domain_id].routers
                          - {member})
        if len(siblings) < 2:
            continue
        failed = network.fail_router(member)
        connected = all(
            network.shortest_path(siblings[0], other,
                                  intra_domain_only=True) is not None
            for other in siblings[1:])
        for link in failed:
            link.restore()
        if connected:
            safe.add(member)
    return safe


def _redundant_tier1_link(internet):
    tier1 = internet.tier1_asns()[0]
    routers = sorted(internet.network.domains[tier1].routers)
    for link in internet.network.links.values():
        if link.a in routers and link.b in routers:
            link.fail()
            connected = internet.network.shortest_path(
                link.a, link.b, intra_domain_only=True) is not None
            link.restore()
            if connected:
                return link
    return None


@register("E17", "availability under router/link failure and repair",
          params={"sample": Param("int", 25, "host pairs per measurement")},
          tags=("claim", "resilience"))
def run_resilience(seed: int = 53,
                   params: Optional[Dict[str, object]] = None
                   ) -> ExperimentResult:
    params = dict(params or {})
    internet, deployment = _build(seed)
    pairs = internet.host_pairs(sample=int(params.get("sample", 25)), seed=5)
    probe_host, first_member = _probe_and_victim(internet, deployment)
    events = []

    def measure(label, victim_down=None):
        deployment.rebuild()
        report = measure_reachability(internet.network, deployment.send,
                                      pairs)
        ingresses = {deployment.send(a, b).ingress_router
                     for a, b in pairs[:12]}
        events.append({
            "event": label,
            "delivery": report.delivery_ratio,
            "stretch": report.mean_stretch,
            "redirect": deployment.scheme.resolve(probe_host),
            "victim_carried_traffic": (victim_down in ingresses
                                       if victim_down else None),
        })

    measure("baseline")
    internet.network.fail_router(first_member)
    measure(f"member {first_member} fails", victim_down=first_member)
    internet.network.restore_router(first_member)
    measure(f"member {first_member} restored")
    # A plain (non-member) transit router in a multihomed position.
    link = _redundant_tier1_link(internet)
    if link is not None:
        link.fail()
        measure(f"link {link.name} fails")
        link.restore()
        measure(f"link {link.name} restored")
    header = (f"{'event':>28} {'delivery':>9} {'stretch':>8} "
              f"{'probe redirected to':>20}")
    rows = [f"{e['event']:>28} {e['delivery']:>9.0%} "
            f"{e['stretch']:>8.2f} {e['redirect']:>20}" for e in events]
    return ExperimentResult(
        experiment_id="E17",
        title="E17: IPvN availability under failure and repair",
        header=header, rows=rows,
        data={"events": events, "first_member": first_member},
        footer="anycast self-management: delivery never dips; the dead "
               "member carries nothing; state returns on repair",
        seed=seed, params=params)


@register("anycast_failover",
          "fault-injected anycast failover: transient vs recovered delivery",
          params={"n_tier2": Param("int", 4, "tier-2 domains"),
                  "n_stub": Param("int", 6, "stub domains"),
                  "pairs": Param("int", 12, "host pairs per probe"),
                  "crash_at": Param("float", 10.0, "victim crash time"),
                  "recover_at": Param("float", 80.0, "victim recovery time"),
                  "sample_interval": Param("float", 10.0,
                                           "metric sampling interval")},
          tags=("claim", "resilience", "faults"))
def run_anycast_failover(seed: int = 11,
                         params: Optional[Dict[str, object]] = None
                         ) -> ExperimentResult:
    """Crash an anycast member mid-run and measure failover end to end.

    A new-style runner: ``seed`` drives topology generation and the
    host-pair sample; ``params`` may override ``n_tier2``, ``n_stub``,
    ``pairs`` (sample size), ``crash_at``, and ``recover_at``.  Built as
    the observability acceptance scenario — under an enabled
    :class:`~repro.obs.Observability` it exercises the scheduler, SPF,
    BGP, forwarding, vN-Bone rebuild, and fault-injection probes in one
    deterministic run.
    """
    params = dict(params or {})
    spec = InternetSpec(n_tier1=2, n_tier2=int(params.get("n_tier2", 4)),
                        n_stub=int(params.get("n_stub", 6)),
                        hosts_per_stub=1, seed=seed)
    internet = EvolvableInternet.generate(spec, seed=seed)
    obs = get_obs()
    if obs.enabled:
        # Turn gauges/counters into a convergence timeline: one
        # metric.sample event per sim-time tick, driven lazily by the
        # scheduler so the queue still drains to idle.
        interval = float(params.get("sample_interval", 10.0))
        internet.orchestrator.scheduler.attach_sampler(obs.sampler(interval))
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    for asn in internet.stub_asns()[:2]:
        deployment.deploy(asn)
    deployment.rebuild()
    pairs = internet.host_pairs(sample=int(params.get("pairs", 12)),
                                seed=seed)

    def workload():
        return measure_reachability(internet.network, deployment.send, pairs)

    # Prefer a victim whose loss is pure redundancy (not an access
    # router, border, or cut vertex) so the run measures anycast
    # failover, not topology damage.
    members = sorted(deployment.members())
    safe = sorted(_safe_members(internet, deployment))
    victim = safe[0] if safe else members[0]
    plan = (FaultPlan()
            .crash_node(victim, at=float(params.get("crash_at", 10.0)))
            .recover_node(victim, at=float(params.get("recover_at", 80.0))))
    injector = FaultInjector(internet.orchestrator, plan,
                             deployments=[deployment])
    reports = injector.play(workload)
    final = workload()
    header = (f"{'epoch':>6} {'faults':>6} {'transient':>10} "
              f"{'recovered':>10} {'reconv':>8}")
    rows = [f"{report.time:>6g} {len(report.events):>6} "
            f"{(report.transient.delivery_ratio if report.transient else 0):>10.0%} "
            f"{(report.recovered_delivery_ratio or 0):>10.0%} "
            f"{report.reconvergence_time:>8.2f}"
            for report in reports]
    return ExperimentResult(
        experiment_id="anycast_failover",
        title="Anycast failover under member crash and recovery",
        header=header, rows=rows,
        data={"victim": victim,
              "epochs": [report.to_dict() for report in reports],
              "final": final.to_dict()},
        footer=f"final delivery {final.delivery_ratio:.0%} over "
               f"{final.attempted} probes (victim {victim})",
        seed=seed, params=params)
