"""Experiments E12 and E16: multicast and mobility as IPvN services."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.evolution import EvolvableInternet
from repro.core.metrics import path_stretch
from repro.topogen import InternetSpec
from repro.vnbone.mobility import MobilityService
from repro.vnbone.multicast import enable_multicast
from repro.experiments.base import ExperimentResult, register

E12_GROUP_SIZES = [2, 4, 8, 16]
E16_MOVES = 4


def _multicast_internet(n_adopters, seed):
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=12, hosts_per_stub=2,
                     seed=seed))
    deployment = internet.new_deployment(version=8, scheme="default")
    order = [deployment.scheme.default_asn] + [
        asn for asn in sorted(internet.network.domains)
        if asn != deployment.scheme.default_asn]
    for asn in order[:n_adopters]:
        deployment.deploy(asn)
    deployment.rebuild()
    return internet, deployment, enable_multicast(deployment)


@register("E12a", "multicast-over-IPvN vs unicast fan-out",
          params={}, tags=("claim", "service"))
def run_multicast_efficiency(seed: int = 77,
                             params: Optional[Dict[str, object]] = None
                             ) -> ExperimentResult:
    internet, deployment, service = _multicast_internet(n_adopters=4,
                                                        seed=seed)
    hosts = internet.hosts()
    src = hosts[0]
    data = []
    for size in E12_GROUP_SIZES:
        group = service.create_group()
        receivers = hosts[1:1 + size]
        for host in receivers:
            service.join(group, host)
        service.rebuild()
        trace = service.send(src, group)
        unicast_cost, unicast_stress = service.unicast_equivalent_cost(
            src, group)
        data.append({
            "receivers": size,
            "reached": len(trace.delivered_to & set(receivers)),
            "mcast_cost": trace.transmissions,
            "unicast_cost": unicast_cost,
            "ratio": unicast_cost / trace.transmissions,
            "mcast_stress": trace.max_link_stress,
            "unicast_stress": unicast_stress,
        })
    header = (f"{'receivers':>9} {'reached':>8} {'mcast cost':>10} "
              f"{'unicast cost':>13} {'ratio':>6} {'mcast stress':>13} "
              f"{'ucast stress':>13}")
    rows = [f"{r['receivers']:>9} {r['reached']:>8} {r['mcast_cost']:>10} "
            f"{r['unicast_cost']:>13} {r['ratio']:>6.2f} "
            f"{r['mcast_stress']:>13} {r['unicast_stress']:>13}"
            for r in data]
    return ExperimentResult(
        experiment_id="E12a",
        title="E12a: multicast-over-IPvN vs unicast fan-out "
              "(4 adopting ISPs)",
        header=header, rows=rows, data=data,
        footer="extension: the service multicast never delivered, running "
               "over the paper's evolution machinery",
        seed=seed, params=dict(params or {}))


@register("E12b", "multicast universal access vs adopting ISPs",
          params={}, tags=("claim", "service"))
def run_multicast_access(seed: int = 77,
                         params: Optional[Dict[str, object]] = None
                         ) -> ExperimentResult:
    data = []
    for n_adopters in (1, 3, 6):
        internet, deployment, service = _multicast_internet(n_adopters,
                                                            seed=seed)
        hosts = internet.hosts()
        group = service.create_group()
        receivers = hosts[1:9]
        for host in receivers:
            service.join(group, host)
        service.rebuild()
        trace = service.send(hosts[0], group)
        data.append({"adopters": n_adopters,
                     "reached": len(trace.delivered_to & set(receivers)),
                     "expected": len(receivers),
                     "cost": trace.transmissions})
    header = (f"{'adopters':>8} {'receivers reached':>18} "
              f"{'tree cost':>10}")
    rows = [f"{r['adopters']:>8} {r['reached']:>9}/{r['expected']:<8} "
            f"{r['cost']:>10}" for r in data]
    return ExperimentResult(
        experiment_id="E12b",
        title="E12b: multicast universal access vs adopting ISPs",
        header=header, rows=rows, data=data,
        footer="one adopting ISP suffices for every host to source and "
               "receive — the access multicast historically lacked",
        seed=seed, params=dict(params or {}))


@register("E16", "host mobility: identity survives, locator dies",
          params={}, tags=("claim", "service"))
def run_mobility(seed: int = 93,
                 params: Optional[Dict[str, object]] = None
                 ) -> ExperimentResult:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=4, n_stub=8, hosts_per_stub=1,
                     seed=seed), seed=seed)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    deployment.rebuild()
    mobility = MobilityService(deployment)
    mobile = internet.hosts()[0]
    corr = internet.hosts()[-1]
    mobility.enable(mobile)
    data = []
    homes = [asn for asn in internet.stub_asns()
             if asn != internet.network.node(mobile).domain_id][:E16_MOVES]
    for index, asn in enumerate(homes, start=1):
        access = sorted(internet.network.domains[asn].routers)[0]
        record = mobility.move(mobile, asn, access)
        vn_trace = mobility.reach(corr, mobile)
        ipv4_trace = mobility.ipv4_reach_old_locator(corr, record)
        stretch = path_stretch(internet.network, vn_trace, corr, mobile)
        data.append({
            "move": index,
            "new_home": asn,
            "vn_reaches": vn_trace.delivered
            and vn_trace.delivered_to == mobile,
            "ipv4_old_locator": (ipv4_trace.delivered
                                 and ipv4_trace.delivered_to == mobile),
            "stretch": stretch,
        })
    header = (f"{'move':>4} {'new home':>9} {'IPvN reaches identity':>22} "
              f"{'IPv4 to old locator':>20} {'stretch':>8}")
    rows = [f"{r['move']:>4} {'AS' + str(r['new_home']):>9} "
            f"{str(r['vn_reaches']):>22} {str(r['ipv4_old_locator']):>20} "
            f"{r['stretch']:>8.2f}" for r in data]
    return ExperimentResult(
        experiment_id="E16",
        title="E16: host mobility — identity survives, locator dies",
        header=header, rows=rows, data=data,
        footer="extension: identity/locator split via pinned IPvN "
               "addresses and anycast re-registration",
        seed=seed, params=dict(params or {}))
