"""Experiments E9 and E15: vN-Bone construction and routing ablations."""

from __future__ import annotations

import statistics

from typing import Dict, Optional

from repro.anycast import DefaultRootedAnycast
from repro.core.evolution import EvolvableInternet
from repro.core.metrics import measure_reachability
from repro.topogen import InternetSpec
from repro.vnbone import VnDeployment
from repro.experiments.base import ExperimentResult, register

E15_ADOPTION_LEVELS = [2, 4, 7]


def vn_connected(deployment) -> bool:
    members = sorted(deployment.members())
    if len(members) <= 1:
        return True
    reachable = deployment.routing.reachable_members(members[0])
    return reachable == set(members)


@register("E9a", "vN-Bone construction vs k (mixed LS/DV domains)",
          params={}, tags=("claim", "vnbone"))
def run_k_sweep(seed: int = 31,
                params: Optional[Dict[str, object]] = None
                ) -> ExperimentResult:
    data = []
    for k in (1, 2, 3):
        internet = EvolvableInternet.generate(
            InternetSpec(n_tier1=3, n_tier2=6, n_stub=10, seed=seed),
            igp_overrides={2: "distancevector", 5: "distancevector"})
        deployment = internet.new_deployment(version=8, scheme="default",
                                             k_neighbors=k)
        for asn in [deployment.scheme.default_asn, 2, 5,
                    internet.stub_asns()[0]]:
            deployment.deploy(asn)
        deployment.rebuild()
        tunnels = deployment.tunnels
        repairs = sum(1 for t in tunnels if t.kind == "repair")
        bootstraps = sum(1 for t in tunnels if t.kind.startswith("bootstrap"))
        data.append({"k": k, "tunnels": len(tunnels), "repairs": repairs,
                     "bootstraps": bootstraps,
                     "connected": vn_connected(deployment)})
    header = (f"{'k':>2} {'tunnels':>8} {'repairs':>8} {'bootstraps':>11} "
              f"{'connected':>10}")
    rows = [f"{r['k']:>2} {r['tunnels']:>8} {r['repairs']:>8} "
            f"{r['bootstraps']:>11} {str(r['connected']):>10}" for r in data]
    return ExperimentResult(
        experiment_id="E9a",
        title="E9a: vN-Bone construction vs k (mixed LS/DV domains)",
        header=header, rows=rows, data=data,
        footer="paper: partitions are detected and repaired; DV domains "
               "bootstrap via anycast",
        seed=seed, params=dict(params or {}))


@register("E9b", "vN-Bone congruence with the physical topology",
          params={}, tags=("claim", "vnbone"))
def run_congruence(seed: int = 32,
                   params: Optional[Dict[str, object]] = None
                   ) -> ExperimentResult:
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=3, n_tier2=6, n_stub=10, seed=seed))
    deployment = internet.new_deployment(version=8, scheme="default")
    # Adoption order chosen to start sparse/disconnected: stubs first.
    order = ([deployment.scheme.default_asn] + internet.stub_asns()[:4]
             + [asn for asn, d in internet.network.domains.items()
                if d.tier == 2][:4] + internet.tier1_asns()[1:])
    data = []
    for step, asn in enumerate(order, start=1):
        deployment.deploy(asn)
        deployment.rebuild()
        report = deployment.topology.congruence(deployment.tunnels)
        data.append({"step": step, "adopters": step,
                     "congruent": report["inter_congruent_fraction"],
                     "mean_cost": report["mean_tunnel_cost"],
                     "connected": vn_connected(deployment)})
    header = (f"{'adopters':>8} {'congruent inter-tunnels':>24} "
              f"{'mean tunnel cost':>17} {'connected':>10}")
    rows = [f"{r['adopters']:>8} {r['congruent']:>24.0%} "
            f"{r['mean_cost']:>17.1f} {str(r['connected']):>10}"
            for r in data]
    return ExperimentResult(
        experiment_id="E9b",
        title="E9b: vN-Bone congruence with the physical topology vs "
              "adoption",
        header=header, rows=rows, data=data,
        footer="paper: the vN-Bone evolves to be congruent with the "
               "underlying topology as deployment spreads",
        seed=seed, params=dict(params or {}))


def _run_mode(mode, version, n_adopters, internet):
    adopters = ([internet.tier1_asns()[0]]
                + [asn for asn in sorted(internet.network.domains)
                   if asn != internet.tier1_asns()[0]])[:n_adopters]
    scheme = DefaultRootedAnycast(internet.orchestrator,
                                  f"{mode}-{version}",
                                  default_asn=adopters[0])
    deployment = VnDeployment(internet.orchestrator, scheme, version=version,
                              routing_mode=mode)
    for asn in adopters:
        deployment.deploy(asn)
    deployment.rebuild()
    pairs = internet.host_pairs(sample=40, seed=4)
    report = measure_reachability(internet.network, deployment.send, pairs)
    fib_sizes = list(deployment.vn_fib_sizes().values())
    return {"delivery": report.delivery_ratio,
            "stretch": report.mean_stretch,
            "fib_mean": statistics.fmean(fib_sizes) if fib_sizes else 0.0}


@register("E15", "routing ablation: global SPF vs layered BGPvN",
          params={}, tags=("claim", "vnbone"))
def run_routing_modes(seed: int = 37,
                      params: Optional[Dict[str, object]] = None
                      ) -> ExperimentResult:
    data = []
    version = 8
    for n_adopters in E15_ADOPTION_LEVELS:
        internet = EvolvableInternet.generate(
            InternetSpec(n_tier1=2, n_tier2=4, n_stub=8, hosts_per_stub=2,
                         seed=seed), seed=seed)
        flat = _run_mode("global-spf", version, n_adopters, internet)
        layered = _run_mode("layered", version + 1, n_adopters, internet)
        data.append({"adopters": n_adopters, "flat": flat,
                     "layered": layered})
    header = (f"{'adopters':>8} | {'spf deliv':>9} {'stretch':>8} "
              f"{'fib':>6} | {'bgpvn deliv':>11} {'stretch':>8} {'fib':>6}")
    rows = [f"{r['adopters']:>8} | {r['flat']['delivery']:>9.0%} "
            f"{r['flat']['stretch']:>8.2f} {r['flat']['fib_mean']:>6.1f} | "
            f"{r['layered']['delivery']:>11.0%} "
            f"{r['layered']['stretch']:>8.2f} "
            f"{r['layered']['fib_mean']:>6.1f}" for r in data]
    return ExperimentResult(
        experiment_id="E15",
        title="E15: vN-Bone routing ablation: global SPF vs layered BGPvN",
        header=header, rows=rows, data=data,
        footer="universal access is routing-flavor independent; stretch "
               "differences are the cost of domain-granularity decisions",
        seed=seed, params=dict(params or {}))
