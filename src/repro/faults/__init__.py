"""Fault injection: declarative fault schedules and their execution.

The paper's robustness argument (Section 3.2) hinges on IP anycast
inheriting the failure semantics of unicast routing: when the nearest
IPvN router dies, routing reconverges and packets simply flow to the
next-nearest member, with no application-level failover machinery.
This package lets experiments *test* that claim:

* :class:`FaultPlan` — a declarative schedule of link failures and
  repairs, node crashes and recoveries, and probabilistic
  message-loss/reorder windows;
* :class:`FaultInjector` — executes a plan against an
  :class:`~repro.core.orchestrator.Orchestrator` on the shared event
  scheduler, drives control-plane reconvergence, and measures the
  transient (pre-reconvergence) and recovered reachability of a
  caller-supplied workload per fault epoch.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultEvent", "FaultInjector", "FaultKind", "FaultPlan",
           "FaultRecord"]
