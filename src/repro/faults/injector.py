"""Execute a :class:`~repro.faults.plan.FaultPlan` against a network.

The injector is the experiment harness for the paper's failover claim.
For each *epoch* (batch of same-timestamp fault events) it:

1. advances the shared :class:`~repro.net.simulator.EventScheduler` to
   the epoch's time,
2. applies the faults (fails/restores links, crashes/recovers nodes,
   toggles message perturbation) and notifies the control planes,
3. runs the caller's *workload* against the still-stale forwarding
   state — the **transient** measurement, capturing the packets that
   black-hole between failure and reconvergence,
4. drains the scheduler (control-plane reconvergence), records the
   reconvergence time, reinstalls FIBs and rebuilds any registered
   IPvN deployments,
5. runs the workload again — the **recovered** measurement.

Transient measurement is honest because fault application never marks
deployments dirty: probes in step 3 really do traverse the pre-fault
FIBs, exactly as data packets would before routing reacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.net.errors import FaultError
from repro.net.link import Link
from repro.core.metrics import FaultEpochReport, ReachabilityReport
from repro.core.orchestrator import Orchestrator
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

#: A workload probes reachability against current forwarding state.
Workload = Callable[[], ReachabilityReport]


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault, for the injector's audit log."""

    time: float
    description: str

    def __str__(self) -> str:
        return f"t={self.time:g}: {self.description}"


class FaultInjector:
    """Applies a :class:`FaultPlan` to an orchestrator's network.

    Parameters
    ----------
    orchestrator:
        Owns the network, scheduler, and control planes to fault.
    plan:
        The schedule to execute; validated against the network eagerly.
    deployments:
        :class:`~repro.vnbone.deployment.VnDeployment` instances to
        rebuild after each epoch reconverges (their vN-Bones must adapt
        to the new topology).
    """

    def __init__(self, orchestrator: Orchestrator, plan: FaultPlan,
                 deployments: Iterable[object] = ()) -> None:
        plan.validate(orchestrator.network)
        self.orchestrator = orchestrator
        self.plan = plan
        self.deployments: Sequence[object] = tuple(deployments)
        self.records: List[FaultRecord] = []
        self.epoch_reports: List[FaultEpochReport] = []
        #: Pool of links failed by node crashes, still awaiting repair.
        #: A shared pool (not per-victim lists) so a link between two
        #: crashed nodes is restored when its *last* endpoint recovers.
        self._crash_failed: List[Link] = []
        self._played = False

    # -- execution ------------------------------------------------------------
    def play(self, workload: Optional[Workload] = None,
             max_events: int = 5_000_000) -> List[FaultEpochReport]:
        """Run the whole plan; one :class:`FaultEpochReport` per epoch.

        Plan times are *scenario-relative*: an event ``at=10.0`` fires
        ten time units after ``play()`` begins (initial convergence may
        already have advanced the absolute clock arbitrarily far).
        Reported times are absolute simulation time.

        *workload* is called twice per epoch — before and after
        reconvergence — to measure transient loss and recovered
        delivery.  Pass None to just mutate topology.
        """
        if self._played:
            raise FaultError(
                "this injector already played its plan; construct a new one "
                "(fault application is stateful and not idempotent)")
        self._played = True
        scheduler = self.orchestrator.scheduler
        if not self.orchestrator._converged:  # noqa: SLF001 - injector drives lifecycle
            self.orchestrator.converge(max_events=max_events)
        start = scheduler.now
        # While faults are active every packet must take the slow path:
        # transient (pre-reconvergence) walks are measurement, not
        # repeat traffic, and must never be replayed from cache.
        fastpath = self.orchestrator.engine.fastpath
        fastpath.pause()
        try:
            reports = self._play_epochs(workload, max_events, start)
        finally:
            fastpath.resume()
        self.epoch_reports = reports
        return reports

    def _play_epochs(self, workload: Optional[Workload], max_events: int,
                     start: float) -> List[FaultEpochReport]:
        scheduler = self.orchestrator.scheduler
        obs = self.orchestrator.obs
        reports: List[FaultEpochReport] = []
        for epoch_index, (time, events) in enumerate(self.plan.epochs()):
            target = start + time
            if target < scheduler.now:
                raise FaultError(
                    f"fault epoch at t={time} (absolute {target}) is in the "
                    f"past (now={scheduler.now}); reconvergence overran the "
                    "next epoch — space the plan out")
            scheduler.run_until(target, max_events=max_events)
            report = FaultEpochReport(time=scheduler.now)
            # The epoch span is the causal root the offline analyzer
            # extracts critical paths from: fault.apply children (which
            # in turn parent IGP hold-down timers), the transient and
            # recovered workload phases, the reconvergence drain, and
            # the FIB/vN-Bone reinstallation all hang under it.
            with obs.span("fault.epoch", t=report.time,
                          epoch=epoch_index) as epoch_span:
                for event in events:
                    report.events.append(self._apply(event))
                if workload is not None:
                    with obs.span("fault.workload", t=scheduler.now,
                                  phase="transient") as wspan:
                        report.transient = workload()
                        wspan.end(t=scheduler.now)
                before = scheduler.events_processed
                with obs.span("fault.reconverge", t=scheduler.now) as rspan:
                    scheduler.run_until_idle(max_events=max_events)
                    rspan.end(t=scheduler.now,
                              events=scheduler.events_processed - before)
                report.reconverged_at = scheduler.now
                report.events_processed = scheduler.events_processed - before
                with obs.span("routes.install", t=scheduler.now) as ispan:
                    self.orchestrator.install_routes()
                    ispan.end(t=scheduler.now)
                for deployment in self.deployments:
                    deployment.rebuild()
                if workload is not None:
                    with obs.span("fault.workload", t=scheduler.now,
                                  phase="recovered") as wspan:
                        report.recovered = workload()
                        wspan.end(t=scheduler.now)
                epoch_span.end(t=scheduler.now,
                               faults=len(report.events),
                               reconverged_at=report.reconverged_at,
                               reconvergence_time=report.reconvergence_time)
            reports.append(report)
            if obs.enabled:
                obs.counter("faults.epochs").inc()
                obs.histogram("faults.reconvergence_sim_time").observe(
                    report.reconvergence_time)
                obs.event("fault.epoch", t=report.time,
                          faults=len(report.events),
                          reconverged_at=report.reconverged_at,
                          reconvergence_time=report.reconvergence_time,
                          events_processed=report.events_processed)
        return reports

    # -- fault application -----------------------------------------------------
    def _apply(self, event: FaultEvent) -> str:
        handler = {
            FaultKind.LINK_DOWN: self._apply_link_down,
            FaultKind.LINK_UP: self._apply_link_up,
            FaultKind.NODE_CRASH: self._apply_node_crash,
            FaultKind.NODE_RECOVER: self._apply_node_recover,
            FaultKind.LOSS_START: self._apply_loss_start,
            FaultKind.LOSS_END: self._apply_loss_end,
        }[event.kind]
        obs = self.orchestrator.obs
        now = self.orchestrator.scheduler.now
        # Entered span: timers the control planes arm while reacting
        # (IGP hold-down) parent under this fault application.
        with obs.span("fault.apply", t=now, fault=event.kind.value,
                      target=list(event.target)) as span:
            handler(event)
            description = event.describe()
            span.end(t=self.orchestrator.scheduler.now)
        self.records.append(FaultRecord(time=self.orchestrator.scheduler.now,
                                        description=description))
        if obs.enabled:
            obs.counter("faults.applied").inc()
            obs.event("fault.apply", t=self.orchestrator.scheduler.now,
                      fault=event.kind.value, target=list(event.target),
                      description=description)
        return description

    def _apply_link_down(self, event: FaultEvent) -> None:
        link = self._link(event)
        if not link.up:
            return  # already down (e.g. its endpoint crashed first)
        link.fail()
        self.orchestrator.notify_link_change(link)

    def _apply_link_up(self, event: FaultEvent) -> None:
        link = self._link(event)
        if link.up:
            return
        network = self.orchestrator.network
        if not (network.node(link.a).up and network.node(link.b).up):
            raise FaultError(
                f"cannot restore {link.a}<->{link.b}: an endpoint is crashed "
                "(recover the node instead)")
        link.restore()
        self.orchestrator.notify_link_change(link)

    def _apply_node_crash(self, event: FaultEvent) -> None:
        node_id = event.target[0]
        network = self.orchestrator.network
        if not network.node(node_id).up:
            return
        failed = network.crash_node(node_id)
        self._crash_failed.extend(failed)
        for link in failed:
            self.orchestrator.notify_link_change(link)
        self.orchestrator.notify_node_change(node_id)

    def _apply_node_recover(self, event: FaultEvent) -> None:
        node_id = event.target[0]
        network = self.orchestrator.network
        if network.node(node_id).up:
            return
        # Only crash-failed links incident to this node are candidates;
        # recover_node skips those whose far endpoint is still down.
        incident = [link for link in self._crash_failed
                    if node_id in (link.a, link.b)]
        restored = network.recover_node(node_id, incident)
        self._crash_failed = [link for link in self._crash_failed
                              if not link.up]
        for link in restored:
            self.orchestrator.notify_link_change(link)
        self.orchestrator.notify_node_change(node_id)

    def _apply_loss_start(self, event: FaultEvent) -> None:
        self.orchestrator.scheduler.set_message_perturbation(
            loss_prob=event.loss_prob, reorder_jitter=event.reorder_jitter)

    def _apply_loss_end(self, _event: FaultEvent) -> None:
        self.orchestrator.scheduler.clear_message_perturbation()

    def _link(self, event: FaultEvent) -> Link:
        link = self.orchestrator.network.link_between(*event.target)
        if link is None:
            raise FaultError(
                f"fault event targets nonexistent link {event.target}; "
                "was the plan validated against a different network?")
        return link
