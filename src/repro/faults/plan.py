"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behavior: an ordered list of
:class:`FaultEvent` records saying *what* breaks (or heals) and *when*.
Times are scenario-relative: ``at=10.0`` means ten simulated time units
after :meth:`repro.faults.FaultInjector.play` begins (initial protocol
convergence consumes an arbitrary amount of absolute simulation time
first).  Plans are built with a chainable API::

    plan = (FaultPlan()
            .crash_node("r3", at=10.0)
            .message_loss(start=10.0, end=30.0, prob=0.05)
            .recover_node("r3", at=60.0))

and executed by :class:`repro.faults.FaultInjector`.  Keeping the plan
declarative makes fault scenarios serializable (:meth:`FaultPlan.to_json`),
diffable, and reusable across IGP kinds and topologies — the
determinism regression tests lean on exactly that.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Tuple

from repro.net.errors import FaultError, TopologyError
from repro.net.network import Network


class FaultKind(Enum):
    """What a single fault event does."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    NODE_CRASH = "node-crash"
    NODE_RECOVER = "node-recover"
    LOSS_START = "loss-start"
    LOSS_END = "loss-end"


#: Kinds whose target is a (node_a, node_b) link endpoint pair.
_LINK_KINDS = (FaultKind.LINK_DOWN, FaultKind.LINK_UP)
#: Kinds whose target is a single (node_id,) tuple.
_NODE_KINDS = (FaultKind.NODE_CRASH, FaultKind.NODE_RECOVER)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* applied to *target* at *time*.

    ``loss_prob`` and ``reorder_jitter`` are only meaningful for
    :attr:`FaultKind.LOSS_START` events.
    """

    time: float
    kind: FaultKind
    target: Tuple[str, ...] = ()
    loss_prob: float = 0.0
    reorder_jitter: float = 0.0

    def describe(self) -> str:
        if self.kind in _LINK_KINDS:
            return f"{self.kind.value} {self.target[0]}<->{self.target[1]}"
        if self.kind in _NODE_KINDS:
            return f"{self.kind.value} {self.target[0]}"
        if self.kind is FaultKind.LOSS_START:
            return (f"{self.kind.value} p={self.loss_prob} "
                    f"jitter={self.reorder_jitter}")
        return self.kind.value

    def to_dict(self) -> Dict[str, object]:
        return {"time": self.time, "kind": self.kind.value,
                "target": list(self.target), "loss_prob": self.loss_prob,
                "reorder_jitter": self.reorder_jitter}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            kind = FaultKind(data["kind"])
            return cls(time=float(data["time"]), kind=kind,
                       target=tuple(data.get("target", ())),
                       loss_prob=float(data.get("loss_prob", 0.0)),
                       reorder_jitter=float(data.get("reorder_jitter", 0.0)))
        except (KeyError, ValueError, TypeError) as exc:
            raise FaultError(f"malformed fault event {data!r}: {exc}") from exc


@dataclass
class FaultPlan:
    """An ordered schedule of fault events (see module docstring)."""

    _events: List[FaultEvent] = field(default_factory=list)

    # -- construction (chainable) ------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def link_down(self, a: str, b: str, at: float) -> "FaultPlan":
        """Fail the link between nodes *a* and *b* at time *at*."""
        return self.add(FaultEvent(time=at, kind=FaultKind.LINK_DOWN, target=(a, b)))

    def link_up(self, a: str, b: str, at: float) -> "FaultPlan":
        """Restore the link between nodes *a* and *b* at time *at*."""
        return self.add(FaultEvent(time=at, kind=FaultKind.LINK_UP, target=(a, b)))

    def crash_node(self, node_id: str, at: float) -> "FaultPlan":
        """Crash *node_id* (and fail all its links) at time *at*."""
        return self.add(FaultEvent(time=at, kind=FaultKind.NODE_CRASH,
                                   target=(node_id,)))

    def recover_node(self, node_id: str, at: float) -> "FaultPlan":
        """Recover *node_id* (and its crash-failed links) at time *at*."""
        return self.add(FaultEvent(time=at, kind=FaultKind.NODE_RECOVER,
                                   target=(node_id,)))

    def message_loss(self, start: float, end: float, prob: float,
                     jitter: float = 0.0) -> "FaultPlan":
        """Drop protocol messages with probability *prob* in [start, end).

        *jitter* additionally delays surviving messages by a uniform
        random amount in ``[0, jitter]``, reordering them.
        """
        if end <= start:
            raise FaultError(
                f"message-loss window must have end > start, got [{start}, {end})")
        self.add(FaultEvent(time=start, kind=FaultKind.LOSS_START,
                            loss_prob=prob, reorder_jitter=jitter))
        return self.add(FaultEvent(time=end, kind=FaultKind.LOSS_END))

    # -- access ------------------------------------------------------------------
    def events(self) -> List[FaultEvent]:
        """Events in execution order: by time, insertion order on ties."""
        return sorted(self._events, key=lambda e: e.time)

    def epochs(self) -> List[Tuple[float, List[FaultEvent]]]:
        """Events grouped by identical timestamp, in time order."""
        grouped: List[Tuple[float, List[FaultEvent]]] = []
        for event in self.events():
            if grouped and grouped[-1][0] == event.time:
                grouped[-1][1].append(event)
            else:
                grouped.append((event.time, [event]))
        return grouped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events())

    # -- validation ---------------------------------------------------------------
    def validate(self, network: Network) -> None:
        """Check every event against *network*; raise :class:`FaultError`.

        Catches schedule mistakes before any state is mutated: unknown
        nodes, nonexistent links, negative or non-finite times, and
        out-of-range probabilities.
        """
        for event in self._events:
            if not math.isfinite(event.time) or event.time < 0.0:
                raise FaultError(
                    f"fault time must be finite and >= 0, got {event.time} "
                    f"({event.describe()})")
            if event.kind in _LINK_KINDS:
                if len(event.target) != 2:
                    raise FaultError(
                        f"{event.kind.value} needs a (node, node) target, "
                        f"got {event.target}")
                self._require_node(network, event.target[0])
                self._require_node(network, event.target[1])
                if network.link_between(*event.target) is None:
                    raise FaultError(
                        f"no link {event.target[0]}<->{event.target[1]} to fault")
            elif event.kind in _NODE_KINDS:
                if len(event.target) != 1:
                    raise FaultError(
                        f"{event.kind.value} needs a single-node target, "
                        f"got {event.target}")
                self._require_node(network, event.target[0])
            elif event.kind is FaultKind.LOSS_START:
                if not 0.0 <= event.loss_prob <= 1.0:
                    raise FaultError(
                        f"loss_prob must be in [0, 1], got {event.loss_prob}")
                if event.reorder_jitter < 0.0:
                    raise FaultError(
                        f"reorder_jitter must be >= 0, got {event.reorder_jitter}")

    @staticmethod
    def _require_node(network: Network, node_id: str) -> None:
        try:
            network.node(node_id)
        except TopologyError as exc:
            raise FaultError(f"fault targets unknown node {node_id!r}") from exc

    # -- serialization ---------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([event.to_dict() for event in self.events()], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, list):
            raise FaultError("fault plan JSON must be a list of events")
        plan = cls()
        for item in data:
            plan.add(FaultEvent.from_dict(item))
        return plan
