"""Sharded experiment fleet: declarative matrices, multiprocess sweeps.

``repro.fleet`` fans a declarative parameter matrix (``repro.matrix/v1``,
:mod:`repro.fleet.spec`) over the workload-spec registry across worker
processes and merges the per-cell artifacts into one deterministic
``repro.fleet/v1`` report (:mod:`repro.fleet.engine`).  See
``docs/fleet.md``.
"""

from repro.fleet.engine import (FLEET_SCHEMA, execute_cell, fleet_to_json,
                                run_fleet, validate_fleet_dict, write_fleet)
from repro.fleet.spec import (MATRIX_SCHEMA, FleetCell, FleetMatrix,
                              cell_seed)

__all__ = ["FLEET_SCHEMA", "MATRIX_SCHEMA", "FleetCell", "FleetMatrix",
           "cell_seed", "execute_cell", "fleet_to_json", "run_fleet",
           "validate_fleet_dict", "write_fleet"]
