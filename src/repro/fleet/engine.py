"""The multiprocess sweep engine: fan a matrix, merge the artifacts.

:func:`run_fleet` enumerates a :class:`~repro.fleet.spec.FleetMatrix`
into cells, executes each through the one workload surface
(:func:`repro.experiments.base.run`) — inline, or fanned across a
``multiprocessing`` pool — and merges the per-cell artifacts into one
``repro.fleet/v1`` report.

Design constraints, all load-bearing:

* **Determinism.**  The merged report depends only on the matrix and
  the base seed — never on worker count, scheduling order, or wall
  clock.  Cell seeds derive from ``(cell_index, base_seed)``; cells are
  merged in index order regardless of completion order; metric keys
  carrying the ``wall_`` marker (wall-clock timings) are stripped from
  artifacts; trace paths are stored as the deterministic per-cell file
  name.  ``--workers 1`` and ``--workers 8`` therefore produce
  byte-identical reports.
* **Isolation.**  A crashing cell yields a failed record with the
  deterministic ``"TypeName: message"`` error string; the other cells
  still run and the merge still happens.
* **Resumability.**  With a cache directory, each finished cell is
  written to ``<cache_dir>/<spec_hash>/<cell>.json`` and re-used on the
  next invocation of the same matrix; editing the matrix changes the
  spec hash and so invalidates exactly its own cache.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.base import (format_error, run,
                                    validate_experiment_dict)
from repro.fleet.spec import MATRIX_SCHEMA, FleetCell, FleetMatrix
from repro.net.errors import FleetError
from repro.obs import Observability
from repro.obs.tracer import WALL_PREFIX, Tracer

#: Schema tag of the merged cross-scenario report.
FLEET_SCHEMA = "repro.fleet/v1"

#: One worker payload: the cell, the matrix's import list, and the
#: traces directory (``None`` disables per-cell tracing).
_Payload = Tuple[FleetCell, Tuple[str, ...], Optional[str]]

#: Progress callback: called with each cell record as it is merged.
ProgressFn = Callable[[Dict[str, object]], None]


def _ensure_registry(imports: Iterable[str]) -> None:
    """Populate the workload registry in this process.

    Importing :mod:`repro.experiments` registers the built-in suite;
    the matrix's ``imports`` then register any matrix-local workloads.
    Both are idempotent, so repeating this in every worker (mandatory
    under the spawn start method, harmless under fork) is safe.
    """
    importlib.import_module("repro.experiments")
    for module in imports:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise FleetError(f"matrix imports: cannot import {module!r} "
                             f"({exc})") from exc


def _strip_wall_metrics(
        metrics: Dict[str, object]) -> Dict[str, object]:
    """Drop metrics whose names carry the ``wall_`` marker.

    The repo-wide convention names every wall-clock-derived field with
    a ``wall_`` segment (``scheduler.drain_wall_ms``,
    ``probe.spf_wall_ms``); everything else — event counts, convergence
    epochs, queue depths — is seed-deterministic and safe to merge
    byte-stably.  The snapshot is nested one level (``counters`` /
    ``gauges`` / ``histograms`` families), so the filter applies to the
    member names inside each family.
    """
    stripped: Dict[str, object] = {}
    for family, members in metrics.items():
        if WALL_PREFIX in family:
            continue
        if isinstance(members, dict):
            members = {name: value for name, value in members.items()
                       if WALL_PREFIX not in name}
        stripped[family] = members
    return stripped


def execute_cell(cell: FleetCell, imports: Sequence[str] = (),
                 traces_dir: Optional[str] = None) -> Dict[str, object]:
    """Run one cell to a merged-report record (never raises).

    Any exception — schema violation, runner crash, missing workload —
    becomes a failed record with a deterministic error string, so one
    bad cell cannot abort the sweep.
    """
    record: Dict[str, object] = {
        "index": cell.index, "name": cell.name,
        "workload_id": cell.workload_id, "seed": cell.seed,
        "params": dict(cell.params), "repeat": cell.repeat,
        "ok": False, "artifact": None, "error": None,
    }
    try:
        _ensure_registry(imports)
        obs: Optional[Observability] = None
        if traces_dir is not None:
            tracer = Tracer.for_cell(cell.name, traces_dir, context={
                "cell": cell.name, "workload": cell.workload_id,
                "seed": cell.seed, "params": dict(cell.params)})
            obs = Observability(tracer=tracer)
        try:
            result = run(cell.workload_id, seed=cell.seed,
                         params=dict(cell.params), obs=obs)
        finally:
            if obs is not None:
                obs.close()
        artifact = result.to_dict()
        metrics = artifact.get("metrics")
        if isinstance(metrics, dict):
            artifact["metrics"] = _strip_wall_metrics(metrics)
        # The deterministic relative name, not the absolute target the
        # tracer wrote to: reports must not embed invocation paths.
        artifact["trace_path"] = (f"{cell.name}.jsonl"
                                  if traces_dir is not None else None)
        record["ok"] = True
        record["artifact"] = artifact
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        record["error"] = format_error(exc)
    return record


def _execute_payload(payload: _Payload) -> Dict[str, object]:
    """Pool entry point (module-level, hence picklable under spawn)."""
    cell, imports, traces_dir = payload
    return execute_cell(cell, imports=imports, traces_dir=traces_dir)


# -- per-cell cache -------------------------------------------------------------

def _cache_path(cache_dir: str, spec_hash: str, cell: FleetCell) -> Path:
    return Path(cache_dir) / spec_hash / f"{cell.name}.json"


def _load_cached(cache_dir: str, spec_hash: str,
                 cell: FleetCell) -> Optional[Dict[str, object]]:
    """The cached record for *cell*, or ``None`` (missing/corrupt)."""
    path = _cache_path(cache_dir, spec_hash, cell)
    try:
        with path.open(encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if (not isinstance(record, dict) or record.get("name") != cell.name
            or record.get("seed") != cell.seed):
        return None
    return record


def _store_cached(cache_dir: str, spec_hash: str, cell: FleetCell,
                  record: Dict[str, object]) -> None:
    path = _cache_path(cache_dir, spec_hash, cell)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, sort_keys=True,
                               separators=(",", ":")) + "\n",
                    encoding="utf-8")


# -- the sweep ------------------------------------------------------------------

def _pool_context() -> multiprocessing.context.BaseContext:
    """fork when the platform offers it (cheap, registry pre-warmed),
    spawn otherwise; workers rebuild the registry either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def run_fleet(matrix: FleetMatrix, *, workers: int = 1,
              traces_dir: Optional[str] = None,
              cache_dir: Optional[str] = None,
              progress: Optional[ProgressFn] = None) -> Dict[str, object]:
    """Execute every cell of *matrix* and merge the ``repro.fleet/v1`` doc.

    *workers* ``<= 1`` runs inline through the identical cell path the
    pool workers use.  *traces_dir* enables per-cell JSONL traces;
    *cache_dir* enables the spec-hash-keyed resume cache.  *progress*
    is invoked once per cell, in index order, as records merge.
    """
    if workers < 1:
        raise FleetError(f"workers: expected >= 1, got {workers}")
    _ensure_registry(matrix.imports)
    preflight = matrix.validate_against_registry()
    if preflight:
        raise FleetError("matrix does not fit the workload registry: "
                         + "; ".join(preflight))

    spec_hash = matrix.spec_hash()
    cells = matrix.cells()
    records: Dict[int, Dict[str, object]] = {}
    pending: List[FleetCell] = []
    for cell in cells:
        cached = (None if cache_dir is None
                  else _load_cached(cache_dir, spec_hash, cell))
        if cached is not None:
            cached["cached"] = True
            records[cell.index] = cached
        else:
            pending.append(cell)

    payloads: List[_Payload] = [(cell, matrix.imports, traces_dir)
                                for cell in pending]
    if workers <= 1 or len(pending) <= 1:
        fresh = [_execute_payload(payload) for payload in payloads]
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(pending))) as pool:
            fresh = pool.map(_execute_payload, payloads)
    for cell, record in zip(pending, fresh):
        record["cached"] = False
        if cache_dir is not None:
            _store_cached(cache_dir, spec_hash, cell, record)
        records[cell.index] = record

    merged = [records[cell.index] for cell in cells]
    if progress is not None:
        for record in merged:
            progress(record)
    return _merge(matrix, spec_hash, merged)


def _merge(matrix: FleetMatrix, spec_hash: str,
           records: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold cell records into the ``repro.fleet/v1`` document.

    ``cached`` is a per-invocation fact, not a property of the sweep,
    so it is dropped here — resumed and cold runs merge identically.
    """
    by_workload: Dict[str, Dict[str, int]] = {}
    ok = 0
    cleaned: List[Dict[str, object]] = []
    for record in records:
        record = {key: value for key, value in record.items()
                  if key != "cached"}
        cleaned.append(record)
        workload_id = str(record["workload_id"])
        bucket = by_workload.setdefault(workload_id,
                                        {"cells": 0, "ok": 0, "failed": 0})
        bucket["cells"] += 1
        if record["ok"]:
            ok += 1
            bucket["ok"] += 1
        else:
            bucket["failed"] += 1
    return {"schema": FLEET_SCHEMA,
            "matrix": matrix.to_dict(),
            "spec_hash": spec_hash,
            "cells": cleaned,
            "totals": {"cells": len(cleaned), "ok": ok,
                       "failed": len(cleaned) - ok,
                       "by_workload": {name: by_workload[name]
                                       for name in sorted(by_workload)}}}


# -- validation and serialization -----------------------------------------------

_CELL_FIELDS: Tuple[Tuple[str, Tuple[type, ...], bool], ...] = (
    ("index", (int,), False),
    ("name", (str,), False),
    ("workload_id", (str,), False),
    ("seed", (int,), False),
    ("params", (dict,), False),
    ("repeat", (int,), False),
    ("ok", (bool,), False),
    ("error", (str,), True),
)


def validate_fleet_dict(doc: object) -> List[str]:
    """Validate a ``repro.fleet/v1`` document; returns error strings.

    Checks the envelope (schema tag, embedded matrix, totals
    consistency) and every cell record, including running each
    successful cell's artifact through
    :func:`~repro.experiments.base.validate_experiment_dict`.
    """
    if not isinstance(doc, dict):
        return [f"document: expected object, got {type(doc).__name__}"]
    errors: List[str] = []
    if doc.get("schema") != FLEET_SCHEMA:
        errors.append(f"schema: expected {FLEET_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    matrix = doc.get("matrix")
    if not isinstance(matrix, dict) or matrix.get("schema") != MATRIX_SCHEMA:
        errors.append(f"matrix: expected embedded {MATRIX_SCHEMA!r} object")
    if not isinstance(doc.get("spec_hash"), str):
        errors.append("spec_hash: expected string")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        errors.append("cells: expected array")
        cells = []
    ok = 0
    for position, record in enumerate(cells):
        label = f"cells[{position}]"
        if not isinstance(record, dict):
            errors.append(f"{label}: expected object")
            continue
        for name, types, nullable in _CELL_FIELDS:
            value = record.get(name)
            if value is None:
                if not nullable:
                    errors.append(f"{label}.{name}: missing or null")
                continue
            if not isinstance(value, types) or (bool not in types
                                                and isinstance(value, bool)):
                errors.append(f"{label}.{name}: expected "
                              f"{types[0].__name__}, "
                              f"got {type(value).__name__}")
        if record.get("index") != position:
            errors.append(f"{label}.index: {record.get('index')!r} is out "
                          f"of order (expected {position})")
        if record.get("ok"):
            ok += 1
            artifact = record.get("artifact")
            if artifact is None:
                errors.append(f"{label}: ok cell has no artifact")
            else:
                errors.extend(f"{label}.artifact: {problem}"
                              for problem in
                              validate_experiment_dict(artifact))
        elif not isinstance(record.get("error"), str):
            errors.append(f"{label}: failed cell has no error string")
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals: expected object")
    else:
        expected = {"cells": len(cells), "ok": ok, "failed": len(cells) - ok}
        for name, value in expected.items():
            if totals.get(name) != value:
                errors.append(f"totals.{name}: {totals.get(name)!r} != "
                              f"{value} (recomputed)")
    return errors


def fleet_to_json(doc: Dict[str, object]) -> str:
    """The canonical byte form (sorted keys, 2-space indent, final NL).

    Both the CLI and the CI smoke job compare reports with byte
    equality, so there is exactly one serializer.
    """
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_fleet(doc: Dict[str, object], path: str) -> None:
    """Write the merged report in canonical byte form."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(fleet_to_json(doc), encoding="utf-8")
