"""Declarative sweep matrices: the ``repro.matrix/v1`` format.

A :class:`FleetMatrix` names one or more registered workloads, a base
seed, a set of parameter *axes* (each a list of values for one declared
workload param), and a repeat count.  Its cells are the Cartesian
product ``workloads x axes x repeats``, enumerated in a canonical
order, each with a deterministic seed derived from ``(cell_index,
base_seed)`` — so any worker, in any process, at any parallelism,
derives the same plan.

The JSON file format (``docs/fleet.md``)::

    {
      "schema": "repro.matrix/v1",
      "workloads": ["anycast_failover"],
      "base_seed": 7,
      "axes": {"n_stub": [4, 6], "pairs": [4, 8]},
      "repeats": 2,
      "imports": []
    }

``workload`` (singular, a string) is accepted as shorthand for a
one-element ``workloads``.  ``imports`` lists modules every worker
imports before running, so matrices can sweep workloads registered
outside :mod:`repro.experiments` (e.g. test-local ones).

:meth:`FleetMatrix.spec_hash` is the sha256 of the canonical JSON form;
the fleet engine keys its per-cell result cache by it, so editing any
part of the matrix invalidates exactly that matrix's cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.net.errors import FleetError

#: Schema tag of the matrix document.
MATRIX_SCHEMA = "repro.matrix/v1"

#: Axis values must be JSON scalars (matching the Param kinds).
_SCALAR_TYPES = (int, float, bool, str)

#: Derived per-cell seeds live in the positive int32 range, which every
#: topology generator and RNG helper in the tree accepts.
_SEED_SPACE = 2 ** 31 - 1


def cell_seed(cell_index: int, base_seed: int) -> int:
    """The deterministic seed of cell *cell_index* under *base_seed*.

    A keyed 8-byte blake2b digest of ``"<base_seed>:<cell_index>"`` —
    stable across processes, platforms, and Python versions (unlike
    ``hash()``), and decorrelated between adjacent cells.
    """
    payload = f"{base_seed}:{cell_index}".encode("ascii")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE


@dataclass(frozen=True)
class FleetCell:
    """One planned unit of work: a workload at one parameter point."""

    index: int
    workload_id: str
    seed: int
    params: Dict[str, object]
    repeat: int = 0

    @property
    def name(self) -> str:
        """The cell's canonical label (trace/cache file stem)."""
        return f"cell-{self.index:04d}"


@dataclass(frozen=True)
class FleetMatrix:
    """A declarative sweep: workloads x parameter axes x repeats."""

    workloads: Tuple[str, ...]
    base_seed: int = 0
    axes: Dict[str, Tuple[object, ...]] = field(default_factory=dict)
    repeats: int = 1
    imports: Tuple[str, ...] = ()

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dict(cls, doc: object) -> "FleetMatrix":
        """Parse and structurally validate a ``repro.matrix/v1`` dict."""
        if not isinstance(doc, dict):
            raise FleetError(
                f"matrix: expected object, got {type(doc).__name__}")
        schema = doc.get("schema", MATRIX_SCHEMA)
        if schema != MATRIX_SCHEMA:
            raise FleetError(f"matrix schema: expected {MATRIX_SCHEMA!r}, "
                             f"got {schema!r}")
        workloads = cls._parse_workloads(doc)
        base_seed = doc.get("base_seed", 0)
        if not isinstance(base_seed, int) or isinstance(base_seed, bool):
            raise FleetError("matrix base_seed: expected int")
        axes = cls._parse_axes(doc.get("axes", {}))
        repeats = doc.get("repeats", 1)
        if (not isinstance(repeats, int) or isinstance(repeats, bool)
                or repeats < 1):
            raise FleetError("matrix repeats: expected int >= 1")
        imports = doc.get("imports", [])
        if (not isinstance(imports, list)
                or not all(isinstance(m, str) for m in imports)):
            raise FleetError("matrix imports: expected array of module names")
        return cls(workloads=workloads, base_seed=base_seed, axes=axes,
                   repeats=repeats, imports=tuple(imports))

    @staticmethod
    def _parse_workloads(doc: Mapping[str, object]) -> Tuple[str, ...]:
        if "workloads" in doc and "workload" in doc:
            raise FleetError("matrix: give workload or workloads, not both")
        raw = doc.get("workloads", doc.get("workload"))
        if isinstance(raw, str):
            raw = [raw]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(w, str) for w in raw)):
            raise FleetError("matrix workloads: expected a workload id or a "
                             "non-empty array of ids")
        return tuple(raw)

    @staticmethod
    def _parse_axes(raw: object) -> Dict[str, Tuple[object, ...]]:
        if not isinstance(raw, dict):
            raise FleetError("matrix axes: expected object")
        axes: Dict[str, Tuple[object, ...]] = {}
        for name in sorted(raw):
            values = raw[name]
            if not isinstance(name, str):
                raise FleetError(f"matrix axes: axis name {name!r} is not a "
                                 "string")
            if not isinstance(values, list) or not values:
                raise FleetError(f"matrix axes.{name}: expected a non-empty "
                                 "array of values")
            for value in values:
                if not isinstance(value, _SCALAR_TYPES):
                    raise FleetError(
                        f"matrix axes.{name}: value {value!r} is not a "
                        "JSON scalar")
            axes[name] = tuple(values)
        return axes

    @classmethod
    def from_file(cls, path: str) -> "FleetMatrix":
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as exc:
            raise FleetError(f"matrix file {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FleetError(f"matrix file {path!r}: invalid JSON "
                             f"({exc})") from exc
        return cls.from_dict(doc)

    # -- canonical form ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON form (axes sorted by name)."""
        return {"schema": MATRIX_SCHEMA,
                "workloads": list(self.workloads),
                "base_seed": self.base_seed,
                "axes": {name: list(self.axes[name])
                         for name in sorted(self.axes)},
                "repeats": self.repeats,
                "imports": list(self.imports)}

    def spec_hash(self) -> str:
        """sha256 of the canonical JSON form — the cell-cache key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- enumeration ---------------------------------------------------------
    def cells(self) -> List[FleetCell]:
        """Every cell, in canonical order with derived seeds.

        Order: workloads as listed, then the Cartesian product of axes
        (axis names sorted, values in listed order), then repeats.  The
        cell index is the position in this enumeration, and the cell
        seed is :func:`cell_seed` of ``(index, base_seed)``.
        """
        axis_names = sorted(self.axes)
        combos = list(itertools.product(
            *(self.axes[name] for name in axis_names))) or [()]
        cells: List[FleetCell] = []
        index = 0
        for workload_id in self.workloads:
            for combo in combos:
                for repeat in range(self.repeats):
                    cells.append(FleetCell(
                        index=index, workload_id=workload_id,
                        seed=cell_seed(index, self.base_seed),
                        params=dict(zip(axis_names, combo)),
                        repeat=repeat))
                    index += 1
        return cells

    def validate_against_registry(self) -> List[str]:
        """Check every workload exists and every axis fits its schema.

        Call after applying ``imports`` (the modules that register
        matrix-local workloads).  Returns error strings.
        """
        from repro.experiments.base import get_spec
        from repro.net.errors import ReproError

        errors: List[str] = []
        for workload_id in self.workloads:
            try:
                spec = get_spec(workload_id)
            except ReproError as exc:
                errors.append(str(exc))
                continue
            for name in sorted(self.axes):
                for value in self.axes[name]:
                    errors.extend(spec.validate_params({name: value}))
        return errors
