"""repro.measure: the deterministic measurement plane.

Simulated RTT probing on top of the forwarding engine and the shared
event scheduler — the sim analogue of dataplane RTT measurement:

* :class:`DelayOracle` — delay-weighted shortest paths over live links
  (the "actual" side of observed-vs-actual comparisons);
* :class:`ProbePlan` / :class:`ProbeTarget` — a declarative probe
  schedule: vantage set × anycast/unicast targets × sim-time interval;
* :class:`ProbeEngine` — runs a plan from scheduler clock advances
  (pulled, never queued, so probe plans compose with fault plans
  without perturbing reconvergence), records :class:`ProbeSample`
  series, and emits ``probe.rtt`` trace events under ``probe.round``
  spans when observability is enabled.

RTTs are twice the one-way delay-weighted path latency (symmetric
return paths — the probe reply retraces the forward path), so observed
RTT divided by the oracle's best-replica RTT is the inflation a user at
the vantage experiences.  See ``docs/measurement.md``.
"""

from __future__ import annotations

from repro.measure.engine import ProbeEngine, ProbeSample
from repro.measure.oracle import DelayOracle, delay_tree
from repro.measure.plan import ProbePlan, ProbeTarget

__all__ = ["DelayOracle", "ProbeEngine", "ProbePlan", "ProbeSample",
           "ProbeTarget", "delay_tree"]
