"""The deterministic RTT probe engine.

A :class:`ProbeEngine` executes a :class:`~repro.measure.plan.ProbePlan`
against a live scenario.  It is *pulled* from the event scheduler's
clock advances (:meth:`EventScheduler.attach_probe_engine`), never
scheduled as queue events, for two composition reasons:

* ``run_until_idle`` drains the whole queue regardless of timestamps
  (convergence in this library means "the queue drained"), so queued
  probe ticks would fire mid-reconvergence and corrupt fault epochs'
  convergence accounting;
* a pending probe tick must not keep the queue alive or overrun a
  fault epoch's ``run_until`` target.

The pull contract instead fires every due round exactly when the clock
first reaches (or passes) its tick, which with a
:class:`~repro.faults.FaultInjector` gives the stream-order invariant
the catchment analyzer relies on: probes due at or before a fault
boundary ``t`` are emitted *before* that boundary's ``fault.apply``
event, because the injector's ``run_until(t)`` advances the clock (and
therefore fires the probes) before applying the fault.

Every probe is one real forwarding walk from the vantage —
loss during a blackhole epoch shows up as an undelivered sample (a gap
in the RTT series), not an exception.  Samples are recorded whether or
not observability is enabled; with it enabled each round runs under a
``probe.rtt``-parenting ``probe.round`` span and emits one ``probe.rtt``
event per probe.  Those events deliberately carry **no span ids**: the
flow fast path elides spans for cached walks, and keeping span ids out
of the measurement stream is what makes same-seed probe series and
catchment reports byte-identical with the fast path on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.measure.oracle import DelayOracle
from repro.measure.plan import ProbePlan, ProbeTarget
from repro.net.errors import MeasureError
from repro.net.forwarding import ForwardingEngine
from repro.net.network import Network
from repro.net.packet import ipv4_packet
from repro.net.simulator import EventScheduler
from repro.obs import AbstractSpan, get_obs


@dataclass(frozen=True)
class ProbeSample:
    """One probe observation: what a user at *vantage* measured at *t*.

    ``rtt`` is twice the one-way delay-weighted walk latency (symmetric
    return assumption); ``None`` when the probe was not delivered.
    ``best_rtt``/``best_replica`` are the oracle's ground truth at
    probe time — the delay-closest live replica the network could have
    served — so ``rtt / best_rtt`` is the catchment's RTT inflation.
    """

    t: float
    round: int
    vantage: str
    target: str
    kind: str
    outcome: str
    rtt: Optional[float]
    latency: Optional[float]
    replica: Optional[str]
    best_replica: Optional[str]
    best_rtt: Optional[float]
    physical_hops: int
    faulted: bool

    @property
    def delivered(self) -> bool:
        return self.replica is not None

    def to_dict(self) -> Dict[str, object]:
        """Stable-key, JSON-safe form (the unified ``to_dict`` contract)."""
        return {"t": self.t, "round": self.round, "vantage": self.vantage,
                "target": self.target, "kind": self.kind,
                "outcome": self.outcome, "rtt": self.rtt,
                "latency": self.latency, "replica": self.replica,
                "best_replica": self.best_replica, "best_rtt": self.best_rtt,
                "physical_hops": self.physical_hops, "faulted": self.faulted}


class ProbeEngine:
    """Runs one probe plan on a scenario's scheduler clock.

    Parameters
    ----------
    scheduler:
        The scenario's :class:`EventScheduler`; the engine attaches to
        its clock advances when armed.
    forwarding:
        The :class:`ForwardingEngine` probes walk through (use the
        orchestrator's engine so probes see the same FIBs, fast path,
        and fault state as real traffic).
    network:
        The topology, for vantage/target resolution and the delay
        oracle.
    plan:
        The declarative probe schedule.
    replicas:
        Zero-arg callable returning the *live* replica node ids of the
        anycast service (e.g. ``deployment.live_members``).  Required
        when the plan declares anycast targets; consulted at every
        probe so ground truth tracks fault epochs.
    """

    def __init__(self, scheduler: EventScheduler,
                 forwarding: ForwardingEngine, network: Network,
                 plan: ProbePlan,
                 replicas: Optional[Callable[[], Iterable[str]]] = None
                 ) -> None:
        plan.validate(network)
        if (replicas is None
                and any(t.kind == "anycast" for t in plan.targets)):
            raise MeasureError(
                "plan declares anycast targets but no replicas callback "
                "was given")
        self.scheduler = scheduler
        self.forwarding = forwarding
        self.network = network
        self.plan = plan
        self.oracle = DelayOracle(network)
        self.samples: List[ProbeSample] = []
        self.obs = get_obs()
        self._replicas = replicas
        self._base = 0.0
        self._next_round = plan.rounds  # not armed yet
        self._armed = False

    # -- lifecycle -----------------------------------------------------------
    def arm(self) -> None:
        """Start the plan: round ticks become relative to the current
        sim time and the engine begins firing from clock advances
        (round 0 fires immediately when ``plan.start`` is 0)."""
        if self._armed:
            raise MeasureError("probe engine is already armed")
        self._armed = True
        self._base = self.scheduler.now
        self._next_round = 0
        self.scheduler.attach_probe_engine(self)

    def finish(self) -> None:
        """Advance the clock through any rounds still due, then detach.

        Call after the scenario's last fault epoch/workload so the plan
        tail (rounds scheduled past the final event) still fires.
        """
        if not self._armed:
            raise MeasureError("probe engine was never armed")
        if self._next_round < self.plan.rounds:
            self.scheduler.run_until(self._base + self.plan.final_tick)
        self.scheduler.detach_probe_engine()
        self._armed = False

    def tick(self, round_index: int) -> float:
        """Absolute sim time at which round *round_index* fires."""
        return self._base + self.plan.tick(round_index)

    def on_advance(self, now: float) -> None:
        """Scheduler pull hook: fire every round whose tick has been
        reached.  Multiple due rounds (a long clock jump) fire in
        order, each stamped with its own tick time."""
        while (self._next_round < self.plan.rounds
               and self.tick(self._next_round) <= now):
            index = self._next_round
            self._next_round += 1
            self._run_round(index, self.tick(index))

    # -- probing -------------------------------------------------------------
    def _run_round(self, index: int, t: float) -> None:
        obs = self.obs
        span: Optional[AbstractSpan] = None
        if obs.enabled:
            span = obs.span("probe.round", t=t, round=index,
                            probes=self.plan.probes_per_round).start(t=t)
        try:
            for vantage in self.plan.vantages:
                for target in self.plan.targets:
                    self._probe_one(index, t, vantage, target, span)
        finally:
            if span is not None:
                span.end(t=t)
        if obs.enabled:
            obs.counter("measure.rounds").inc()

    def _probe_one(self, index: int, t: float, vantage: str,
                   target: ProbeTarget, span: Optional[AbstractSpan]) -> None:
        node = self.network.node(vantage)
        packet = ipv4_packet(node.ipv4, target.dst)
        if span is not None:
            packet.span = span.context
        trace = self.forwarding.forward(packet, vantage)
        delivered = trace.delivered
        replica = trace.delivered_to if delivered else None
        rtt = 2.0 * trace.latency if delivered else None
        best = self._ground_truth(vantage, target)
        best_replica = best[0] if best is not None else None
        best_rtt = 2.0 * best[1] if best is not None else None
        sample = ProbeSample(
            t=t, round=index, vantage=vantage, target=target.name,
            kind=target.kind, outcome=trace.outcome.value, rtt=rtt,
            latency=trace.latency if delivered else None, replica=replica,
            best_replica=best_replica, best_rtt=best_rtt,
            physical_hops=trace.physical_hops, faulted=trace.faulted)
        self.samples.append(sample)
        obs = self.obs
        if obs.enabled:
            obs.counter("measure.probes_sent").inc()
            if delivered:
                obs.counter("measure.probes_delivered").inc()
                if rtt is not None:
                    obs.histogram("measure.rtt").observe(rtt)
            else:
                obs.counter("measure.probes_lost").inc()
            fields = sample.to_dict()
            # "t" rides on the event itself; "kind" names the event, so
            # the target kind travels as "target_kind".
            del fields["t"]
            fields["target_kind"] = fields.pop("kind")
            obs.event("probe.rtt", t=t, **fields)

    def _ground_truth(self, vantage: str, target: ProbeTarget
                      ) -> Optional[Tuple[str, float]]:
        if target.kind == "anycast":
            assert self._replicas is not None  # enforced at construction
            return self.oracle.best_replica(vantage, self._replicas())
        delay = self.oracle.delay(vantage, target.name)
        if delay is None:
            return None
        return (target.name, delay)

    # -- results -------------------------------------------------------------
    def series(self) -> Dict[str, object]:
        """The full probe series as one stable-key, JSON-safe document.

        Contains no span ids, no wall-clock fields, and no file paths,
        so same-seed series are byte-identical once JSON-dumped with
        sorted keys — at any worker count, with the flow fast path on
        or off, and with the path cache on or off.
        """
        delivered = sum(1 for s in self.samples if s.delivered)
        return {"plan": self.plan.to_dict(),
                "probes": len(self.samples),
                "delivered": delivered,
                "lost": len(self.samples) - delivered,
                "samples": [s.to_dict() for s in self.samples]}
