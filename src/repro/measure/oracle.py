"""Delay-weighted shortest paths: the measurement ground truth.

The forwarding plane routes by *cost* (longest-prefix match over FIBs
that IGP/BGP populated from ``Link.cost``), but a user experiences
*delay*.  The oracle answers "what is the lowest-latency path physics
allows right now?" by running Dijkstra over ``Link.delay`` on live
links and live nodes — deliberately separate from
:meth:`repro.net.network.Network.shortest_path` and its
:class:`~repro.perf.cache.PathCache` so enabling or disabling the path
cache cannot perturb measurement ground truth (recomputation is
bit-identical either way).

Trees are memoized per source and invalidated wholesale whenever
``Network.topology_version`` changes (link/node state flips during
fault epochs), mirroring the cache-coherence rule the path cache
follows.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.network import Network
from repro.obs import get_obs


def delay_tree(network: Network, src: str) -> Dict[str, float]:
    """Single-source shortest *delay* to every reachable live node.

    Live means: the link is up and both endpoints are up (a crashed
    router forwards nothing, so paths through it do not exist for a
    user).  Deterministic for a fixed topology: strict-``<``
    relaxation with ties broken by heap ``(delay, node_id)`` order,
    exactly like the cost Dijkstra in :mod:`repro.net.network`.
    """
    if not network.node(src).up:
        return {}
    dist: Dict[str, float] = {src: 0.0}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        for v, link in network.neighbors(u):
            if not network.node(v).up:
                continue
            nd = d + link.delay
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class DelayOracle:
    """Memoized :func:`delay_tree` lookups, topology-version coherent.

    Construct one per scenario (no module-level instances — the memo is
    mutable state) and ask it for delays as faults come and go; cached
    trees are dropped the moment ``network.topology_version`` moves.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._trees: Dict[str, Dict[str, float]] = {}
        self._version = network.topology_version
        self.obs = get_obs()

    def tree(self, src: str) -> Dict[str, float]:
        version = self.network.topology_version
        if version != self._version:
            self._trees.clear()
            self._version = version
        cached = self._trees.get(src)
        if cached is not None:
            if self.obs.enabled:
                self.obs.counter("perf.probe.delay_tree_hits").inc()
            return cached
        if self.obs.enabled:
            self.obs.counter("perf.probe.delay_tree_misses").inc()
            self.obs.counter("measure.delay_spf_runs").inc()
        tree = delay_tree(self.network, src)
        self._trees[src] = tree
        return tree

    def delay(self, src: str, dst: str) -> Optional[float]:
        """One-way best delay from *src* to *dst*; None if unreachable."""
        return self.tree(src).get(dst)

    def best_replica(self, src: str,
                     replicas: Iterable[str]) -> Optional[Tuple[str, float]]:
        """(replica, one-way delay) of the delay-closest live replica.

        Ties break to the lexicographically smallest replica id, so the
        answer is deterministic regardless of *replicas* input order.
        """
        tree = self.tree(src)
        best: Optional[Tuple[str, float]] = None
        for rid in sorted(set(replicas)):
            d = tree.get(rid)
            if d is None:
                continue
            if best is None or d < best[1]:
                best = (rid, d)
        return best
