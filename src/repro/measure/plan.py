"""Declarative probe plans.

A :class:`ProbePlan` is pure data — which vantages probe which targets,
how often, how many times — validated up front against a network so
the engine can assume every referenced node exists.  Plans are frozen
(hashable, reusable across scenarios) and times are *relative to arm
time*, matching :class:`repro.faults.FaultPlan` semantics so a probe
plan and a fault plan written against the same timeline line up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net.address import IPv4Address
from repro.net.errors import MeasureError
from repro.net.network import Network

#: Target kinds a plan may declare.
TARGET_KINDS = ("unicast", "anycast")


@dataclass(frozen=True)
class ProbeTarget:
    """One probed destination address.

    ``name`` identifies the target in samples and reports: for
    ``unicast`` targets it must be the destination *node id* (the
    oracle uses it for the ground-truth delay); for ``anycast`` targets
    it is a label for the replica set (e.g. the deployment's anycast
    address) and ground truth comes from the engine's live-replica
    callback instead.
    """

    name: str
    dst: IPv4Address
    kind: str = "unicast"


@dataclass(frozen=True)
class ProbePlan:
    """vantages × targets, probed every *interval* for *rounds* rounds.

    Round *i* fires at ``arm_time + start + i * interval`` sim-time.
    Probe order within a round is the declared vantage order crossed
    with the declared target order — deterministic by construction.
    """

    vantages: Tuple[str, ...]
    targets: Tuple[ProbeTarget, ...]
    interval: float = 5.0
    start: float = 0.0
    rounds: int = 10

    def __post_init__(self) -> None:
        if not self.vantages:
            raise MeasureError("probe plan has no vantages")
        if not self.targets:
            raise MeasureError("probe plan has no targets")
        if len(set(self.vantages)) != len(self.vantages):
            raise MeasureError("probe plan vantages contain duplicates")
        if self.interval <= 0:
            raise MeasureError(
                f"probe interval must be positive, got {self.interval}")
        if self.start < 0:
            raise MeasureError(
                f"probe start must be >= 0, got {self.start}")
        if self.rounds < 1:
            raise MeasureError(
                f"probe plan needs at least one round, got {self.rounds}")
        for target in self.targets:
            if target.kind not in TARGET_KINDS:
                raise MeasureError(
                    f"unknown target kind {target.kind!r} for "
                    f"{target.name!r}; choose from {TARGET_KINDS}")

    @property
    def probes_per_round(self) -> int:
        return len(self.vantages) * len(self.targets)

    def tick(self, round_index: int) -> float:
        """Plan-relative fire time of round *round_index*."""
        return self.start + round_index * self.interval

    @property
    def final_tick(self) -> float:
        return self.tick(self.rounds - 1)

    def validate(self, network: Network) -> None:
        """Raise :class:`MeasureError` on references to unknown nodes."""
        for vantage in self.vantages:
            try:
                network.node(vantage)
            except Exception as exc:
                raise MeasureError(
                    f"unknown probe vantage {vantage!r}") from exc
        for target in self.targets:
            if target.kind == "unicast":
                try:
                    network.node(target.name)
                except Exception as exc:
                    raise MeasureError(
                        f"unicast probe target {target.name!r} must be a "
                        "node id") from exc

    def to_dict(self) -> Dict[str, object]:
        """Stable-key, JSON-safe form (the unified ``to_dict`` contract)."""
        return {"vantages": list(self.vantages),
                "targets": [{"name": t.name, "dst": str(t.dst),
                             "kind": t.kind} for t in self.targets],
                "interval": self.interval,
                "start": self.start,
                "rounds": self.rounds}
