"""Network substrate: addresses, packets, nodes, links, forwarding, events."""

from repro.net.address import (IPV4_BITS, VN_BITS, Address, IPv4Address, Prefix,
                               VNAddress, ipv4, prefix)
from repro.net.domain import Domain, Relationship
from repro.net.errors import (AddressError, ConvergenceError, DeploymentError,
                              FaultDropError, FaultError, ForwardingError,
                              ForwardingLoopError, NoRouteError,
                              RedirectionError, ReproError, RoutingError,
                              SimulationError, TopologyError, TTLExpiredError)
from repro.net.forwarding import (ForwardingEngine, ForwardingTrace, HopRecord,
                                  Outcome, VnDecision, VnDeliver, VnDrop, VnEgress,
                                  VnForward)
from repro.net.link import Link, LinkScope
from repro.net.network import Network
from repro.net.node import Fib, FibEntry, Host, Node, NodeKind, Router, RouteSource
from repro.net.packet import (DEFAULT_TTL, Header, IPv4Header, Packet, VNHeader,
                              ipv4_packet, vn_packet)
from repro.net.simulator import (EventHandle, EventScheduler, MessagePerturbation,
                                 MessageStats)
from repro.net.trie import PrefixTrie

__all__ = [
    "IPV4_BITS", "VN_BITS", "Address", "IPv4Address", "Prefix", "VNAddress",
    "ipv4", "prefix", "Domain", "Relationship", "AddressError",
    "ConvergenceError", "DeploymentError", "FaultDropError", "FaultError",
    "ForwardingError",
    "ForwardingLoopError", "NoRouteError", "RedirectionError", "ReproError",
    "RoutingError", "SimulationError", "TopologyError", "TTLExpiredError",
    "ForwardingEngine", "ForwardingTrace", "HopRecord", "Outcome", "VnDecision",
    "VnDeliver", "VnDrop", "VnEgress", "VnForward", "Link", "LinkScope",
    "Network", "Fib", "FibEntry", "Host", "Node", "NodeKind", "Router",
    "RouteSource", "DEFAULT_TTL", "Header", "IPv4Header", "Packet", "VNHeader",
    "ipv4_packet", "vn_packet", "EventHandle", "EventScheduler",
    "MessagePerturbation", "MessageStats", "PrefixTrie",
]
