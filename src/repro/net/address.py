"""Addresses and prefixes for IPv4 and next-generation IPvN.

The paper's mechanisms operate on two address families:

* the ubiquitously deployed generation, modeled here as 32-bit IPv4,
* the next generation ``IPvN`` (the paper's examples use IPv8), modeled
  as a 64-bit space with a *self-addressing* convention: the top bit set
  marks an address that an endhost assigned itself by embedding its
  IPv4 address in the low 32 bits (RFC 3056-style, Section 3.3.2).

Addresses are thin, hashable, totally ordered wrappers around ints so
they can key dicts and sort deterministically.  Prefixes support
containment tests and are the keys of the longest-prefix-match tries in
:mod:`repro.net.trie`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.net.errors import AddressError

IPV4_BITS = 32
VN_BITS = 64

#: Top bit of a VNAddress marks a self-assigned (RFC3056-style) address.
SELF_ADDRESS_FLAG = 1 << (VN_BITS - 1)


def _check_value(value: int, bits: int) -> int:
    if not isinstance(value, int):
        raise AddressError(f"address value must be int, got {type(value).__name__}")
    if value < 0 or value >= (1 << bits):
        raise AddressError(f"address value {value:#x} out of range for {bits}-bit family")
    return value


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    value: int

    BITS = IPV4_BITS

    def __post_init__(self) -> None:
        _check_value(self.value, IPV4_BITS)

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"10.0.0.1"``."""
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise AddressError(f"malformed IPv4 address {text!r}") from exc
            if not 0 <= octet <= 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return ".".join(str(o) for o in octets)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


@dataclass(frozen=True, order=True)
class VNAddress:
    """An IPvN (next-generation) address: a 64-bit value plus a version tag.

    The version tag (e.g. 8 for the paper's IPv8) is carried for clarity
    in traces but does not participate in ordering beyond the value; a
    simulation runs one vN-Bone per version, so addresses of different
    versions never share a routing table.
    """

    value: int
    version: int = 8

    BITS = VN_BITS

    def __post_init__(self) -> None:
        _check_value(self.value, VN_BITS)
        if self.version < 5:
            raise AddressError(f"IPvN version must be >= 5, got {self.version}")

    @property
    def is_self_assigned(self) -> bool:
        """True for a temporary self-assigned address (top bit set)."""
        return bool(self.value & SELF_ADDRESS_FLAG)

    @classmethod
    def self_assigned(cls, ipv4: IPv4Address, version: int = 8) -> "VNAddress":
        """Derive a temporary IPvN address from an IPv4 address.

        Following Section 3.3.2: one address bit indicates self
        addressing and the remaining bits are derived from the host's
        unique IPv(N-1) address.
        """
        return cls(SELF_ADDRESS_FLAG | ipv4.value, version=version)

    def embedded_ipv4(self) -> IPv4Address:
        """Recover the IPv4 address embedded in a self-assigned address."""
        if not self.is_self_assigned:
            raise AddressError(f"{self} is not self-assigned; no embedded IPv4 address")
        return IPv4Address(self.value & 0xFFFF_FFFF)

    def __str__(self) -> str:
        tag = "self" if self.is_self_assigned else "native"
        return f"v{self.version}:{self.value:016x}/{tag}"

    def __repr__(self) -> str:
        return f"VNAddress({self.value:#x}, version={self.version})"


Address = Union[IPv4Address, VNAddress]


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix over either address family.

    The family is implied by the wrapped address type.  The network
    address is canonicalized (host bits zeroed) at construction.
    """

    address: Address
    plen: int

    def __post_init__(self) -> None:
        bits = self.address.BITS
        if not 0 <= self.plen <= bits:
            raise AddressError(f"prefix length {self.plen} out of range for {bits}-bit family")
        masked = self.address.value & self.mask()
        if masked != self.address.value:
            object.__setattr__(self, "address", type(self.address)(masked) if isinstance(
                self.address, IPv4Address) else VNAddress(masked, version=self.address.version))

    @property
    def bits(self) -> int:
        """Width of the address family in bits."""
        return self.address.BITS

    def mask(self) -> int:
        """The network mask as an int."""
        bits = self.address.BITS
        if self.plen == 0:
            return 0
        return ((1 << self.plen) - 1) << (bits - self.plen)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/8"`` (IPv4 only; VN prefixes are built directly)."""
        addr_text, _, plen_text = text.partition("/")
        if not plen_text:
            raise AddressError(f"prefix {text!r} missing /len")
        try:
            plen = int(plen_text)
        except ValueError as exc:
            raise AddressError(f"malformed prefix length in {text!r}") from exc
        return cls(IPv4Address.parse(addr_text), plen)

    @classmethod
    def host(cls, address: Address) -> "Prefix":
        """The host route (/32 or /64) for *address*."""
        return cls(address, address.BITS)

    def contains(self, item: Union[Address, "Prefix"]) -> bool:
        """Whether *item* (an address or a more-specific prefix) falls inside."""
        if isinstance(item, Prefix):
            if type(item.address) is not type(self.address):
                return False
            if item.plen < self.plen:
                return False
            value = item.address.value
        else:
            if type(item) is not type(self.address):
                return False
            value = item.value
        return (value & self.mask()) == self.address.value

    def key_bits(self) -> Iterator[int]:
        """The prefix's bits, most significant first (trie key)."""
        bits = self.address.BITS
        for i in range(self.plen):
            yield (self.address.value >> (bits - 1 - i)) & 1

    def sort_key(self) -> str:
        """The canonical deterministic sort key — ``str(self)``, cached.

        Hot control-plane loops (Loc-RIB installation, Adj-RIB-In
        flushes, reannouncements) sort prefix collections on every
        pass; rendering the dotted-quad string each call dominated
        those sorts at scale.  The key is computed once per instance
        and memoized — safe because the dataclass is frozen, and
        equal prefixes render equal strings.  ``sorted(prefixes,
        key=Prefix.sort_key)`` orders exactly like the historical
        ``key=str`` sort (the regression test in ``tests/net``
        locks this).
        """
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = str(self)
            object.__setattr__(self, "_sort_key", key)
        return key

    def __str__(self) -> str:
        return f"{self.address}/{self.plen}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def ipv4(text_or_value: Union[str, int]) -> IPv4Address:
    """Convenience constructor: ``ipv4("10.0.0.1")`` or ``ipv4(0x0a000001)``."""
    if isinstance(text_or_value, str):
        return IPv4Address.parse(text_or_value)
    return IPv4Address(text_or_value)


def prefix(text: str) -> Prefix:
    """Convenience constructor: ``prefix("10.0.0.0/8")``."""
    return Prefix.parse(text)
