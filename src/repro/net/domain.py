"""Domains (autonomous systems) and inter-domain business relationships.

A :class:`Domain` groups routers and hosts under one administrative
authority: an ISP.  Each domain owns a unicast address block out of
which its routers, hosts — and, for the paper's "default ISP" anycast
scheme (Section 3.2 option 2), anycast addresses — are allocated.

Relationships between domains follow the standard Gao-Rexford model
(customer / provider / peer) which drives BGP export policy, and — per
the paper — also drives which neighbors an adopting ISP chooses to
advertise its anycast route to, and which inter-domain vN-Bone tunnels
get set up.

Deployment state lives here too: ``deployed_versions`` says which IPvN
generations this ISP offers, and ``vn_routers`` records *which* of its
routers run IPvN — assumption A1 requires mechanisms to work when only
a subset of an ISP's routers are upgraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.net.address import IPv4Address, Prefix
from repro.net.errors import AddressError, DeploymentError, TopologyError


class Relationship(Enum):
    """The business relationship a domain has *with* a neighbor.

    ``CUSTOMER`` means the neighbor is this domain's customer (they pay
    us); ``PROVIDER`` means the neighbor is our transit provider; peers
    exchange traffic settlement-free.
    """

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"

    def reverse(self) -> "Relationship":
        """The relationship as seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


@dataclass
class Domain:
    """One ISP / autonomous system."""

    asn: int
    name: str
    prefix: Prefix
    #: Option-1 participation (Section 3.2): whether this ISP's routing
    #: policy permits propagating non-aggregatable anycast prefixes.
    propagates_anycast: bool = True
    tier: int = 2
    #: Scale-tier stubs: this AS does not speak BGP.  Its address block
    #: is a provider-assigned sub-block of its provider's aggregate, it
    #: points a static default route at the provider, and the provider
    #: carries a static route for the sub-block (see
    #: :mod:`repro.topogen.scale`).
    default_routed: bool = False

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")
        self.routers: Set[str] = set()
        self.border_routers: Set[str] = set()
        self.hosts: Set[str] = set()
        self.relationships: Dict[int, Relationship] = {}
        #: Section 3.1: "ISP W might, based on peering policies, choose
        #: to route anycast packets to ISP X before Y."  Local-pref
        #: overrides for anycast routes, keyed by the route's origin AS.
        #: Redirection control stays with ISPs, decentralized.
        self.anycast_origin_pref: Dict[int, int] = {}
        #: IPvN versions this ISP has deployed (possibly partially).
        self.deployed_versions: Set[int] = set()
        #: Per version, the subset of this ISP's routers running IPvN.
        self.vn_routers: Dict[int, Set[str]] = {}
        self._next_host_value = self.prefix.address.value + 1
        self._allocated: Set[IPv4Address] = set()

    def set_anycast_preference(self, origin_asn: int, local_pref: int) -> None:
        """Prefer (or depref) anycast routes originated by *origin_asn*."""
        self.anycast_origin_pref[origin_asn] = local_pref

    def clear_anycast_preferences(self) -> None:
        self.anycast_origin_pref.clear()

    # -- address allocation ---------------------------------------------
    def allocate_ipv4(self) -> IPv4Address:
        """Hand out the next unused address from this domain's block."""
        limit = self.prefix.address.value + (1 << (32 - self.prefix.plen))
        while self._next_host_value < limit:
            address = IPv4Address(self._next_host_value)
            self._next_host_value += 1
            if address not in self._allocated:
                self._allocated.add(address)
                return address
        raise AddressError(f"domain AS{self.asn} exhausted its block {self.prefix}")

    def reserve_ipv4(self, address: IPv4Address) -> IPv4Address:
        """Mark a specific in-block address as used (for anycast roots)."""
        if not self.prefix.contains(address):
            raise AddressError(f"{address} is outside AS{self.asn}'s block {self.prefix}")
        if address in self._allocated:
            raise AddressError(f"{address} already allocated in AS{self.asn}")
        self._allocated.add(address)
        return address

    # -- relationships ----------------------------------------------------
    def set_relationship(self, neighbor_asn: int, rel: Relationship) -> None:
        if neighbor_asn == self.asn:
            raise TopologyError(f"AS{self.asn} cannot have a relationship with itself")
        self.relationships[neighbor_asn] = rel

    def relationship_with(self, neighbor_asn: int) -> Optional[Relationship]:
        return self.relationships.get(neighbor_asn)

    def customers(self) -> List[int]:
        return [asn for asn, rel in self.relationships.items() if rel is Relationship.CUSTOMER]

    def providers(self) -> List[int]:
        return [asn for asn, rel in self.relationships.items() if rel is Relationship.PROVIDER]

    def peers(self) -> List[int]:
        return [asn for asn, rel in self.relationships.items() if rel is Relationship.PEER]

    def neighbor_asns(self) -> List[int]:
        return list(self.relationships)

    # -- IPvN deployment ---------------------------------------------------
    def deploys(self, version: int) -> bool:
        """Whether this ISP has (at least partially) deployed IPvN."""
        return version in self.deployed_versions

    def deploy_version(self, version: int, router_ids: Set[str]) -> None:
        """Record that *router_ids* (a subset of our routers) now run IPvN.

        Partial deployment within the ISP (assumption A1) is the normal
        case; pass all routers for a full upgrade.
        """
        unknown = router_ids - self.routers
        if unknown:
            raise DeploymentError(
                f"AS{self.asn} cannot deploy IPv{version} on foreign routers {sorted(unknown)}")
        if not router_ids:
            raise DeploymentError(f"AS{self.asn}: deployment needs at least one router")
        self.deployed_versions.add(version)
        self.vn_routers.setdefault(version, set()).update(router_ids)

    def undeploy_version(self, version: int) -> None:
        """Roll IPvN back entirely (used for churn experiments)."""
        self.deployed_versions.discard(version)
        self.vn_routers.pop(version, None)

    def vn_router_ids(self, version: int) -> Set[str]:
        """This ISP's IPvN-capable routers for *version* (may be empty)."""
        return set(self.vn_routers.get(version, set()))

    def __str__(self) -> str:
        return f"AS{self.asn}({self.name}, tier{self.tier}, {self.prefix})"
