"""Exception hierarchy for the repro simulator.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An address or prefix was malformed or out of range."""


class TopologyError(ReproError):
    """The network topology is inconsistent (unknown node, duplicate link...)."""


class ForwardingError(ReproError):
    """A packet could not be forwarded (no route, TTL expired, loop...)."""


class NoRouteError(ForwardingError):
    """No FIB entry matched the packet's destination."""

    def __init__(self, node_id: str, destination: object) -> None:
        super().__init__(f"no route at {node_id!r} for destination {destination}")
        self.node_id = node_id
        self.destination = destination


class TTLExpiredError(ForwardingError):
    """The packet's TTL reached zero before delivery."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"TTL expired at {node_id!r}")
        self.node_id = node_id


class ForwardingLoopError(ForwardingError):
    """The forwarding engine detected a persistent loop."""


class FaultDropError(ForwardingError):
    """The packet hit injected-fault state (down link or crashed node)."""


class FaultError(ReproError):
    """A fault plan was malformed or an injector was misused."""


class RoutingError(ReproError):
    """A routing protocol was misconfigured or reached an invalid state."""


class ConvergenceError(RoutingError):
    """A protocol failed to converge within its allotted event budget."""


class DeploymentError(ReproError):
    """An IPvN deployment action was invalid (unknown domain, re-deploy...)."""


class RedirectionError(ReproError):
    """A redirection service could not answer a query."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class WorkloadError(ReproError):
    """A workload spec was violated (bad param schema, bad runner shape)."""


class FleetError(ReproError):
    """A fleet matrix or sweep invocation was malformed."""


class MeasureError(ReproError):
    """A probe plan is malformed or references unknown nodes."""
