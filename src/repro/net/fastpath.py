"""Flow-level forwarding fast path: aggregate identical walks.

At scale, the measured hot path is the per-packet hop-by-hop walk in
:class:`~repro.net.forwarding.ForwardingEngine`: sweeps send many
packets with *identical* header stacks between the same endpoints, and
each one re-walks the same FIB lookups and re-emits the same spans.

The fast path memoizes completed walks per **flow** — the pair
``(start node, exact outermost IPv4 header)`` — and replays the cached
:class:`~repro.net.forwarding.ForwardingTrace` for subsequent packets
of the flow, recording a per-flow packet count instead of per-packet
spans.  Replay is answer-preserving because a walk is a deterministic
function of ``(start, header stack, network state, handler state)``:

* only **pure IPv4** walks are cached (one header, no encapsulation or
  decapsulation, no vN handler involvement), so the only mutable
  inputs are FIBs, link/node liveness, and local-acceptance sets;
* link/node liveness is covered by ``Network.topology_version`` — any
  mismatch clears the cache (same scheme as
  :class:`~repro.perf.cache.PathCache`);
* FIB and acceptance-set changes are covered by an explicit state
  epoch: :meth:`FlowFastPath.bump` is called by every route
  installation (``Orchestrator.converge``/``install_routes``) and
  vN-Bone rebuild;
* fault experiments bracket their epochs with :meth:`pause` /
  :meth:`resume` — while faults are being applied and measured, every
  packet takes the slow path and nothing is cached, so transient
  (pre-reconvergence) behavior is never replayed;
* only **delivered, fault-free** walks are cached, so ``strict=True``
  raise-on-failure semantics are preserved bit-for-bit.

The header key includes TTL and protocol, so flows are exact-match; a
cached trace is returned as a shared object and callers treat traces
as read-only (the same contract :class:`~repro.perf.cache.PathCache`
relies on for trees).

The process-wide default mirrors :mod:`repro.perf.cache`: consulted at
engine construction, scoped with the :func:`flow_fastpath` context
manager::

    from repro.net.fastpath import flow_fastpath

    with flow_fastpath(False):
        orch = Orchestrator(network)    # slow-path baseline

Per rule D4 the obs counters are registered behind ``obs.enabled``;
plain integer stats are always live.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.net.errors import ForwardingError
from repro.net.packet import IPv4Header, Packet
from repro.obs import get_obs

if TYPE_CHECKING:  # import cycle: forwarding.py imports this module
    from repro.net.forwarding import ForwardingTrace
    from repro.net.network import Network

#: Process-wide default consulted by every fast path at construction.
_FASTPATH_DEFAULT = True


def fastpath_enabled() -> bool:
    """The current process-wide fast-path default."""
    return _FASTPATH_DEFAULT


def set_fastpath_default(enabled: bool) -> bool:
    """Set the process-wide fast-path default; returns the previous value."""
    global _FASTPATH_DEFAULT
    previous = _FASTPATH_DEFAULT
    _FASTPATH_DEFAULT = enabled
    return previous


@contextmanager
def flow_fastpath(enabled: bool) -> Iterator[None]:
    """Scope the fast-path default; engines constructed inside the block
    keep the setting for their lifetime."""
    previous = set_fastpath_default(enabled)
    try:
        yield
    finally:
        set_fastpath_default(previous)


#: One flow: (start node, exact outer IPv4 header — frozen, hashable).
FlowKey = Tuple[str, IPv4Header]


class FlowFastPath:
    """Memoizes delivered pure-IPv4 walks per flow, per quiescent state."""

    def __init__(self, network: "Network",
                 enabled: Optional[bool] = None) -> None:
        self.network = network
        self.obs = get_obs()
        self.enabled = fastpath_enabled() if enabled is None else enabled
        self._version = network.topology_version
        self._paused = 0
        self._traces: Dict[FlowKey, "ForwardingTrace"] = {}
        self.flow_counts: Dict[FlowKey, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether lookups may be served right now."""
        return self.enabled and self._paused == 0

    @property
    def paused(self) -> bool:
        return self._paused > 0

    def pause(self) -> None:
        """Disable the fast path (nested; fault epochs bracket with this)."""
        self._paused += 1
        self._invalidate()

    def resume(self) -> None:
        if self._paused == 0:
            raise ForwardingError("fast path resume() without pause()")
        self._paused -= 1

    def bump(self) -> None:
        """Forwarding state changed (FIB install, vN-Bone rebuild):
        drop every cached flow."""
        self._invalidate()

    def _invalidate(self) -> None:
        if self._traces:
            self._traces.clear()
            self.flow_counts.clear()
            self.invalidations += 1
            if self.obs.enabled:
                self.obs.counter("perf.fastpath.invalidations").inc()
        self._version = self.network.topology_version

    def _check_version(self) -> None:
        if self.network.topology_version != self._version:
            self._invalidate()

    # -- the flow cache ----------------------------------------------------
    def key_for(self, packet: Packet, start: str) -> Optional[FlowKey]:
        """The packet's flow key, or ``None`` if it is not fast-pathable
        (anything but a single plain IPv4 header)."""
        if len(packet.headers) != 1:
            return None
        header = packet.headers[0]
        if not isinstance(header, IPv4Header):
            return None
        return (start, header)

    def lookup(self, key: FlowKey) -> Optional["ForwardingTrace"]:
        """The cached trace for *key*, counting the hit or miss."""
        self._check_version()
        trace = self._traces.get(key)
        if trace is None:
            self.misses += 1
            if self.obs.enabled:
                self.obs.counter("perf.fastpath.misses").inc()
            return None
        self.hits += 1
        self.flow_counts[key] = self.flow_counts.get(key, 0) + 1
        if self.obs.enabled:
            self.obs.counter("perf.fastpath.hits").inc()
        return trace

    def store(self, key: FlowKey, trace: "ForwardingTrace") -> bool:
        """Cache a completed slow-path walk if it is replay-safe.

        Only delivered, fault-free, encapsulation-free walks qualify:
        anything that touched a vN handler, hit injected-fault state,
        or failed to deliver re-walks every time (and raise-on-failure
        ``strict`` semantics stay exact).
        """
        if not self.active:
            return False
        if (not trace.delivered or trace.faulted
                or trace.encapsulations or trace.decapsulations
                or trace.vn_hops):
            return False
        self._check_version()
        self._traces[key] = trace
        self.flow_counts.setdefault(key, 1)
        return True

    def __len__(self) -> int:
        return len(self._traces)

    def stats(self) -> Dict[str, int]:
        """Plain-int snapshot (works without an observability handle)."""
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "flows": len(self._traces),
                "packets_aggregated": sum(self.flow_counts.values())}
