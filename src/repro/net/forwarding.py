"""The hop-by-hop forwarding engine.

This walks a packet through the network exactly the way the paper's
data plane works:

1. Plain IPv4 forwarding by longest-prefix match at every router.
2. Local delivery when a node *accepts* the outer destination — which
   is how anycast delivery happens: every IPvN router accepts the
   deployment's anycast address, so whichever IPvN router the unicast
   routing reaches first strips the outer header (Section 3.1).
3. After decapsulation, an IPvN header is handed to the node's *vN
   handler* (installed by :mod:`repro.vnbone`).  The handler decides to
   deliver, forward to a vN-Bone neighbor (the engine re-encapsulates
   in IPv4 towards that neighbor — a vN-Bone tunnel), or exit the
   vN-Bone towards an IPv4 destination (Section 3.4).

The engine never raises on routing failures during an experiment run:
it returns a :class:`ForwardingTrace` whose :class:`Outcome` and hop
records the experiments inspect.  Pass ``strict=True`` to raise
instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.net.address import IPv4Address
from repro.net.errors import (FaultDropError, ForwardingLoopError, NoRouteError,
                              TTLExpiredError)
from repro.net.fastpath import FlowFastPath
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import IPv4Header, Packet, VNHeader
from repro.obs import Observability, get_obs

DEFAULT_MAX_STEPS = 4096


class Outcome(Enum):
    """Terminal state of a forwarding walk."""

    DELIVERED = "delivered"
    NO_ROUTE = "no-route"
    TTL_EXPIRED = "ttl-expired"
    LOOP = "loop"
    NO_VN_HANDLER = "no-vn-handler"
    DROPPED = "dropped"
    #: The packet hit injected-fault state: a down link still in a FIB,
    #: or a crashed node.  Distinct from NO_ROUTE so experiments can
    #: separate transient fault loss from genuine routing holes.
    FAULT_DROPPED = "fault-dropped"
    #: The branch ended by forking into copies (multicast walks only).
    REPLICATED = "replicated"


# -- vN handler protocol -----------------------------------------------------

@dataclass(frozen=True)
class VnDeliver:
    """The IPvN destination is this node."""


@dataclass(frozen=True)
class VnForward:
    """Tunnel the packet to a vN-Bone neighbor (IPv4 encapsulation)."""

    next_vn_hop: str


@dataclass(frozen=True)
class VnEgress:
    """Exit the vN-Bone: send the IPvN packet inside IPv4 to *ipv4_dst*."""

    ipv4_dst: IPv4Address


@dataclass(frozen=True)
class VnDrop:
    """Drop the packet (no vN route, policy, ...)."""

    reason: str


@dataclass(frozen=True)
class VnEncap:
    """Push another IPvN header (vN-in-vN tunnel, e.g. multicast
    register towards the group core) and keep processing here."""

    header: "object"  # a VNHeader; typed loosely to avoid an import cycle


@dataclass(frozen=True)
class VnReplicate:
    """Fork the packet into several copies (multicast distribution).

    ``mark_downstream`` stamps the copies' IPvN header with the
    distribution flag (done once, by the group's core).  Only the
    multicast walk (:meth:`ForwardingEngine.forward_multicast`) accepts
    this decision; the unicast walk treats it as a drop.
    """

    copies: Tuple[Union[VnForward, VnEgress], ...]
    mark_downstream: bool = False


VnDecision = Union[VnDeliver, VnForward, VnEgress, VnDrop, VnEncap, VnReplicate]
VnHandler = Callable[[Node, Packet], VnDecision]


@dataclass
class HopRecord:
    """One step of the walk, for inspection and pretty traces."""

    node_id: str
    domain_id: int
    action: str
    detail: str = ""
    depth: int = 1
    #: True when this hop's action was caused by injected-fault state.
    faulted: bool = False
    #: Cumulative sim-time latency (sum of :attr:`Link.delay` over the
    #: links crossed so far) at the moment this hop was recorded.
    latency: float = 0.0

    def format(self) -> str:
        """The single rendering of a hop.

        Both ``ForwardingTrace.__str__`` and the JSONL event form
        (:meth:`to_dict`'s ``rendered`` field) use this helper, so the
        ``[depth=N]``, ``[fault]`` and ``[lat=T]`` annotations can never
        diverge between the pretty trace and the machine-readable one.
        The latency annotation only appears once delay has accumulated,
        so hops before the first link crossing render exactly as they
        did under trace schema v2.
        """
        extra = f" ({self.detail})" if self.detail else ""
        depth = f" [depth={self.depth}]" if self.depth > 1 else ""
        fault = " [fault]" if self.faulted else ""
        lat = f" [lat={self.latency:g}]" if self.latency > 0 else ""
        return (f"{self.node_id}[AS{self.domain_id}] "
                f"{self.action}{extra}{depth}{fault}{lat}")

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> Dict[str, object]:
        return {"node": self.node_id, "domain": self.domain_id,
                "action": self.action, "detail": self.detail,
                "depth": self.depth, "faulted": self.faulted,
                "latency": self.latency,
                "rendered": self.format()}


@dataclass
class ForwardingTrace:
    """The full record of a packet's journey."""

    outcome: Outcome = Outcome.DROPPED
    hops: List[HopRecord] = field(default_factory=list)
    delivered_to: Optional[str] = None
    physical_hops: int = 0
    vn_hops: int = 0
    encapsulations: int = 0
    decapsulations: int = 0
    #: First IPvN router that accepted the packet (anycast ingress).
    ingress_router: Optional[str] = None
    #: Router that exited the vN-Bone towards an IPv4 destination.
    egress_router: Optional[str] = None
    #: Last node at which the packet was carried inside the vN-Bone.
    last_vn_node: Optional[str] = None
    drop_reason: str = ""
    #: Cumulative sim-time latency of the walk: the sum of
    #: :attr:`Link.delay` over every physical link crossed.  One-way;
    #: probe RTTs double it under the symmetric-return assumption.
    latency: float = 0.0
    #: Sticky flag set at :meth:`record` time so :attr:`faulted` never
    #: has to rescan the hop list (it is read per trace by both
    #: ``_observe_trace`` and ``to_dict``).
    _fault_recorded: bool = field(default=False, repr=False)

    def record(self, node: Node, action: str, detail: str = "", depth: int = 1,
               faulted: bool = False) -> None:
        self.hops.append(HopRecord(node_id=node.node_id, domain_id=node.domain_id,
                                   action=action, detail=detail, depth=depth,
                                   faulted=faulted, latency=self.latency))
        if faulted:
            self._fault_recorded = True

    @property
    def delivered(self) -> bool:
        return self.outcome is Outcome.DELIVERED

    @property
    def faulted(self) -> bool:
        """Whether the walk encountered injected-fault state anywhere."""
        return self.outcome is Outcome.FAULT_DROPPED or self._fault_recorded

    def node_path(self) -> List[str]:
        """Distinct consecutive node ids visited, in order."""
        path: List[str] = []
        for hop in self.hops:
            if not path or path[-1] != hop.node_id:
                path.append(hop.node_id)
        return path

    def domain_path(self) -> List[int]:
        """Distinct consecutive domains traversed, in order."""
        path: List[int] = []
        for hop in self.hops:
            if not path or path[-1] != hop.domain_id:
                path.append(hop.domain_id)
        return path

    def __str__(self) -> str:
        lines = [f"outcome={self.outcome.value} delivered_to={self.delivered_to}"]
        lines.extend(f"  {hop.format()}" for hop in self.hops)
        return "\n".join(lines)

    @property
    def max_depth(self) -> int:
        """Deepest encapsulation level the packet reached."""
        return max((hop.depth for hop in self.hops), default=1)

    def to_dict(self) -> Dict[str, object]:
        """Stable-key, JSON-safe form (the unified ``to_dict`` contract)."""
        return {"outcome": self.outcome.value,
                "delivered_to": self.delivered_to,
                "physical_hops": self.physical_hops,
                "vn_hops": self.vn_hops,
                "encapsulations": self.encapsulations,
                "decapsulations": self.decapsulations,
                "max_depth": self.max_depth,
                "latency": self.latency,
                "ingress_router": self.ingress_router,
                "egress_router": self.egress_router,
                "last_vn_node": self.last_vn_node,
                "drop_reason": self.drop_reason,
                "faulted": self.faulted,
                "hops": [hop.to_dict() for hop in self.hops]}


@dataclass
class MulticastTrace:
    """Aggregate record of a multicast delivery (all branches)."""

    branches: List[ForwardingTrace] = field(default_factory=list)
    delivered_to: Set[str] = field(default_factory=set)
    transmissions: int = 0
    link_stress: Dict[Tuple[str, str], int] = field(default_factory=dict)
    truncated: bool = False

    def add_branch(self, network: Network, branch: ForwardingTrace) -> None:
        self.branches.append(branch)
        self.transmissions += branch.physical_hops
        if branch.delivered and branch.delivered_to is not None:
            self.delivered_to.add(branch.delivered_to)
        path = branch.node_path()
        for a, b in zip(path, path[1:]):
            link = network.link_between(a, b)
            if link is None:
                continue
            key = link.endpoints()
            self.link_stress[key] = self.link_stress.get(key, 0) + 1

    @property
    def max_link_stress(self) -> int:
        return max(self.link_stress.values()) if self.link_stress else 0

    def delivered_all(self, receivers: Set[str]) -> bool:
        return receivers <= self.delivered_to

    def to_dict(self) -> Dict[str, object]:
        """Stable-key, JSON-safe form (the unified ``to_dict`` contract)."""
        outcomes: Dict[str, int] = {}
        for branch in self.branches:
            key = branch.outcome.value
            outcomes[key] = outcomes.get(key, 0) + 1
        return {"branches": len(self.branches),
                "delivered_to": sorted(self.delivered_to),
                "transmissions": self.transmissions,
                "max_link_stress": self.max_link_stress,
                "link_stress": {f"{a}|{b}": count for (a, b), count
                                in sorted(self.link_stress.items())},
                "outcomes": dict(sorted(outcomes.items())),
                "truncated": self.truncated}


class ForwardingEngine:
    """Walks packets through a :class:`Network`.

    vN handlers are registered per (IPvN version) and consulted for any
    router whose per-version ``vn_states`` mark it as running that version; the
    registration is done by :mod:`repro.vnbone` when a deployment is
    instantiated.
    """

    def __init__(self, network: Network, max_steps: int = DEFAULT_MAX_STEPS,
                 obs: Optional[Observability] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.network = network
        self.max_steps = max_steps
        self._vn_handlers: Dict[int, VnHandler] = {}
        self.obs = obs if obs is not None else get_obs()
        #: Optional sim-clock callable so forwarding spans/events carry
        #: simulation time (the orchestrator wires its scheduler in).
        self.clock = clock
        #: Flow-level fast path: replays delivered pure-IPv4 walks for
        #: repeat packets of a flow while forwarding state is quiescent
        #: (see :mod:`repro.net.fastpath` for the invalidation rules).
        self.fastpath = FlowFastPath(network)
        self._outcome_counters: Dict[Outcome, object] = {
            outcome: self.obs.counter(f"forwarding.outcome.{outcome.value}")
            for outcome in Outcome}

    def register_vn_handler(self, version: int, handler: VnHandler) -> None:
        """Install the forwarding logic for IPvN *version* routers."""
        self._vn_handlers[version] = handler

    def vn_handler(self, version: int) -> Optional[VnHandler]:
        return self._vn_handlers.get(version)

    # -- the walk -----------------------------------------------------------
    def forward(self, packet: Packet, start: str, strict: bool = False) -> ForwardingTrace:
        """Run *packet* from node *start* until a terminal outcome.

        With observability enabled, the walk runs inside a ``forward``
        span: parented to the packet's carried context when present
        (replicas, re-sends), otherwise to the innermost entered span
        (e.g. a fault-epoch workload), and stamped onto the packet for
        downstream causality.  Disabled handles skip all of it behind
        the usual one ``enabled`` check.

        When the flow fast path is active and this packet repeats a
        cached flow (same start, identical pure-IPv4 header, quiescent
        forwarding state), the memoized trace is returned immediately:
        no walk, no per-packet span — the fast path records a per-flow
        packet count instead (:attr:`FlowFastPath.flow_counts`).
        """
        key = self.fastpath.key_for(packet, start) if self.fastpath.active \
            else None
        if key is not None:
            cached = self.fastpath.lookup(key)
            if cached is not None:
                return cached
        trace = ForwardingTrace()
        if not self.obs.enabled:
            self._walk(packet, self.network.node(start), trace, strict, None)
            if key is not None:
                self.fastpath.store(key, trace)
            return trace
        t = self.clock() if self.clock is not None else None
        span = self.obs.span("forward", t=t, parent=packet.span, start=start)
        if packet.span is None:
            packet.span = span.context
        with span:
            self._walk(packet, self.network.node(start), trace, strict, None)
            span.end(t=t, **self._span_fields(trace))
        self._observe_trace(trace, start)
        if key is not None:
            self.fastpath.store(key, trace)
        return trace

    @staticmethod
    def _span_fields(trace: ForwardingTrace) -> Dict[str, object]:
        """The ``span.end`` payload of one walk — everything the offline
        analyzer needs to classify the walk (blackhole/loop detection,
        stretch and encapsulation-overhead distributions) without the
        hop list."""
        return {"outcome": trace.outcome.value,
                "delivered_to": trace.delivered_to,
                "physical_hops": trace.physical_hops,
                "vn_hops": trace.vn_hops,
                "encapsulations": trace.encapsulations,
                "decapsulations": trace.decapsulations,
                "max_depth": trace.max_depth,
                "latency": trace.latency,
                "faulted": trace.faulted,
                "drop_reason": trace.drop_reason}

    def _observe_trace(self, trace: ForwardingTrace, start: str) -> None:  # repro: allow[D4]
        """Per-outcome counters, hop/depth histograms, one trace event."""
        self._outcome_counters[trace.outcome].inc()
        obs = self.obs
        obs.histogram("forwarding.physical_hops").observe(trace.physical_hops)
        obs.histogram("forwarding.encapsulations").observe(trace.encapsulations)
        obs.histogram("forwarding.max_depth").observe(trace.max_depth)
        obs.event("forward", outcome=trace.outcome.value, start=start,
                  delivered_to=trace.delivered_to,
                  physical_hops=trace.physical_hops, vn_hops=trace.vn_hops,
                  encapsulations=trace.encapsulations,
                  max_depth=trace.max_depth, latency=trace.latency,
                  faulted=trace.faulted,
                  hops=[hop.format() for hop in trace.hops])

    def forward_multicast(self, packet: Packet, start: str) -> "MulticastTrace":
        """Run a multicast packet, following every replication branch.

        Each fork (a :class:`VnReplicate` decision) spawns independent
        branch walks; the returned :class:`MulticastTrace` aggregates
        deliveries, total transmissions, and per-link stress.
        """
        mtrace = MulticastTrace()
        observed = self.obs.enabled
        t = self.clock() if (observed and self.clock is not None) else None
        root = None
        if observed:
            # The fanout root span; every branch parents under it (or
            # under the branch that replicated it, via the packet-
            # carried context), so the trace is the distribution tree.
            root = self.obs.span("forward.multicast", t=t, parent=packet.span,
                                 start=start).start()
            if packet.span is None:
                packet.span = root.context
        queue: deque = deque([(packet, self.network.node(start))])
        while queue:
            if len(mtrace.branches) >= self.max_steps:
                mtrace.truncated = True
                break
            branch_packet, node = queue.popleft()
            branch = ForwardingTrace()
            if root is None:
                self._walk(branch_packet, node, branch, False, queue)
            else:
                bspan = self.obs.span("forward", t=t,
                                      parent=branch_packet.span,
                                      start=node.node_id)
                branch_packet.span = bspan.context
                with bspan:
                    self._walk(branch_packet, node, branch, False, queue)
                    bspan.end(t=t, **self._span_fields(branch))
                self._observe_trace(branch, node.node_id)
            mtrace.add_branch(self.network, branch)
        if observed:
            self.obs.counter("forwarding.multicast_walks").inc()
            self.obs.event("forward.multicast", start=start,
                           branches=len(mtrace.branches),
                           delivered=len(mtrace.delivered_to),
                           transmissions=mtrace.transmissions,
                           max_link_stress=mtrace.max_link_stress,
                           truncated=mtrace.truncated)
            if root is not None:
                root.end(t=t, branches=len(mtrace.branches),
                         delivered=len(mtrace.delivered_to),
                         transmissions=mtrace.transmissions,
                         max_link_stress=mtrace.max_link_stress,
                         truncated=mtrace.truncated)
        return mtrace

    def _walk(self, packet: Packet, node: Node, trace: ForwardingTrace,
              strict: bool, fork_queue: Optional[deque]) -> None:
        steps = 0
        while True:
            if not node.up:
                trace.outcome = Outcome.FAULT_DROPPED
                trace.drop_reason = f"node {node.node_id} is down"
                trace.record(node, "fault-drop", trace.drop_reason, faulted=True)
                if strict:
                    raise FaultDropError(trace.drop_reason)
                return
            steps += 1
            if steps > self.max_steps:
                trace.outcome = Outcome.LOOP
                trace.drop_reason = f"exceeded {self.max_steps} steps"
                if strict:
                    raise ForwardingLoopError(trace.drop_reason)
                return
            outer = packet.outer
            if isinstance(outer, IPv4Header):
                next_node = self._ipv4_step(node, packet, outer, trace, strict)
            else:
                next_node = self._vn_step(node, packet, outer, trace, strict,
                                          fork_queue)
            if next_node is None:
                return
            node = next_node

    # -- IPv4 ----------------------------------------------------------------
    def _ipv4_step(self, node: Node, packet: Packet, outer: IPv4Header,
                   trace: ForwardingTrace, strict: bool) -> Optional[Node]:
        if node.accepts_ipv4(outer.dst):
            return self._accept_locally(node, packet, trace)
        entry = node.fib4.lookup(outer.dst)
        if entry is None or entry.next_hop is None:
            trace.outcome = Outcome.NO_ROUTE
            trace.drop_reason = f"no IPv4 route at {node.node_id} for {outer.dst}"
            trace.record(node, "drop", trace.drop_reason)
            if strict:
                raise NoRouteError(node.node_id, outer.dst)
            return None
        if outer.ttl <= 1:
            trace.outcome = Outcome.TTL_EXPIRED
            trace.drop_reason = f"IPv4 TTL expired at {node.node_id}"
            trace.record(node, "drop", trace.drop_reason)
            if strict:
                raise TTLExpiredError(node.node_id)
            return None
        link = self.network.link_between(node.node_id, entry.next_hop)
        if link is None:
            trace.outcome = Outcome.NO_ROUTE
            trace.drop_reason = f"next hop {entry.next_hop} unreachable from {node.node_id}"
            trace.record(node, "drop", trace.drop_reason)
            if strict:
                raise NoRouteError(node.node_id, outer.dst)
            return None
        if not link.up:
            trace.outcome = Outcome.FAULT_DROPPED
            trace.drop_reason = (
                f"link {node.node_id}<->{entry.next_hop} is down")
            trace.record(node, "fault-drop", trace.drop_reason, faulted=True)
            if strict:
                raise FaultDropError(trace.drop_reason)
            return None
        packet.replace_outer(outer.decremented())
        trace.physical_hops += 1
        trace.latency += link.delay
        trace.record(node, "ipv4-forward", f"-> {entry.next_hop} ({entry.prefix})",
                     depth=packet.depth)
        return self.network.node(entry.next_hop)

    def _accept_locally(self, node: Node, packet: Packet,
                        trace: ForwardingTrace) -> Optional[Node]:
        if packet.depth > 1:
            packet.decapsulate()
            trace.decapsulations += 1
            trace.record(node, "decap", f"now {packet.outer}", depth=packet.depth)
            if isinstance(packet.outer, VNHeader) and node.is_router:
                if trace.ingress_router is None:
                    trace.ingress_router = node.node_id
                trace.last_vn_node = node.node_id
            return node  # reprocess the inner header at this node
        trace.outcome = Outcome.DELIVERED
        trace.delivered_to = node.node_id
        trace.record(node, "deliver", depth=packet.depth)
        return None

    # -- IPvN ----------------------------------------------------------------
    def _vn_step(self, node: Node, packet: Packet, outer: VNHeader,
                 trace: ForwardingTrace, strict: bool,
                 fork_queue: Optional[deque] = None) -> Optional[Node]:
        if node.is_host:
            host_addr = getattr(node, "vn_addresses", {}).get(outer.version)
            joined = outer.dst in getattr(node, "vn_groups", set())
            if host_addr == outer.dst or joined:
                trace.outcome = Outcome.DELIVERED
                trace.delivered_to = node.node_id
                trace.record(node, "vn-deliver", str(outer.dst))
            else:
                trace.outcome = Outcome.DROPPED
                trace.drop_reason = (
                    f"host {node.node_id} is not IPv{outer.version} {outer.dst}")
                trace.record(node, "drop", trace.drop_reason)
            return None
        handler = self._vn_handlers.get(outer.version)
        if handler is None or node.vn_state_for(outer.version) is None:
            trace.outcome = Outcome.NO_VN_HANDLER
            trace.drop_reason = f"{node.node_id} cannot process IPv{outer.version}"
            trace.record(node, "drop", trace.drop_reason)
            return None
        trace.last_vn_node = node.node_id
        decision = handler(node, packet)
        if isinstance(decision, VnDeliver):
            if packet.depth > 1:
                # A vN-in-vN tunnel terminating here (e.g. a multicast
                # register reaching the group core): unwrap and keep going.
                packet.decapsulate()
                trace.decapsulations += 1
                trace.record(node, "vn-decap", f"now {packet.outer}",
                             depth=packet.depth)
                return node
            trace.outcome = Outcome.DELIVERED
            trace.delivered_to = node.node_id
            trace.record(node, "vn-deliver", str(outer.dst))
            return None
        if isinstance(decision, VnDrop):
            trace.outcome = Outcome.DROPPED
            trace.drop_reason = decision.reason
            trace.record(node, "drop", decision.reason)
            if strict:
                raise NoRouteError(node.node_id, outer.dst)
            return None
        if outer.ttl <= 1:
            trace.outcome = Outcome.TTL_EXPIRED
            trace.drop_reason = f"IPv{outer.version} TTL expired at {node.node_id}"
            trace.record(node, "drop", trace.drop_reason)
            if strict:
                raise TTLExpiredError(node.node_id)
            return None
        packet.replace_outer(outer.decremented())
        if isinstance(decision, VnForward):
            neighbor = self.network.node(decision.next_vn_hop)
            packet.encapsulate(IPv4Header(src=node.ipv4, dst=neighbor.ipv4))
            trace.encapsulations += 1
            trace.vn_hops += 1
            trace.record(node, "vn-forward", f"tunnel -> {decision.next_vn_hop}",
                         depth=packet.depth)
            return node  # IPv4 forwarding takes it from here
        if isinstance(decision, VnEncap):
            assert isinstance(decision.header, VNHeader)
            packet.encapsulate(decision.header)
            trace.encapsulations += 1
            trace.record(node, "vn-encap", f"tunnel {decision.header}",
                         depth=packet.depth)
            return node
        if isinstance(decision, VnReplicate):
            return self._replicate(node, packet, trace, decision, fork_queue)
        assert isinstance(decision, VnEgress)
        packet.encapsulate(IPv4Header(src=node.ipv4, dst=decision.ipv4_dst))
        trace.encapsulations += 1
        trace.egress_router = node.node_id
        trace.record(node, "vn-egress", f"exit vN-Bone -> {decision.ipv4_dst}",
                     depth=packet.depth)
        return node

    def _replicate(self, node: Node, packet: Packet, trace: ForwardingTrace,
                   decision: VnReplicate,
                   fork_queue: Optional[deque]) -> Optional[Node]:
        if fork_queue is None:
            trace.outcome = Outcome.DROPPED
            trace.drop_reason = (
                f"replication at {node.node_id} outside a multicast walk")
            trace.record(node, "drop", trace.drop_reason)
            return None
        outer = packet.outer
        assert isinstance(outer, VNHeader)
        if decision.mark_downstream:
            outer = outer.marked_downstream()
        for copy_decision in decision.copies:
            copy = packet.copy()
            copy.replace_outer(outer)
            if isinstance(copy_decision, VnForward):
                neighbor = self.network.node(copy_decision.next_vn_hop)
                copy.encapsulate(IPv4Header(src=node.ipv4, dst=neighbor.ipv4))
            else:
                copy.encapsulate(IPv4Header(src=node.ipv4,
                                            dst=copy_decision.ipv4_dst))
            fork_queue.append((copy, node))
        trace.outcome = Outcome.REPLICATED
        trace.record(node, "vn-replicate",
                     f"{len(decision.copies)} copies", depth=packet.depth)
        return None
