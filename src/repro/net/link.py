"""Links: undirected edges between nodes.

A link carries an IGP *cost* (used by intra-domain routing and by
ground-truth shortest paths), a propagation *delay* (used by the event
kernel when protocols exchange messages), and a *scope* marking it as
intra-domain or inter-domain.  Inter-domain links connect border routers
of different domains and are the edges over which BGP sessions run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Tuple

from repro.net.errors import TopologyError


class LinkScope(Enum):
    """Whether a link is internal to a domain or crosses domains."""

    INTRA_DOMAIN = "intra"
    INTER_DOMAIN = "inter"


@dataclass
class Link:
    """An undirected edge between two nodes.

    Link identity is the unordered endpoint pair; a :class:`Network`
    refuses parallel links between the same endpoints.
    """

    a: str
    b: str
    cost: float = 1.0
    delay: float = 1.0
    scope: LinkScope = LinkScope.INTRA_DOMAIN
    up: bool = True
    name: str = field(default="")
    #: Invoked whenever ``up`` actually flips; :meth:`Network.add_link`
    #: wires this to the topology-version bump so fault injectors that
    #: toggle links directly still invalidate path caches.
    _on_state_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at {self.a!r}")
        if self.cost < 0:
            raise TopologyError(f"negative link cost {self.cost}")
        if self.delay < 0:
            raise TopologyError(f"negative link delay {self.delay}")
        if not self.name:
            self.name = f"{self.a}<->{self.b}"

    def endpoints(self) -> Tuple[str, str]:
        """The unordered endpoint pair, canonically sorted."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, node_id: str) -> str:
        """The endpoint opposite *node_id*."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise TopologyError(f"{node_id!r} is not an endpoint of {self.name}")

    def fail(self) -> None:
        """Take the link down (failure injection)."""
        if self.up:
            self.up = False
            if self._on_state_change is not None:
                self._on_state_change()

    def restore(self) -> None:
        """Bring the link back up."""
        if not self.up:
            self.up = True
            if self._on_state_change is not None:
                self._on_state_change()

    def __str__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Link({self.name}, cost={self.cost}, {self.scope.value}, {state})"
