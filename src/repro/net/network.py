"""The network container: nodes, links, domains, and graph utilities.

:class:`Network` is the single source of truth for topology.  Routing
protocols read it; the forwarding engine walks it; metrics use its
ground-truth shortest paths (Dijkstra over live links) to compute
stretch.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain, Relationship
from repro.net.errors import TopologyError
from repro.net.link import Link, LinkScope
from repro.net.node import FibEntry, Host, Node, NodeKind, RouteSource, Router
from repro.obs import get_obs
from repro.perf.cache import PathCache

#: The default route hosts point at their access router.
DEFAULT_ROUTE = Prefix(IPv4Address(0), 0)


class Network:
    """A two-level internetwork: router-level graphs inside AS-level domains."""

    def __init__(self) -> None:
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.domains: Dict[int, Domain] = {}
        self._addr_index: Dict[IPv4Address, str] = {}
        self.obs = get_obs()
        self._topology_version = 0
        #: Memoized shortest-path trees, invalidated by version bumps.
        self.path_cache = PathCache(self)

    # -- topology versioning ----------------------------------------------
    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped by every path-relevant mutation."""
        return self._topology_version

    def _bump_topology_version(self) -> None:
        self._topology_version += 1

    # -- construction ---------------------------------------------------
    def add_domain(self, domain: Domain) -> Domain:
        if domain.asn in self.domains:
            raise TopologyError(f"duplicate domain AS{domain.asn}")
        self.domains[domain.asn] = domain
        return domain

    def domain_of(self, node_id: str) -> Domain:
        node = self.node(node_id)
        return self.domains[node.domain_id]

    def add_router(self, node_id: str, asn: int, is_border: bool = False,
                   ipv4: Optional[IPv4Address] = None) -> Router:
        domain = self._require_domain(asn)
        address = ipv4 if ipv4 is not None else domain.allocate_ipv4()
        router = Router(node_id=node_id, ipv4=address, domain_id=asn, is_border=is_border)
        self._register(router)
        domain.routers.add(node_id)
        if is_border:
            domain.border_routers.add(node_id)
        return router

    def add_host(self, node_id: str, asn: int, access_router: str,
                 ipv4: Optional[IPv4Address] = None, link_cost: float = 1.0) -> Host:
        domain = self._require_domain(asn)
        access = self.node(access_router)
        if access.domain_id != asn:
            raise TopologyError(
                f"host {node_id} in AS{asn} cannot attach to {access_router} in AS{access.domain_id}")
        address = ipv4 if ipv4 is not None else domain.allocate_ipv4()
        host = Host(node_id=node_id, ipv4=address, domain_id=asn,
                    kind=NodeKind.HOST, access_router=access_router)
        self._register(host)
        domain.hosts.add(node_id)
        self.add_link(node_id, access_router, cost=link_cost)
        # Hosts send everything to their access router.
        host.fib4.install(FibEntry(prefix=DEFAULT_ROUTE, next_hop=access_router,
                                   source=RouteSource.STATIC))
        # The access router reaches the host over the connected link.
        access.fib4.install(FibEntry(prefix=Prefix.host(host.ipv4), next_hop=node_id,
                                     source=RouteSource.CONNECTED))
        return host

    def _require_domain(self, asn: int) -> Domain:
        if asn not in self.domains:
            raise TopologyError(f"unknown domain AS{asn}; add_domain first")
        return self.domains[asn]

    def _register(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise TopologyError(f"duplicate node id {node.node_id!r}")
        if node.ipv4 in self._addr_index:
            raise TopologyError(
                f"address {node.ipv4} already assigned to {self._addr_index[node.ipv4]!r}")
        self.nodes[node.node_id] = node
        self._addr_index[node.ipv4] = node.node_id

    def add_link(self, a: str, b: str, cost: float = 1.0, delay: float = 1.0) -> Link:
        """Connect two nodes.  Scope is derived from the endpoint domains."""
        node_a, node_b = self.node(a), self.node(b)
        scope = (LinkScope.INTRA_DOMAIN if node_a.domain_id == node_b.domain_id
                 else LinkScope.INTER_DOMAIN)
        link = Link(a=a, b=b, cost=cost, delay=delay, scope=scope)
        key = link.endpoints()
        if key in self.links:
            raise TopologyError(f"parallel link between {a!r} and {b!r}")
        if scope is LinkScope.INTER_DOMAIN:
            for node in (node_a, node_b):
                if node.is_host:
                    raise TopologyError(f"host {node.node_id} cannot have inter-domain links")
                if not getattr(node, "is_border", False):
                    raise TopologyError(
                        f"inter-domain link endpoint {node.node_id!r} must be a border router")
        self.links[key] = link
        node_a.links.append(link)
        node_b.links.append(link)
        link._on_state_change = self._bump_topology_version  # noqa: SLF001 - network owns its links
        self._bump_topology_version()
        return link

    def connect_domains(self, asn_a: int, asn_b: int, border_a: str, border_b: str,
                        rel_a_to_b: Relationship, cost: float = 1.0,
                        delay: float = 1.0) -> Link:
        """Create an inter-domain link and record the business relationship.

        ``rel_a_to_b`` is what ``asn_b`` *is to* ``asn_a`` (e.g.
        ``Relationship.PROVIDER`` means b is a's provider).
        """
        link = self.add_link(border_a, border_b, cost=cost, delay=delay)
        self._require_domain(asn_a).set_relationship(asn_b, rel_a_to_b)
        self._require_domain(asn_b).set_relationship(asn_a, rel_a_to_b.reverse())
        return link

    # -- queries ----------------------------------------------------------
    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def node_by_ipv4(self, address: IPv4Address) -> Optional[Node]:
        node_id = self._addr_index.get(address)
        return self.nodes[node_id] if node_id is not None else None

    def link_between(self, a: str, b: str) -> Optional[Link]:
        key = (a, b) if a <= b else (b, a)
        return self.links.get(key)

    def neighbors(self, node_id: str, include_down: bool = False,
                  scope: Optional[LinkScope] = None) -> List[Tuple[str, Link]]:
        """(neighbor_id, link) pairs for live links at *node_id*."""
        node = self.node(node_id)
        result = []
        for link in node.links:
            if not include_down and not link.up:
                continue
            if scope is not None and link.scope is not scope:
                continue
            result.append((link.other(node_id), link))
        return result

    def routers(self, asn: Optional[int] = None) -> List[Router]:
        nodes: Iterable[Node]
        if asn is None:
            nodes = self.nodes.values()
        else:
            nodes = (self.nodes[nid] for nid in sorted(self._require_domain(asn).routers))
        return [n for n in nodes if isinstance(n, Router)]

    def hosts(self, asn: Optional[int] = None) -> List[Host]:
        nodes: Iterable[Node]
        if asn is None:
            nodes = self.nodes.values()
        else:
            nodes = (self.nodes[nid] for nid in sorted(self._require_domain(asn).hosts))
        return [n for n in nodes if isinstance(n, Host)]

    # -- ground-truth shortest paths ---------------------------------------
    def shortest_path(self, src: str, dst: str,
                      intra_domain_only: bool = False) -> Optional[Tuple[float, List[str]]]:
        """Dijkstra over live links; returns (cost, node path) or ``None``.

        With ``intra_domain_only`` the search never crosses an
        inter-domain link (used by IGPs and intra-domain metrics).

        When the :class:`~repro.perf.cache.PathCache` is enabled the
        answer comes from the memoized shortest-path tree rooted at
        *src* — bit-identical to the early-exit search (same heap
        order, strict-``<`` relaxation, same neighbor order).
        """
        if src == dst:
            return 0.0, [src]
        self.node(src), self.node(dst)
        if self.path_cache.enabled:
            return self.path_cache.shortest_path(src, dst, intra_domain_only)
        return self._compute_shortest_path(src, dst, intra_domain_only)

    def _compute_shortest_path(self, src: str, dst: str,
                               intra_domain_only: bool = False
                               ) -> Optional[Tuple[float, List[str]]]:
        """The raw early-exit Dijkstra (uncached baseline)."""
        if self.obs.enabled:
            self.obs.counter("perf.dijkstra_runs").inc()
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            if u == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(prev[path[-1]])
                path.reverse()
                return d, path
            for v, link in self.neighbors(u):
                if intra_domain_only and link.scope is LinkScope.INTER_DOMAIN:
                    continue
                nd = d + link.cost
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return None

    def shortest_path_tree(self, src: str, intra_domain_only: bool = False,
                           domain: Optional[int] = None) -> Dict[str, Tuple[float, Optional[str]]]:
        """Full Dijkstra from *src*: node -> (distance, predecessor).

        ``domain`` additionally restricts the traversal to one AS's nodes
        (used by link-state SPF).  Served from the
        :class:`~repro.perf.cache.PathCache` when it is enabled; callers
        must treat the returned tree as read-only.
        """
        if self.path_cache.enabled:
            return self.path_cache.tree(src, intra_domain_only, domain)
        return self._compute_shortest_path_tree(src, intra_domain_only, domain)

    def _compute_shortest_path_tree(
            self, src: str, intra_domain_only: bool = False,
            domain: Optional[int] = None
    ) -> Dict[str, Tuple[float, Optional[str]]]:
        """The raw full Dijkstra behind :meth:`shortest_path_tree`."""
        if self.obs.enabled:
            self.obs.counter("perf.dijkstra_runs").inc()
        allowed: Optional[Set[str]] = None
        if domain is not None:
            dom = self._require_domain(domain)
            allowed = dom.routers | dom.hosts
        dist: Dict[str, Tuple[float, Optional[str]]] = {src: (0.0, None)}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        settled: Dict[str, float] = {}
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            for v, link in self.neighbors(u):
                if intra_domain_only and link.scope is LinkScope.INTER_DOMAIN:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                nd = d + link.cost
                if v not in dist or nd < dist[v][0]:
                    dist[v] = (nd, u)
                    heap_entry = (nd, v)
                    heapq.heappush(heap, heap_entry)
        return {node: info for node, info in dist.items() if node in settled}

    # -- host mobility ----------------------------------------------------------
    def move_host(self, host_id: str, new_asn: int,
                  new_access_router: str) -> Host:
        """Re-home a host: detach it and attach it under a new provider.

        The host receives a fresh IPv4 address from the new domain's
        block (provider-assigned addressing — this is exactly why plain
        IPv(N-1) sessions break on mobility).  Control planes must be
        reconverged afterwards.
        """
        host = self.node(host_id)
        if not isinstance(host, Host):
            raise TopologyError(f"{host_id!r} is not a host")
        new_domain = self._require_domain(new_asn)
        new_access = self.node(new_access_router)
        if new_access.domain_id != new_asn or not new_access.is_router:
            raise TopologyError(
                f"{new_access_router!r} is not a router of AS{new_asn}")
        old_access = self.node(host.access_router)
        old_link = self.link_between(host_id, host.access_router)
        if old_link is not None:
            del self.links[old_link.endpoints()]
            old_access.links.remove(old_link)
            host.links.remove(old_link)
            old_link._on_state_change = None  # noqa: SLF001 - link detached
            self._bump_topology_version()
        old_access.fib4.withdraw(Prefix.host(host.ipv4), RouteSource.CONNECTED)
        host.fib4.withdraw(DEFAULT_ROUTE, RouteSource.STATIC)
        self.domains[host.domain_id].hosts.discard(host_id)
        del self._addr_index[host.ipv4]
        old_ipv4 = host.ipv4
        host.ipv4 = new_domain.allocate_ipv4()
        host._local_ipv4.discard(old_ipv4)  # noqa: SLF001 - re-homing owns this
        host._local_ipv4.add(host.ipv4)  # noqa: SLF001
        host.domain_id = new_asn
        host.access_router = new_access_router
        self._addr_index[host.ipv4] = host_id
        new_domain.hosts.add(host_id)
        self.add_link(host_id, new_access_router)
        host.fib4.install(FibEntry(prefix=DEFAULT_ROUTE,
                                   next_hop=new_access_router,
                                   source=RouteSource.STATIC))
        new_access.fib4.install(FibEntry(prefix=Prefix.host(host.ipv4),
                                         next_hop=host_id,
                                         source=RouteSource.CONNECTED))
        return host

    # -- failure injection -----------------------------------------------------
    def fail_router(self, router_id: str) -> List[Link]:
        """Take a router down by failing all of its links.

        Models a whole-router failure the way the control planes can
        observe it: adjacencies vanish, so IGPs time the router's
        routes out, BGP resyncs sessions that lost their last link, and
        anycast stops steering packets to the dead member (it becomes
        unreachable).  Returns the links failed, for later restoration.
        """
        node = self.node(router_id)
        failed = []
        for link in node.links:
            if link.up:
                link.fail()
                failed.append(link)
        return failed

    def restore_router(self, router_id: str) -> None:
        """Bring a failed router's links back up."""
        node = self.node(router_id)
        for link in node.links:
            link.restore()

    def crash_node(self, node_id: str) -> List[Link]:
        """Crash a node outright: mark it down and fail its live links.

        Unlike :meth:`fail_router` (which only models the adjacency
        loss), a crashed node also stops forwarding and accepting
        packets, and in-flight control-plane messages addressed to it
        are lost.  Returns the links failed, for exact restoration.
        """
        node = self.node(node_id)
        node.up = False
        self._bump_topology_version()
        failed = []
        for link in node.links:
            if link.up:
                link.fail()
                failed.append(link)
        return failed

    def recover_node(self, node_id: str,
                     links: Optional[Iterable[Link]] = None) -> List[Link]:
        """Recover a crashed node and restore its links.

        With *links* (as returned by :meth:`crash_node`) only those are
        restored; otherwise all of the node's links.  A link whose far
        endpoint is itself still crashed stays down.  Returns the links
        actually restored.
        """
        node = self.node(node_id)
        node.up = True
        self._bump_topology_version()
        candidates = node.links if links is None else list(links)
        restored = []
        for link in candidates:
            if link.up:
                continue
            if not self.node(link.other(node_id)).up:
                continue  # far end still crashed; its recovery restores it
            link.restore()
            restored.append(link)
        return restored

    # -- stats --------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Topology summary used by example scripts and logging."""
        return {
            "domains": len(self.domains),
            "routers": sum(1 for n in self.nodes.values() if n.is_router),
            "hosts": sum(1 for n in self.nodes.values() if n.is_host),
            "links": len(self.links),
            "inter_domain_links": sum(
                1 for l in self.links.values() if l.scope is LinkScope.INTER_DOMAIN),
        }
