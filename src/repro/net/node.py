"""Nodes: routers and hosts, and their forwarding tables.

A :class:`Router` owns an IPv4 FIB (:class:`Fib`) plus a set of *local
addresses* it accepts delivery for.  Anycast membership — the heart of
the paper's redirection mechanism — is modeled exactly as RFC 1546
describes it: an IPvN router simply accepts delivery of packets
destined to the anycast address, i.e. the anycast address appears in
its local-address set, and routing protocols advertise a route to it.

Next-generation (IPvN) state is attached by :mod:`repro.vnbone` through
the ``vn_states`` slots so the base network layer stays family-agnostic:
the forwarding engine only knows that a node *may* have a handler for
decapsulated IPvN packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import IPV4_BITS, Address, IPv4Address, Prefix, VNAddress
from repro.net.errors import TopologyError
from repro.net.trie import PrefixTrie


class NodeKind(Enum):
    ROUTER = "router"
    HOST = "host"


class RouteSource(Enum):
    """Which protocol installed a FIB entry; doubles as admin distance."""

    CONNECTED = 0
    STATIC = 1
    IGP = 10
    BGP = 20

    @property
    def admin_distance(self) -> int:
        return self.value


@dataclass(frozen=True)
class FibEntry:
    """One forwarding decision: send matching packets to *next_hop*.

    ``next_hop`` is the neighbor node id on the chosen outgoing link;
    ``local`` marks a deliver-to-self entry (the node owns the prefix).
    """

    prefix: Prefix
    next_hop: Optional[str]
    source: RouteSource
    metric: float = 0.0
    local: bool = False

    def __post_init__(self) -> None:
        if not self.local and self.next_hop is None:
            raise TopologyError(f"non-local FIB entry for {self.prefix} needs a next hop")


class Fib:
    """A longest-prefix-match forwarding table with admin-distance arbitration.

    Multiple protocols may offer routes for the same prefix; the FIB
    keeps the offer with the lowest (admin_distance, metric).  Offers
    are tracked per source so a protocol can withdraw only its own.
    """

    def __init__(self, bits: int = IPV4_BITS) -> None:
        self._trie: PrefixTrie[Dict[RouteSource, FibEntry]] = PrefixTrie(bits)

    def __len__(self) -> int:
        return len(self._trie)

    def install(self, entry: FibEntry) -> None:
        """Offer *entry*; replaces this source's previous offer for the prefix."""
        offers = self._trie.get(entry.prefix)
        if offers is None:
            offers = {}
            self._trie.insert(entry.prefix, offers)
        offers[entry.source] = entry

    def withdraw(self, prefix: Prefix, source: RouteSource) -> bool:
        """Remove *source*'s offer for *prefix*; True if one was removed."""
        offers = self._trie.get(prefix)
        if offers is None or source not in offers:
            return False
        del offers[source]
        if not offers:
            self._trie.remove(prefix)
        return True

    def withdraw_all(self, source: RouteSource) -> int:
        """Remove every offer installed by *source*; returns the count."""
        doomed = [pfx for pfx, offers in self._trie.items() if source in offers]
        for pfx in doomed:
            self.withdraw(pfx, source)
        return len(doomed)

    @staticmethod
    def _best(offers: Dict[RouteSource, FibEntry]) -> FibEntry:
        return min(offers.values(), key=lambda e: (e.source.admin_distance, e.metric))

    def lookup(self, address: Address) -> Optional[FibEntry]:
        """Longest-prefix match, then best offer by admin distance."""
        match = self._trie.lookup(address)
        if match is None:
            return None
        _, offers = match
        return self._best(offers)

    def get(self, prefix: Prefix, source: Optional[RouteSource] = None) -> Optional[FibEntry]:
        """Exact-prefix lookup; optionally restricted to one source."""
        offers = self._trie.get(prefix)
        if offers is None:
            return None
        if source is not None:
            return offers.get(source)
        return self._best(offers)

    def entries(self) -> List[FibEntry]:
        """The winning entry for every installed prefix."""
        return [self._best(offers) for _, offers in self._trie.items()]

    def snapshot(self, source: Optional[RouteSource] = None
                 ) -> List[Tuple[str, str, str, float]]:
        """A canonical, sorted dump of every offer — the byte-exact
        equivalence surface the control-plane bench and the grouped-
        vs-seed install tests compare.  Optionally restricted to one
        *source* (e.g. ``RouteSource.BGP``).
        """
        rows: List[Tuple[str, str, str, float]] = []
        for pfx, offers in self._trie.items():
            for src in sorted(offers, key=lambda s: s.name):
                if source is not None and src is not source:
                    continue
                entry = offers[src]
                rows.append((str(pfx), src.name,
                             "" if entry.next_hop is None else entry.next_hop,
                             entry.metric))
        rows.sort()
        return rows

    def route_count(self) -> int:
        """Number of distinct prefixes with at least one offer."""
        return len(self._trie)

    def clear(self) -> None:
        self._trie.clear()


@dataclass
class Node:
    """Base class for routers and hosts."""

    node_id: str
    ipv4: IPv4Address
    domain_id: int
    kind: NodeKind = NodeKind.ROUTER

    def __post_init__(self) -> None:
        self.links: List["object"] = []  # populated by Network.add_link
        #: False while the node is crashed (fault injection).  A down
        #: node neither forwards nor accepts packets, and control-plane
        #: messages addressed to it are lost.
        self.up: bool = True
        self.fib4 = Fib(IPV4_BITS)
        self._local_ipv4: Set[IPv4Address] = {self.ipv4}
        # IPvN state per deployed version, attached by repro.vnbone for
        # routers that deploy IPvN.  Kept as opaque objects so the base
        # layer has no IPvN dependency; several generations (IPv8, IPv9,
        # ...) can coexist on one router.
        self.vn_states: Dict[int, object] = {}

    # -- IPvN state ------------------------------------------------------
    def vn_state_for(self, version: int) -> Optional[object]:
        """The router's IPvN state for *version*, if it deploys it."""
        return self.vn_states.get(version)

    def set_vn_state(self, version: int, state: object) -> None:
        self.vn_states[version] = state

    def clear_vn_state(self, version: int) -> None:
        self.vn_states.pop(version, None)

    # -- local delivery ------------------------------------------------
    def accepts_ipv4(self, address: IPv4Address) -> bool:
        """Whether this node accepts local delivery for *address*.

        Anycast membership works by adding the anycast address here
        (RFC 1546: members "accept datagrams" for the anycast address).
        """
        return address in self._local_ipv4

    def add_local_ipv4(self, address: IPv4Address) -> None:
        self._local_ipv4.add(address)

    def remove_local_ipv4(self, address: IPv4Address) -> None:
        if address == self.ipv4:
            raise TopologyError(f"cannot remove {self.node_id}'s primary address")
        self._local_ipv4.discard(address)

    def local_ipv4_addresses(self) -> Set[IPv4Address]:
        return set(self._local_ipv4)

    @property
    def is_router(self) -> bool:
        return self.kind is NodeKind.ROUTER

    @property
    def is_host(self) -> bool:
        return self.kind is NodeKind.HOST

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.node_id}@AS{self.domain_id}"


@dataclass
class Router(Node):
    """An IP router.  ``is_border`` routers terminate inter-domain links."""

    is_border: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = NodeKind.ROUTER


@dataclass
class Host(Node):
    """An endhost attached to exactly one access router.

    Hosts are the sources and sinks of the experiments.  A host sends
    IPv4 through its access router; its IPvN stack (if enabled) does the
    paper's host encapsulation: wrap the IPvN packet in IPv4 addressed
    to the deployment's anycast address.
    """

    access_router: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = NodeKind.HOST
        if not self.access_router:
            raise TopologyError(f"host {self.node_id} needs an access router")
        #: IPvN addresses this host answers to, by version.
        self.vn_addresses: Dict[int, VNAddress] = {}
        #: IPvN multicast groups this host has joined (any version).
        self.vn_groups: Set[VNAddress] = set()

    def vn_address(self, version: int) -> Optional[VNAddress]:
        return self.vn_addresses.get(version)

    def assign_vn_address(self, address: VNAddress) -> None:
        self.vn_addresses[address.version] = address

    def self_assign(self, version: int) -> VNAddress:
        """Derive and adopt a temporary self-assigned IPvN address."""
        address = VNAddress.self_assigned(self.ipv4, version=version)
        self.vn_addresses[version] = address
        return address


NodePair = Tuple[str, str]
