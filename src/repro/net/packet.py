"""Packets and header encapsulation.

A simulated packet is a stack of headers over an opaque payload.  The
outermost header (index -1) is the one routers act on.  The paper's
delivery path nests up to three layers::

    IPv4(host -> anycast A_N)            # host encapsulation, Section 3.1
      IPvN(src -> dst)                   # the next-generation packet
        <payload>

and, inside the vN-Bone, per-virtual-hop tunnels::

    IPv4(vN router -> vN neighbor)       # vN-Bone tunnel, Section 3.4
      IPvN(src -> dst)
        <payload>

The IPvN header carries an optional ``dest_ipv4`` field — the paper's
"separate option field in the IPvN header" used for egress selection
when the destination sits in a non-IPvN domain (Section 3.3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

from repro.net.address import IPv4Address, VNAddress
from repro.net.errors import ForwardingError
from repro.obs import SpanContext

DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


@dataclass(frozen=True)
class IPv4Header:
    """An IPv(N-1) header; the ubiquitously deployed generation."""

    src: IPv4Address
    dst: IPv4Address
    ttl: int = DEFAULT_TTL
    protocol: str = "ip"

    def decremented(self) -> "IPv4Header":
        """A copy with TTL reduced by one."""
        return replace(self, ttl=self.ttl - 1)

    def __str__(self) -> str:
        return f"IPv4[{self.src} -> {self.dst} ttl={self.ttl}]"


@dataclass(frozen=True)
class VNHeader:
    """A next-generation IPvN header.

    ``dest_ipv4`` is the optional field carrying the destination's
    IPv(N-1) address for destinations outside the vN-Bone; for
    self-assigned destination addresses it can instead be inferred from
    the address itself (:meth:`effective_dest_ipv4`).

    ``mcast_downstream`` supports the multicast IPvN instantiation
    (:mod:`repro.vnbone.multicast`): it plays the role PIM-SM's
    register/decapsulated distinction plays — clear while the packet
    travels from its source towards the group's core, set once the core
    starts distribution down the shared tree.
    """

    src: VNAddress
    dst: VNAddress
    ttl: int = DEFAULT_TTL
    dest_ipv4: Optional[IPv4Address] = None
    mcast_downstream: bool = False

    def decremented(self) -> "VNHeader":
        """A copy with TTL reduced by one."""
        return replace(self, ttl=self.ttl - 1)

    def marked_downstream(self) -> "VNHeader":
        """A copy with the multicast distribution flag set."""
        return replace(self, mcast_downstream=True)

    def effective_dest_ipv4(self) -> Optional[IPv4Address]:
        """The destination's IPv4 address, from the option field or the
        self-assigned destination address; ``None`` if neither applies."""
        if self.dest_ipv4 is not None:
            return self.dest_ipv4
        if self.dst.is_self_assigned:
            return self.dst.embedded_ipv4()
        return None

    @property
    def version(self) -> int:
        return self.dst.version

    def __str__(self) -> str:
        return f"IPv{self.dst.version}[{self.src} -> {self.dst} ttl={self.ttl}]"


Header = Union[IPv4Header, VNHeader]


@dataclass
class Packet:
    """A simulated packet: a header stack over an opaque payload.

    The *outermost* header — the one forwarding acts on — is
    ``headers[-1]``.  Encapsulation pushes, decapsulation pops.
    """

    headers: List[Header] = field(default_factory=list)
    payload: object = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Causal span context the packet is traveling under (set by the
    #: forwarding engine when spans are enabled; survives copies, so
    #: encap/decap replicas stay in the originating trace).
    span: Optional[SpanContext] = None

    def __post_init__(self) -> None:
        if not self.headers:
            raise ForwardingError("a packet needs at least one header")

    @property
    def outer(self) -> Header:
        """The outermost (active) header."""
        return self.headers[-1]

    @property
    def inner(self) -> Header:
        """The innermost header (the original end-to-end header)."""
        return self.headers[0]

    @property
    def depth(self) -> int:
        """Number of stacked headers (1 = not encapsulated)."""
        return len(self.headers)

    def encapsulate(self, header: Header) -> None:
        """Push a new outer header (tunnel entry)."""
        self.headers.append(header)

    def decapsulate(self) -> Header:
        """Pop and return the outer header (tunnel exit).

        Raises :class:`ForwardingError` if only one header remains —
        popping it would leave a headerless packet.
        """
        if len(self.headers) == 1:
            raise ForwardingError("cannot decapsulate the last header")
        return self.headers.pop()

    def replace_outer(self, header: Header) -> None:
        """Swap the outer header in place (used for TTL decrements)."""
        self.headers[-1] = header

    def vn_header(self) -> Optional[VNHeader]:
        """The topmost IPvN header in the stack, if any."""
        for header in reversed(self.headers):
            if isinstance(header, VNHeader):
                return header
        return None

    def copy(self) -> "Packet":
        """A shallow copy with its own header stack (headers are frozen)."""
        return Packet(headers=list(self.headers), payload=self.payload,
                      packet_id=self.packet_id, span=self.span)

    def __str__(self) -> str:
        stack = " | ".join(str(h) for h in reversed(self.headers))
        return f"Packet#{self.packet_id}({stack})"


def ipv4_packet(src: IPv4Address, dst: IPv4Address, payload: object = None,
                ttl: int = DEFAULT_TTL) -> Packet:
    """Build a plain IPv4 packet."""
    return Packet(headers=[IPv4Header(src=src, dst=dst, ttl=ttl)], payload=payload)


def vn_packet(src: VNAddress, dst: VNAddress, payload: object = None,
              ttl: int = DEFAULT_TTL, dest_ipv4: Optional[IPv4Address] = None) -> Packet:
    """Build a bare IPvN packet (not yet encapsulated for the anycast hop)."""
    return Packet(headers=[VNHeader(src=src, dst=dst, ttl=ttl, dest_ipv4=dest_ipv4)],
                  payload=payload)
