"""Topology serialization: save and load internetworks as JSON.

Captures the durable facts of a :class:`~repro.net.network.Network` —
domains (with business relationships and policy flags), routers, hosts,
and links — so that a generated topology can be archived, shared, and
reloaded for reproducible experiments.  Control-plane and IPvN
deployment state is deliberately *not* serialized: it is derived state;
reload the topology and re-run the deployment script.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain, Relationship
from repro.net.errors import TopologyError
from repro.net.network import Network
from repro.net.node import Host, Router

FORMAT_VERSION = 1


def network_to_dict(network: Network) -> Dict:
    """A JSON-serializable snapshot of *network*'s topology."""
    domains = []
    for asn in sorted(network.domains):
        domain = network.domains[asn]
        relationships = {str(neighbor): rel.value
                         for neighbor, rel in sorted(domain.relationships.items())}
        domains.append({
            "asn": asn,
            "name": domain.name,
            "prefix": str(domain.prefix),
            "tier": domain.tier,
            "propagates_anycast": domain.propagates_anycast,
            "default_routed": domain.default_routed,
            "relationships": relationships,
        })
    routers = []
    hosts = []
    for node_id in sorted(network.nodes):
        node = network.nodes[node_id]
        record = {"id": node.node_id, "ipv4": str(node.ipv4),
                  "asn": node.domain_id}
        if isinstance(node, Host):
            record["access_router"] = node.access_router
            hosts.append(record)
        else:
            record["is_border"] = bool(getattr(node, "is_border", False))
            routers.append(record)
    links = []
    for key in sorted(network.links):
        link = network.links[key]
        endpoints = (link.a, link.b)
        if any(network.nodes[end].is_host for end in endpoints):
            continue  # host access links are recreated by add_host
        links.append({"a": link.a, "b": link.b, "cost": link.cost,
                      "delay": link.delay, "up": link.up})
    return {"format": FORMAT_VERSION, "domains": domains, "routers": routers,
            "hosts": hosts, "links": links}


def network_from_dict(data: Dict) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format {data.get('format')!r}")
    network = Network()
    for record in data["domains"]:
        network.add_domain(Domain(asn=record["asn"], name=record["name"],
                                  prefix=Prefix.parse(record["prefix"]),
                                  propagates_anycast=record["propagates_anycast"],
                                  tier=record["tier"],
                                  default_routed=record.get(
                                      "default_routed", False)))
    for record in data["routers"]:
        network.add_router(record["id"], record["asn"],
                           is_border=record["is_border"],
                           ipv4=IPv4Address.parse(record["ipv4"]))
    # Relationships first (links validate borders, not relationships,
    # but keeping the domain records complete before wiring is tidier).
    for record in data["domains"]:
        domain = network.domains[record["asn"]]
        for neighbor, value in record["relationships"].items():
            domain.set_relationship(int(neighbor), Relationship(value))
    for record in data["links"]:
        link = network.add_link(record["a"], record["b"], cost=record["cost"],
                                delay=record["delay"])
        if not record["up"]:
            link.fail()
    for record in data["hosts"]:
        network.add_host(record["id"], record["asn"], record["access_router"],
                         ipv4=IPv4Address.parse(record["ipv4"]))
    return network


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write *network* to *path* as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=1))


def load_network(path: Union[str, Path]) -> Network:
    """Load a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
