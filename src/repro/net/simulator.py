"""Discrete-event simulation kernel.

Routing protocols in this library are message driven: a protocol
schedules message deliveries on the shared :class:`EventScheduler`, and
the kernel runs callbacks in timestamp order.  Ties break by insertion
sequence, which keeps runs deterministic for a fixed topology and seed.

The kernel is intentionally small.  ``run_until_idle`` is the workhorse:
protocol convergence in this library means "the event queue drained",
with a configurable event budget as a divergence backstop.

Two pending-event queue implementations sit behind the same scheduler
API (selected by ``EventScheduler(queue=...)``):

* ``"calendar"`` (the default) — a slotted calendar queue: events land
  in fixed-width time buckets keyed by ``floor(time / width)``, a lazy
  min-heap tracks the non-empty buckets, and each bucket is itself a
  small heap ordered by ``(time, seq)``.  Because bucket keys are
  monotone in time, draining buckets in key order then events in
  per-bucket heap order reproduces the global ``(time, insertion-seq)``
  order exactly; per-push/pop heap work is bounded by the (small)
  bucket population instead of the whole queue.
* ``"heap"`` — the seed implementation, one global binary heap.  Kept
  as the executable reference: the property tests in
  ``tests/net/test_simulator_properties.py`` drive both implementations
  through identical schedule/cancel interleavings and assert the fired
  event sequences are equal.

Fault injection hooks in at two points:

* :meth:`EventScheduler.schedule_message` is the send path protocols
  use for their wire messages.  While a
  :class:`MessagePerturbation` is active (installed by
  :class:`repro.faults.FaultInjector` for a loss window), each message
  is independently dropped with ``loss_prob`` or delayed by a uniform
  jitter drawn from ``[0, reorder_jitter]`` — both from the scheduler's
  own seeded RNG, so perturbed runs stay reproducible.
* Timers and fault events themselves use plain :meth:`schedule` and are
  never perturbed.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.errors import ConvergenceError, SimulationError
from repro.obs import MetricSampler, Observability, SpanContext, get_obs

Callback = Callable[[], None]


class ClockDriven:
    """Protocol for objects pulled on every scheduler clock advance.

    Implemented by :class:`repro.measure.ProbeEngine`;
    :class:`repro.obs.MetricSampler` has the same shape but keeps its
    dedicated slot (probes must observe *before* metric sampling).
    """

    def on_advance(self, now: float) -> None:  # pragma: no cover - protocol
        raise NotImplementedError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set once the event has been popped for execution.
    finished: bool = field(default=False, compare=False)
    #: False for events that never entered the queue (dropped messages).
    queued: bool = field(default=True, compare=False)
    #: Span context captured at schedule time (scheduler-carried
    #: propagation): the callback runs with this context active, so
    #: message cascades parent under the span that sent them.
    span_ctx: Optional[SpanContext] = field(default=None, compare=False)


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _Event,
                 scheduler: Optional["EventScheduler"] = None) -> None:
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        event = self._event
        if event.cancelled or event.finished:
            return
        event.cancelled = True
        if event.queued and self._scheduler is not None:
            scheduler = self._scheduler
            scheduler._live -= 1  # noqa: SLF001 - handle owns the event
            if scheduler.obs.enabled:
                scheduler._c_cancelled.inc()  # noqa: SLF001

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


@dataclass
class MessagePerturbation:
    """An active message-fault window: loss probability and reorder jitter."""

    loss_prob: float = 0.0
    reorder_jitter: float = 0.0


class _HeapQueue:
    """The seed pending-event store: one global binary heap."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: _Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Optional[_Event]:
        """Remove and return the minimum event (cancelled or not)."""
        return heapq.heappop(self._heap) if self._heap else None

    def peek(self) -> Optional[_Event]:
        return self._heap[0] if self._heap else None


#: Default calendar-queue bucket width.  Protocol delays in this library
#: cluster around 1.0 (link delays, SESSION_DELAY, hold-down fractions),
#: so unit-width buckets keep per-bucket heaps small without creating a
#: bucket per event.
DEFAULT_BUCKET_WIDTH = 1.0


class _CalendarQueue:
    """A slotted calendar queue, order-equivalent to :class:`_HeapQueue`.

    Buckets are keyed by ``floor(time / width)``; ``_keys`` is a heap of
    the keys currently present in ``_buckets``.  Invariant: a key is in
    ``_keys`` iff it has a ``_buckets`` entry (possibly an empty list —
    emptied buckets are removed lazily when they surface at the top of
    the key heap), so keys are never duplicated.

    Correctness of the ordering: for events ``x`` in bucket ``k`` and
    ``y`` in bucket ``k' > k``, ``x.time < (k + 1) * width <= y.time``,
    so cross-bucket order is strict in time; within a bucket the heap
    orders by the event's own ``(time, seq)`` key.  Draining bucket by
    bucket therefore yields the exact global ``(time, seq)`` order.
    """

    __slots__ = ("_width", "_buckets", "_keys", "_count")

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if width <= 0.0:
            raise SimulationError(f"bucket width must be positive, got {width}")
        self._width = width
        self._buckets: Dict[int, List[_Event]] = {}
        self._keys: List[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, event: _Event) -> None:
        key = int(event.time / self._width)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = []
            self._buckets[key] = bucket
            heapq.heappush(self._keys, key)
        heapq.heappush(bucket, event)
        self._count += 1

    def _min_bucket(self) -> Optional[List[_Event]]:
        while self._keys:
            bucket = self._buckets[self._keys[0]]
            if bucket:
                return bucket
            del self._buckets[heapq.heappop(self._keys)]
        return None

    def pop(self) -> Optional[_Event]:
        """Remove and return the minimum event (cancelled or not)."""
        bucket = self._min_bucket()
        if bucket is None:
            return None
        self._count -= 1
        return heapq.heappop(bucket)

    def peek(self) -> Optional[_Event]:
        bucket = self._min_bucket()
        return bucket[0] if bucket else None


#: Queue implementations selectable via ``EventScheduler(queue=...)``.
QUEUE_KINDS = ("calendar", "heap")


class EventScheduler:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Seed for the scheduler's :class:`random.Random`, which protocols
        use for jitter so that independent runs are reproducible.
    queue:
        Pending-event store implementation: ``"calendar"`` (slotted
        bucket queue, the default) or ``"heap"`` (the seed global binary
        heap).  Both yield the identical event order; see the module
        docstring.
    """

    def __init__(self, seed: int = 0,
                 obs: Optional[Observability] = None,
                 queue: str = "calendar",
                 bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if queue not in QUEUE_KINDS:
            raise SimulationError(
                f"unknown queue kind {queue!r}; choose from {QUEUE_KINDS}")
        self.queue_kind = queue
        self._queue = (_CalendarQueue(bucket_width) if queue == "calendar"
                       else _HeapQueue())
        self._seq = itertools.count()
        self._now = 0.0
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Count of scheduled, not-yet-fired, not-cancelled events.
        self._live = 0
        self._perturbation: Optional[MessagePerturbation] = None
        self.messages_lost = 0
        self.messages_reordered = 0
        #: Observability handle, bound at construction (see repro.obs).
        #: Metrics are cached once so the enabled path stays cheap.
        self.obs = obs if obs is not None else get_obs()
        #: Optional metric sampler driven by clock advances (see
        #: repro.obs.sampler); None unless attached, so the disabled
        #: path pays one attribute check.
        self._sampler: Optional[MetricSampler] = None
        #: Optional probe engine (see repro.measure.engine) driven the
        #: same lazy way; typed loosely to avoid importing repro.measure
        #: (which imports this module).  Probes fire *before* the
        #: sampler so a metric tick at the same instant already sees the
        #: probe round's counter updates.
        self._probes: Optional[ClockDriven] = None
        self._c_scheduled = self.obs.counter("scheduler.events_scheduled")
        self._c_fired = self.obs.counter("scheduler.events_fired")
        self._c_cancelled = self.obs.counter("scheduler.events_cancelled")
        self._c_dropped = self.obs.counter("scheduler.messages_dropped")
        self._c_reordered = self.obs.counter("scheduler.messages_reordered")
        self._g_depth = self.obs.gauge("scheduler.queue_depth_max")

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        # O(1): a live-event counter maintained by schedule/cancel/pop,
        # instead of scanning the heap for cancelled entries.
        return self._live

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        self._queue.push(event)
        self._live += 1
        if self.obs.enabled:
            self._c_scheduled.inc()
            self._g_depth.set_max(self._live)
            event.span_ctx = self.obs.current_span_context()
        return EventHandle(event, self)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        return self.schedule(time - self._now, callback)

    # -- message perturbation (fault injection) -----------------------------
    @property
    def message_perturbation(self) -> Optional[MessagePerturbation]:
        return self._perturbation

    def set_message_perturbation(self, loss_prob: float = 0.0,
                                 reorder_jitter: float = 0.0) -> None:
        """Start perturbing protocol messages (loss and/or reordering)."""
        if not 0.0 <= loss_prob <= 1.0:
            raise SimulationError(f"loss_prob must be in [0, 1], got {loss_prob}")
        if reorder_jitter < 0.0:
            raise SimulationError(f"reorder_jitter must be >= 0, got {reorder_jitter}")
        self._perturbation = MessagePerturbation(loss_prob=loss_prob,
                                                 reorder_jitter=reorder_jitter)

    def clear_message_perturbation(self) -> None:
        self._perturbation = None

    def schedule_message(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule a protocol *message* delivery *delay* from now.

        Unlike :meth:`schedule`, message deliveries are subject to the
        active :class:`MessagePerturbation`: they may be dropped (the
        returned handle is born cancelled and the message never fires)
        or delayed by a random jitter, which reorders them relative to
        messages sent on other links.
        """
        perturbation = self._perturbation
        if perturbation is not None:
            if (perturbation.loss_prob > 0.0
                    and self.rng.random() < perturbation.loss_prob):
                self.messages_lost += 1
                if self.obs.enabled:
                    self._c_dropped.inc()
                event = _Event(time=self._now + delay, seq=next(self._seq),
                               callback=callback, cancelled=True, queued=False)
                return EventHandle(event, self)
            if perturbation.reorder_jitter > 0.0:
                jitter = self.rng.uniform(0.0, perturbation.reorder_jitter)
                if jitter > 0.0:
                    self.messages_reordered += 1
                    if self.obs.enabled:
                        self._c_reordered.inc()
                delay += jitter
        return self.schedule(delay, callback)

    def _pop_next(self) -> Optional[_Event]:
        while True:
            event = self._queue.pop()
            if event is None:
                return None
            if not event.cancelled:
                event.finished = True
                self._live -= 1
                return event

    def attach_sampler(self, sampler: MetricSampler) -> None:
        """Drive *sampler* from this scheduler's clock advances.

        The sampler is pulled, not scheduled: it emits its ticks from
        :meth:`step` / :meth:`run_until` clock updates, so an attached
        sampler never keeps the queue alive during ``run_until_idle``.
        """
        self._sampler = sampler
        sampler.on_advance(self._now)

    def attach_probe_engine(self, engine: ClockDriven) -> None:
        """Drive *engine* from this scheduler's clock advances.

        Same pull contract as :meth:`attach_sampler`: probe rounds fire
        from :meth:`step` / :meth:`run_until` clock updates rather than
        queued events, so an armed probe plan never keeps the queue
        alive during ``run_until_idle`` (convergence still means "the
        queue drained") and never overruns a fault epoch's
        ``run_until`` target.
        """
        self._probes = engine
        engine.on_advance(self._now)

    def detach_probe_engine(self) -> None:
        self._probes = None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self.events_processed += 1
        if self.obs.enabled:
            self._c_fired.inc()
        if self._probes is not None:
            self._probes.on_advance(self._now)
        if self._sampler is not None:
            self._sampler.on_advance(self._now)
        ctx = event.span_ctx
        if ctx is None:
            event.callback()
        else:
            self.obs.push_span_context(ctx)
            try:
                event.callback()
            finally:
                self.obs.pop_span_context()
        return True

    def run_until_idle(self, max_events: int = 2_000_000) -> int:
        """Drain the queue; returns the number of events processed.

        Raises :class:`ConvergenceError` if more than *max_events* fire,
        which in practice means a protocol is oscillating.
        """
        observed = self.obs.enabled
        if observed:
            wall_t0 = time.perf_counter()
            sim0 = self._now
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise ConvergenceError(
                    f"event budget exhausted after {max_events} events; "
                    "a protocol is likely not converging")
        if observed:
            wall_ms = (time.perf_counter() - wall_t0) * 1000.0
            self.obs.histogram("scheduler.drain_wall_ms").observe(wall_ms)
            self.obs.event("scheduler.drain", t=self._now, events=processed,
                           sim_elapsed=self._now - sim0, wall_ms=wall_ms)
        return processed

    def run_until(self, time: float, max_events: int = 2_000_000) -> int:
        """Run events with timestamps <= *time*; advance the clock to *time*."""
        processed = 0
        while len(self._queue):
            head = self._peek_time()
            if head is None or head > time:
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise ConvergenceError(
                    f"event budget exhausted after {max_events} events before t={time}")
        self._now = max(self._now, time)
        if self._probes is not None:
            self._probes.on_advance(self._now)
        if self._sampler is not None:
            self._sampler.on_advance(self._now)
        if self.obs.enabled:
            self.obs.event("scheduler.run_until", t=self._now, events=processed)
        return processed

    def _peek_time(self) -> Optional[float]:
        while True:
            event = self._queue.peek()
            if event is None:
                return None
            if not event.cancelled:
                return event.time
            self._queue.pop()


@dataclass
class MessageStats:
    """Counters a protocol can keep to report its message complexity."""

    sent: int = 0
    delivered: int = 0
    bytes_sent: int = 0

    def record_send(self, size: int = 1) -> None:
        self.sent += 1
        self.bytes_sent += size

    def record_delivery(self) -> None:
        self.delivered += 1

    def reset(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.bytes_sent = 0


Clock = Tuple[float, int]
