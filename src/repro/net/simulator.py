"""Discrete-event simulation kernel.

Routing protocols in this library are message driven: a protocol
schedules message deliveries on the shared :class:`EventScheduler`, and
the kernel runs callbacks in timestamp order.  Ties break by insertion
sequence, which keeps runs deterministic for a fixed topology and seed.

The kernel is intentionally small.  ``run_until_idle`` is the workhorse:
protocol convergence in this library means "the event queue drained",
with a configurable event budget as a divergence backstop.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.net.errors import ConvergenceError, SimulationError

Callback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventScheduler:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Seed for the scheduler's :class:`random.Random`, which protocols
        use for jitter so that independent runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.rng = random.Random(seed)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        return self.schedule(time - self._now, callback)

    def _pop_next(self) -> Optional[_Event]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self.events_processed += 1
        event.callback()
        return True

    def run_until_idle(self, max_events: int = 2_000_000) -> int:
        """Drain the queue; returns the number of events processed.

        Raises :class:`ConvergenceError` if more than *max_events* fire,
        which in practice means a protocol is oscillating.
        """
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise ConvergenceError(
                    f"event budget exhausted after {max_events} events; "
                    "a protocol is likely not converging")
        return processed

    def run_until(self, time: float, max_events: int = 2_000_000) -> int:
        """Run events with timestamps <= *time*; advance the clock to *time*."""
        processed = 0
        while self._queue:
            head = self._peek_time()
            if head is None or head > time:
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise ConvergenceError(
                    f"event budget exhausted after {max_events} events before t={time}")
        self._now = max(self._now, time)
        return processed

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None


@dataclass
class MessageStats:
    """Counters a protocol can keep to report its message complexity."""

    sent: int = 0
    delivered: int = 0
    bytes_sent: int = 0

    def record_send(self, size: int = 1) -> None:
        self.sent += 1
        self.bytes_sent += size

    def record_delivery(self) -> None:
        self.delivered += 1

    def reset(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.bytes_sent = 0


Clock = Tuple[float, int]
