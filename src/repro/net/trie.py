"""Binary radix trie for longest-prefix-match lookups.

This is the forwarding-table data structure used by every router in the
simulator, for both the IPv4 family (32-bit keys) and the IPvN family
(64-bit keys).  It is a plain uncompressed binary trie: simple, easy to
verify, and fast enough for simulation scales (lookups walk at most
``plen`` nodes).

The trie maps :class:`~repro.net.address.Prefix` keys to arbitrary
values and answers:

* exact lookups (:meth:`PrefixTrie.get`),
* longest-prefix matches for an address (:meth:`PrefixTrie.lookup`),
* all matches, shortest first (:meth:`PrefixTrie.all_matches`),
* iteration over installed (prefix, value) pairs.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.address import Address, Prefix
from repro.net.errors import AddressError

V = TypeVar("V")

_SENTINEL = object()


class _Node(Generic[V]):
    __slots__ = ("children", "prefix", "value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.prefix: Optional[Prefix] = None
        self.value: object = _SENTINEL


class PrefixTrie(Generic[V]):
    """A longest-prefix-match table over one address family.

    Parameters
    ----------
    bits:
        Width of the address family (32 for IPv4, 64 for IPvN).  All
        prefixes inserted must belong to a family of this width.
    """

    def __init__(self, bits: int) -> None:
        self._bits = bits
        self._root: _Node[V] = _Node()
        self._size = 0

    @property
    def bits(self) -> int:
        return self._bits

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _check_family(self, pfx: Prefix) -> None:
        if pfx.bits != self._bits:
            raise AddressError(
                f"prefix {pfx} belongs to a {pfx.bits}-bit family; trie is {self._bits}-bit")

    def insert(self, pfx: Prefix, value: V) -> None:
        """Install *value* under *pfx*, replacing any previous value."""
        self._check_family(pfx)
        node = self._root
        for bit in pfx.key_bits():
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.value is _SENTINEL:
            self._size += 1
        node.prefix = pfx
        node.value = value

    def remove(self, pfx: Prefix) -> V:
        """Remove and return the value under *pfx*.

        Raises ``KeyError`` if the exact prefix is not installed.  Empty
        branches are pruned so repeated insert/remove cycles do not leak.
        """
        self._check_family(pfx)
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for bit in pfx.key_bits():
            child = node.children[bit]
            if child is None:
                raise KeyError(pfx)
            path.append((node, bit))
            node = child
        if node.value is _SENTINEL:
            raise KeyError(pfx)
        value = node.value
        node.value = _SENTINEL
        node.prefix = None
        self._size -= 1
        # Prune now-empty leaf chain.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None  # repro: allow[D5] - prune-path invariant
            if child.value is _SENTINEL and child.children[0] is None and child.children[1] is None:
                parent.children[bit] = None
            else:
                break
        return value  # type: ignore[return-value]

    def get(self, pfx: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup of an installed prefix."""
        self._check_family(pfx)
        node = self._root
        for bit in pfx.key_bits():
            child = node.children[bit]
            if child is None:
                return default
            node = child
        if node.value is _SENTINEL:
            return default
        return node.value  # type: ignore[return-value]

    def __contains__(self, pfx: Prefix) -> bool:
        return self.get(pfx, _SENTINEL) is not _SENTINEL  # type: ignore[arg-type]

    def lookup(self, address: Address) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for *address*; ``None`` if nothing matches."""
        if address.BITS != self._bits:
            raise AddressError(
                f"address {address} belongs to a {address.BITS}-bit family; trie is {self._bits}-bit")
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        if node.value is not _SENTINEL:
            assert node.prefix is not None  # repro: allow[D5] - value implies prefix
            best = (node.prefix, node.value)  # type: ignore[assignment]
        value = address.value
        for i in range(self._bits):
            bit = (value >> (self._bits - 1 - i)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.value is not _SENTINEL:
                assert node.prefix is not None  # repro: allow[D5] - value implies prefix
                best = (node.prefix, node.value)  # type: ignore[assignment]
        return best

    def all_matches(self, address: Address) -> List[Tuple[Prefix, V]]:
        """All installed prefixes covering *address*, shortest first."""
        if address.BITS != self._bits:
            raise AddressError(
                f"address {address} belongs to a {address.BITS}-bit family; trie is {self._bits}-bit")
        matches: List[Tuple[Prefix, V]] = []
        node = self._root
        if node.value is not _SENTINEL:
            assert node.prefix is not None  # repro: allow[D5] - value implies prefix
            matches.append((node.prefix, node.value))  # type: ignore[arg-type]
        value = address.value
        for i in range(self._bits):
            bit = (value >> (self._bits - 1 - i)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.value is not _SENTINEL:
                assert node.prefix is not None  # repro: allow[D5] - value implies prefix
                matches.append((node.prefix, node.value))  # type: ignore[arg-type]
        return matches

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate installed (prefix, value) pairs in key order."""
        stack: List[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            if node.value is not _SENTINEL:
                assert node.prefix is not None  # repro: allow[D5] - value implies prefix
                yield node.prefix, node.value  # type: ignore[misc]
            # Push right then left so left (0-bit) branches pop first.
            if node.children[1] is not None:
                stack.append(node.children[1])
            if node.children[0] is not None:
                stack.append(node.children[0])

    def prefixes(self) -> List[Prefix]:
        """All installed prefixes."""
        return [pfx for pfx, _ in self.items()]

    def to_dict(self) -> Dict[Prefix, V]:
        """Snapshot as a plain dict (for tests and debugging)."""
        return dict(self.items())

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _Node()
        self._size = 0
