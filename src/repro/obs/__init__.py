"""repro.obs: the library's observability layer.

Three primitives behind one handle (:class:`Observability`):

* a :class:`~repro.obs.registry.Registry` of named counters, gauges,
  and histograms (process-local aggregation, JSON-safe snapshots);
* a :class:`~repro.obs.tracer.Tracer` emitting structured JSONL events
  with per-run context (seed, topology, scenario);
* :meth:`Observability.probe` timing spans with negligible overhead
  when observability is disabled.

Instrumented subsystems (the event scheduler, the forwarding engine,
both IGPs, BGP, the vN-Bone, the fault injector) bind the *active*
handle at construction time via :func:`get_obs`; experiments activate a
handle for the duration of a run with :func:`observing`::

    from repro.obs import Observability, Tracer, observing

    obs = Observability(tracer=Tracer("run.jsonl", context={"seed": 7}))
    with observing(obs):
        result = experiments.run("anycast_failover", seed=7, obs=obs)
    print(obs.metrics_summary()["counters"]["scheduler.events_fired"])

The default active handle is :data:`NULL_OBS` — permanently disabled —
so uninstrumented use of the library pays only an attribute check per
instrumented hot-path operation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.probe import NULL_PROBE, NullProbe, Probe
from repro.obs.registry import Counter, Gauge, Histogram, Registry
from repro.obs.sampler import METRIC_SAMPLE, MetricSampler
from repro.obs.serialize import json_safe
from repro.obs.spans import (NULL_SPAN, SPAN_END, SPAN_START, AbstractSpan,
                             NullSpan, Span, SpanContext, SpanTracker,
                             validate_span_events, validate_span_lines,
                             validate_spans)
from repro.obs.tracer import (RUN_END, RUN_START, TRACE_SCHEMA, WALL_PREFIX,
                              Tracer, strip_wall_fields, validate_trace,
                              validate_trace_lines)


class Observability:
    """One observability context: a registry plus an optional tracer.

    ``enabled`` is the single hot-path switch: instrumented code guards
    every metric update and event emission behind ``if obs.enabled``,
    so a disabled handle (notably :data:`NULL_OBS`) costs one attribute
    load per operation.
    """

    def __init__(self, registry: Optional[Registry] = None,
                 tracer: Optional[Tracer] = None,
                 enabled: bool = True) -> None:
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.enabled = enabled
        self._spans = SpanTracker()

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    # -- metrics -------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def metrics_summary(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot of every metric collected so far."""
        return self.registry.snapshot()

    # -- tracing -------------------------------------------------------------
    def event(self, kind: str, t: Optional[float] = None,
              **fields: object) -> None:
        """Emit one structured trace event (no-op when disabled/untraced)."""
        if self.enabled and self.tracer is not None:
            self.tracer.emit(kind, t=t, **fields)

    @property
    def trace_path(self) -> Optional[str]:
        return self.tracer.path if self.tracer is not None else None

    def close(self) -> None:
        """Finalize the trace (writes the ``run.end`` footer)."""
        if self.tracer is not None:
            self.tracer.close()

    # -- causal spans --------------------------------------------------------
    def span(self, name: str, *, t: Optional[float] = None,
             parent: object = None, **fields: object) -> AbstractSpan:
        """Open a causal span; the shared :data:`NULL_SPAN` when disabled.

        ``parent`` accepts a :class:`Span`, a :class:`SpanContext`, or
        ``None`` (inherit the innermost entered span, else start a new
        trace).  *fields* land on the ``span.start`` event; *t* is
        simulation time when meaningful.  Use as a context manager to
        make synchronously nested spans parent automatically.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and not isinstance(parent, (AbstractSpan,
                                                          SpanContext)):
            raise TypeError("span parent must be a Span, SpanContext, or "
                            f"None, got {type(parent).__name__}")
        return self._spans.create(self, name, t=t, parent=parent,
                                  fields=dict(fields))

    def current_span_context(self) -> Optional[SpanContext]:
        """The innermost entered span's context (propagation carriers
        capture this), or ``None``."""
        return self._spans.current()

    def push_span_context(self, context: SpanContext) -> None:
        """Activate a propagated span context (scheduler-carried)."""
        self._spans.push(context)

    def pop_span_context(self) -> None:
        self._spans.pop()

    # -- periodic sampling ---------------------------------------------------
    def sampler(self, interval: float) -> MetricSampler:
        """A sim-time metric sampler; attach it to an
        :class:`~repro.net.simulator.EventScheduler`."""
        return MetricSampler(self, interval)

    # -- timing spans --------------------------------------------------------
    def probe(self, name: str, **fields: object):
        """A wall-clock timing span; the shared no-op when disabled."""
        if not self.enabled:
            return NULL_PROBE
        return Probe(self, name, fields)


#: The permanently disabled default handle.
NULL_OBS = Observability.disabled()

_ACTIVE: Observability = NULL_OBS


def get_obs() -> Observability:
    """The currently active observability handle (default: disabled)."""
    return _ACTIVE


@contextmanager
def observing(obs: Optional[Observability]) -> Iterator[Observability]:
    """Activate *obs* for the dynamic extent of the ``with`` block.

    Objects constructed inside the block (orchestrators, schedulers,
    protocol instances) bind the handle and keep reporting to it after
    the block exits; ``None`` activates :data:`NULL_OBS`.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = obs if obs is not None else NULL_OBS
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


__all__ = ["AbstractSpan", "Counter", "Gauge", "Histogram", "METRIC_SAMPLE",
           "MetricSampler", "NULL_OBS", "NULL_PROBE", "NULL_SPAN", "NullProbe",
           "NullSpan", "Observability", "Probe", "Registry", "RUN_END",
           "RUN_START", "SPAN_END", "SPAN_START", "Span", "SpanContext",
           "SpanTracker", "TRACE_SCHEMA", "Tracer", "WALL_PREFIX", "get_obs",
           "json_safe", "observing", "strip_wall_fields",
           "validate_span_events", "validate_span_lines", "validate_spans",
           "validate_trace", "validate_trace_lines"]
