"""Timing probes: wall-clock spans with negligible disabled overhead.

``obs.probe("vnbone.rebuild", asn=7)`` returns a context manager.  When
the observability handle is enabled, entering/exiting the span records
the elapsed wall time into the ``probe.<name>_wall_ms`` histogram and
emits a ``probe`` trace event.  When disabled, :data:`NULL_PROBE` — a
shared, stateless no-op — is returned instead, so the hot path pays one
attribute check and nothing else.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class NullProbe:
    """Shared no-op span handed out by disabled observability handles."""

    __slots__ = ()

    def __enter__(self) -> "NullProbe":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_PROBE = NullProbe()


class Probe:
    """One live timing span bound to an observability handle."""

    __slots__ = ("_obs", "name", "fields", "_wall_t0", "wall_ms")

    def __init__(self, obs: object, name: str,
                 fields: Optional[Dict[str, object]] = None) -> None:
        self._obs = obs
        self.name = name
        self.fields = fields or {}
        self._wall_t0 = 0.0
        self.wall_ms: Optional[float] = None

    def __enter__(self) -> "Probe":
        self._wall_t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_ms = (time.perf_counter() - self._wall_t0) * 1000.0
        obs = self._obs
        obs.histogram(f"probe.{self.name}_wall_ms").observe(self.wall_ms)
        obs.event("probe", name=self.name, wall_ms=self.wall_ms, **self.fields)
