"""Process-local metric registry: named counters, gauges, histograms.

The registry is the aggregation half of :mod:`repro.obs`: instrumented
code increments counters and observes histograms through an
:class:`~repro.obs.Observability` handle, and an experiment run
snapshots the whole registry into its
:class:`~repro.experiments.ExperimentResult.metrics` at the end.

Everything here is deliberately dependency-free and allocation-light:
metric objects are plain ``__slots__`` holders the hot paths cache once
and mutate with attribute arithmetic.  A :meth:`Registry.snapshot` is
JSON-safe by construction (str keys, int/float values only).
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A named point-in-time value (e.g. max queue depth seen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming summary of an observed value series.

    Keeps count/total/min/max plus Welford running-variance state
    rather than buckets: enough for the timing and size distributions
    the experiments report, with O(1) memory and no configuration.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_welford_mean",
                 "_welford_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._welford_mean = 0.0
        self._welford_m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._welford_mean
        self._welford_mean += delta / self.count
        self._welford_m2 += delta * (value - self._welford_mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance, streamed via Welford's algorithm."""
        return self._welford_m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return self.variance ** 0.5

    def summary(self) -> Dict[str, float]:
        return {"count": float(self.count), "total": float(self.total),
                "mean": float(self.mean), "stddev": float(self.stddev),
                "min": float(self.min) if self.min is not None else 0.0,
                "max": float(self.max) if self.max is not None else 0.0}


class Registry:
    """Holds every named metric of one observability context.

    Metric accessors create on first use, so instrumented code never
    has to pre-declare; repeated lookups return the same object, which
    hot paths exploit by caching the metric at construction time.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def counter_values(self) -> Dict[str, int]:
        """Counter values only, keys sorted (the sampler payload)."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def gauge_values(self) -> Dict[str, float]:
        """Gauge values only, keys sorted (the sampler payload)."""
        return {name: self._gauges[name].value
                for name in sorted(self._gauges)}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dump of every metric, keys sorted for stability."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
