"""Periodic metric sampling on the simulation clock.

Gauges and counters are last-write-wins aggregates; a
:class:`MetricSampler` turns them into a time series by emitting
``metric.sample`` events at deterministic sim-time ticks (``t = 0,
interval, 2*interval, ...``).

The sampler is *lazy*: it never schedules events of its own (a
self-rescheduling tick would keep the event queue alive and break
``run_until_idle``).  Instead the :class:`~repro.net.simulator.
EventScheduler` it is attached to calls :meth:`on_advance` whenever
simulation time moves, and the sampler emits one event per tick
crossed since the last advance.  Sample times and payloads are pure
functions of the seeded run, so ``metric.sample`` events survive the
``strip_wall_fields()`` determinism check.

Histograms are deliberately excluded from the payload: their summaries
aggregate ``wall_ms`` observations, which would smuggle nondeterminism
into a non-``wall_`` field.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

#: Event kind the sampler emits.
METRIC_SAMPLE = "metric.sample"


class MetricSampler:
    """Emits ``metric.sample`` events at fixed sim-time intervals.

    Create via ``obs.sampler(interval)`` and attach with
    ``scheduler.attach_sampler(sampler)``; the scheduler then drives
    :meth:`on_advance` from every clock update.
    """

    __slots__ = ("obs", "interval", "_next_tick", "samples")

    def __init__(self, obs: "Observability", interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"sampler interval must be positive, got {interval!r}")
        self.obs = obs
        self.interval = float(interval)
        self._next_tick = 0.0
        self.samples = 0

    def on_advance(self, now: float) -> None:
        """Emit one sample per tick in ``(last advance, now]``."""
        if not self.obs.enabled:
            return
        while self._next_tick <= now:
            registry = self.obs.registry
            self.obs.event(METRIC_SAMPLE, t=self._next_tick,
                           sample=self.samples,
                           counters=registry.counter_values(),
                           gauges=registry.gauge_values())
            self.samples += 1
            self._next_tick += self.interval


__all__ = ["METRIC_SAMPLE", "MetricSampler"]
