"""The shared JSON-safety contract for reports, results, and trace events.

Every ``to_dict()`` in the library (``ExperimentResult``,
``ReachabilityReport``, ``FaultEpochReport``, ``MulticastTrace``, trace
events, ...) routes its values through :func:`json_safe` so that the
CLI, the benchmarks, and the JSONL tracer all serialize the same way:

* mappings keep their keys (coerced to ``str``), values recurse;
* lists/tuples become lists; sets become *sorted* lists (stable output);
* enums collapse to their ``value``;
* objects exposing ``to_dict()`` are asked to serialize themselves;
* everything else that is not a JSON scalar falls back to ``str()``.
"""

from __future__ import annotations

import enum
from typing import Any

_SCALARS = (str, int, float, bool, type(None))


def json_safe(value: Any) -> Any:
    """Recursively convert *value* into JSON-serializable builtins."""
    if isinstance(value, enum.Enum):
        return json_safe(value.value)
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(item) for item in value)
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return json_safe(to_dict())
    return str(value)
