"""Causal spans: deterministic trace trees over the JSONL event stream.

A *span* is a named interval of causally related work — one forwarding
walk, one fault epoch, one reconvergence episode — emitted as a pair of
``span.start`` / ``span.end`` events carrying ``trace_id`` / ``span_id``
/ ``parent_id``.  Spans nest into trees: every root span opens a new
trace, children inherit their parent's ``trace_id``.

ID determinism
--------------
Span and trace identifiers are allocated from per-run monotonic
counters owned by the :class:`SpanTracker` of one
:class:`~repro.obs.Observability` handle — **never** from wall clock,
``uuid4``, or process-global state.  Two same-seed runs perform the
same operations in the same order, so they allocate identical IDs and
the span events survive the ``strip_wall_fields()`` byte-identity
check like every other deterministic field (see
``docs/observability.md`` invariant 5 and ``docs/tracing.md``).

Propagation
-----------
Three carriers move a span context across asynchrony:

* an explicit stack on the handle (``with obs.span(...)`` pushes, so
  synchronously nested spans parent automatically);
* :attr:`repro.net.packet.Packet.span` — a forwarding walk stamps its
  context onto the packet, so replicas and encap/decap copies stay in
  the same trace;
* :class:`~repro.net.simulator.EventScheduler` — ``schedule()``
  captures the current context and ``step()`` re-activates it around
  the callback, so control-plane message cascades parent correctly.

The disabled path is a shared no-op (:data:`NULL_SPAN`), mirroring
:data:`~repro.obs.probe.NULL_PROBE`: span plumbing costs one
``enabled`` check when observability is off.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Set,
                    Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs import Observability

#: Event kinds the span layer emits.
SPAN_START = "span.start"
SPAN_END = "span.end"


class SpanContext:
    """The immutable, propagatable identity of one span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"SpanContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanContext):
            return NotImplemented
        return (self.trace_id, self.span_id) == (other.trace_id, other.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


class AbstractSpan:
    """Shared interface of :class:`Span` and the disabled no-op."""

    __slots__ = ()

    @property
    def context(self) -> Optional[SpanContext]:
        return None

    def start(self, t: Optional[float] = None) -> "AbstractSpan":
        return self

    def annotate(self, **fields: object) -> None:
        return None

    def end(self, t: Optional[float] = None, **fields: object) -> None:
        return None

    def __enter__(self) -> "AbstractSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullSpan(AbstractSpan):
    """Permanently disabled span; every operation is a no-op."""

    __slots__ = ()


#: Shared no-op returned by ``obs.span(...)`` on a disabled handle.
NULL_SPAN = NullSpan()


class Span(AbstractSpan):
    """One live span bound to an enabled observability handle.

    The constructor allocates IDs but emits nothing; the ``span.start``
    event is written by :meth:`start` (called implicitly by
    ``__enter__`` and, if needed, by :meth:`end`, so a start always
    precedes its end).  ``with obs.span(...)`` additionally pushes the
    context onto the handle's stack so nested spans parent correctly.
    """

    __slots__ = ("_obs", "name", "_context", "parent_id", "_t_start",
                 "_start_fields", "_end_fields", "_started", "_ended")

    def __init__(self, obs: "Observability", name: str, context: SpanContext,
                 parent_id: Optional[str], t: Optional[float],
                 fields: Dict[str, object]) -> None:
        self._obs = obs
        self.name = name
        self._context = context
        self.parent_id = parent_id
        self._t_start = t
        self._start_fields = fields
        self._end_fields: Dict[str, object] = {}
        self._started = False
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return self._context

    def start(self, t: Optional[float] = None) -> "Span":
        """Emit ``span.start`` (idempotent)."""
        if self._started:
            return self
        self._started = True
        if t is not None:
            self._t_start = t
        fields = self._start_fields
        if self.parent_id is not None:
            fields = dict(fields)
            fields["parent_id"] = self.parent_id
        self._obs.event(SPAN_START, t=self._t_start, name=self.name,
                        trace_id=self._context.trace_id,
                        span_id=self._context.span_id, **fields)
        return self

    def annotate(self, **fields: object) -> None:
        """Attach fields to the eventual ``span.end`` event."""
        self._end_fields.update(fields)

    def end(self, t: Optional[float] = None, **fields: object) -> None:
        """Emit ``span.end`` (idempotent; forces the start out first)."""
        if self._ended:
            return
        self.start()
        self._ended = True
        if fields:
            self._end_fields.update(fields)
        self._obs.event(SPAN_END, t=t, name=self.name,
                        trace_id=self._context.trace_id,
                        span_id=self._context.span_id, **self._end_fields)

    def __enter__(self) -> "Span":
        self.start()
        self._obs.push_span_context(self._context)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._obs.pop_span_context()
        exc_type = exc_info[0] if exc_info else None
        if exc_type is not None and not self._ended:
            name = getattr(exc_type, "__name__", None)
            self.annotate(error=name if isinstance(name, str) else str(exc_type))
        self.end()


#: Acceptable ``parent=`` arguments to ``obs.span``.
ParentLike = Union[AbstractSpan, SpanContext, None]


class SpanTracker:
    """Per-handle span state: deterministic ID counters + context stack.

    One tracker per :class:`~repro.obs.Observability` handle, created
    eagerly so the counters reset with the handle — two same-seed runs
    against fresh handles allocate identical ID sequences.
    """

    __slots__ = ("_span_n", "_trace_n", "_stack")

    def __init__(self) -> None:
        self._span_n = 0
        self._trace_n = 0
        self._stack: List[SpanContext] = []

    def create(self, obs: "Observability", name: str, *,
               t: Optional[float], parent: ParentLike,
               fields: Dict[str, object]) -> Span:
        if parent is None:
            parent_ctx: Optional[SpanContext] = self.current()
        elif isinstance(parent, AbstractSpan):
            parent_ctx = parent.context
        else:
            parent_ctx = parent
        self._span_n += 1
        span_id = f"s{self._span_n:06d}"
        if parent_ctx is None:
            self._trace_n += 1
            trace_id = f"t{self._trace_n:04d}"
            parent_id: Optional[str] = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        return Span(obs, name, SpanContext(trace_id, span_id), parent_id,
                    t, fields)

    def current(self) -> Optional[SpanContext]:
        return self._stack[-1] if self._stack else None

    def push(self, context: SpanContext) -> None:
        self._stack.append(context)

    def pop(self) -> None:
        if self._stack:
            self._stack.pop()


# -- validation ----------------------------------------------------------------

def _span_ids(event: Dict[str, object]) -> Tuple[Optional[str], Optional[str],
                                                 Optional[str]]:
    span_id = event.get("span_id")
    trace_id = event.get("trace_id")
    parent_id = event.get("parent_id")
    return (span_id if isinstance(span_id, str) else None,
            trace_id if isinstance(trace_id, str) else None,
            parent_id if isinstance(parent_id, str) else None)


def validate_span_events(events: Iterable[Dict[str, object]]) -> List[str]:
    """Check span causality invariants over a parsed event stream.

    Streaming (one pass, state proportional to the number of distinct
    spans).  Checked invariants:

    * ``span.start``: unique ``span_id``; string ``trace_id`` and
      ``name``; a ``parent_id``, when present, references a span that
      *already started* (parents precede children) and shares its
      ``trace_id``;
    * ``span.end``: matches a prior ``span.start`` of the same
      ``span_id`` and is not a duplicate end.

    Returns human-readable problems; empty means valid.  Unclosed spans
    are legal (some spans outlive the trace) and are not reported here.
    """
    errors: List[str] = []
    started: Dict[str, str] = {}  # span_id -> trace_id
    ended: Set[str] = set()
    for n, event in enumerate(events, start=1):
        kind = event.get("kind")
        if kind == SPAN_START:
            span_id, trace_id, parent_id = _span_ids(event)
            if span_id is None or trace_id is None:
                errors.append(f"event {n}: span.start missing span_id/trace_id")
                continue
            if not isinstance(event.get("name"), str):
                errors.append(f"event {n}: span.start {span_id} has no 'name'")
            if span_id in started:
                errors.append(f"event {n}: duplicate span.start for {span_id}")
                continue
            if "parent_id" in event:
                if parent_id is None:
                    errors.append(f"event {n}: span.start {span_id} has a "
                                  "non-string parent_id")
                elif parent_id not in started:
                    errors.append(f"event {n}: span.start {span_id} has orphan "
                                  f"parent_id {parent_id} (parent must start "
                                  "first)")
                elif started[parent_id] != trace_id:
                    errors.append(f"event {n}: span {span_id} trace_id "
                                  f"{trace_id} != parent {parent_id} trace_id "
                                  f"{started[parent_id]}")
            started[span_id] = trace_id
        elif kind == SPAN_END:
            span_id, trace_id, _ = _span_ids(event)
            if span_id is None or trace_id is None:
                errors.append(f"event {n}: span.end missing span_id/trace_id")
                continue
            if span_id not in started:
                errors.append(f"event {n}: span.end {span_id} without a "
                              "matching span.start")
                continue
            if span_id in ended:
                errors.append(f"event {n}: duplicate span.end for {span_id}")
                continue
            if started[span_id] != trace_id:
                errors.append(f"event {n}: span.end {span_id} trace_id "
                              f"{trace_id} != start trace_id "
                              f"{started[span_id]}")
            ended.add(span_id)
    return errors


def validate_span_lines(lines: Iterable[str]) -> List[str]:
    """Span-validate serialized JSONL lines (non-JSON lines are skipped
    here; the trace schema validator reports those)."""
    import json

    def _events() -> Iterable[Dict[str, object]]:
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event

    return validate_span_events(_events())


def validate_spans(path: str) -> List[str]:
    """Span-validate a JSONL trace file, streaming line by line."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_span_lines(fh)


__all__ = ["AbstractSpan", "NULL_SPAN", "NullSpan", "SPAN_END", "SPAN_START",
           "Span", "SpanContext", "SpanTracker", "validate_span_events",
           "validate_span_lines", "validate_spans"]
