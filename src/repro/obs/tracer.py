"""Structured JSONL event tracing with per-run context.

One :class:`Tracer` is one event stream: a ``run.start`` header
carrying the run context (experiment id, seed, scenario parameters),
then one JSON object per line for every emitted event, then a
``run.end`` footer when the tracer is closed.

The stream format (documented in ``docs/observability.md``) is designed
for two consumers: post-hoc analysis tooling (every line is standalone
JSON with sorted keys) and determinism regression tests (two same-seed
runs emit byte-identical streams once fields prefixed ``wall_`` —
wall-clock timings, inherently nondeterministic — are stripped).

A tracer opened without a ``path`` keeps its serialized lines in
memory (:meth:`Tracer.lines`), which tests and the self-check use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional

from repro.obs.serialize import json_safe

#: Key prefix marking wall-clock-derived (nondeterministic) fields.
WALL_PREFIX = "wall_"

#: Event kinds every stream starts and ends with.
RUN_START = "run.start"
RUN_END = "run.end"

#: Schema tag stamped into the ``run.start`` header.  v2 added the
#: ``span.start``/``span.end`` causal-span events (``docs/tracing.md``);
#: v3 adds ``probe.rtt`` measurement events and latency fields on
#: forward events/spans.  v1 streams (no ``schema`` field) and v2
#: streams still validate.
TRACE_SCHEMA = "repro.trace/v3"

_KNOWN_SCHEMAS = ("repro.trace/v1", "repro.trace/v2", TRACE_SCHEMA)


class Tracer:
    """Writes one structured event stream, as JSON lines.

    Parameters
    ----------
    path:
        Target file.  ``None`` keeps lines in memory instead.
    context:
        Per-run context (seed, topology, scenario, params, ...), written
        once into the ``run.start`` header event.
    """

    def __init__(self, path: Optional[str] = None,
                 context: Optional[Dict[str, object]] = None) -> None:
        self.path = str(path) if path is not None else None
        self.context = dict(context or {})
        self._fh: Optional[IO[str]] = None
        self._lines: List[str] = []
        self._seq = 0
        self._started = False
        self._closed = False

    @classmethod
    def for_cell(cls, cell_name: str, directory: str,
                 context: Optional[Dict[str, object]] = None) -> "Tracer":
        """A tracer writing to ``<directory>/<cell_name>.jsonl``.

        The per-cell trace convention of the fleet engine: each sweep
        cell (and each worker process) gets its own stream, derived
        deterministically from the cell id, so parallel cells never
        interleave events in one file.  Creates *directory* if needed.
        """
        target = Path(directory) / f"{cell_name}.jsonl"
        target.parent.mkdir(parents=True, exist_ok=True)
        return cls(path=str(target), context=context)

    # -- lifecycle ----------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        if self.path is not None:
            self._fh = Path(self.path).open("w", encoding="utf-8")
        self._write({"kind": RUN_START, "seq": self._next_seq(),
                     "schema": TRACE_SCHEMA,
                     "context": json_safe(self.context)})

    def close(self) -> None:
        """Write the ``run.end`` footer and release the file handle.

        Durable: the handle is closed even when writing the footer
        raises (full disk, closed stream), so a failed final write
        never leaks the descriptor or leaves the file unflushed.
        """
        if self._closed:
            return
        self._ensure_started()
        self._closed = True
        try:
            self._write({"kind": RUN_END, "seq": self._next_seq(),
                         "events": self._seq - 2})
        finally:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Tracer":
        self._ensure_started()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- emission -----------------------------------------------------------
    def emit(self, kind: str, t: Optional[float] = None, **fields: object) -> None:
        """Append one event.  *t* is simulation time when meaningful."""
        if self._closed:
            return
        self._ensure_started()
        record: Dict[str, object] = {"kind": kind, "seq": self._next_seq()}
        if t is not None:
            record["t"] = t
        for key, value in fields.items():
            record[key] = json_safe(value)
        self._write(record)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self._fh is not None:
            self._fh.write(line + "\n")
        else:
            self._lines.append(line)

    # -- inspection ----------------------------------------------------------
    def lines(self) -> List[str]:
        """Serialized lines (in-memory tracers only)."""
        if self.path is not None:
            raise ValueError("lines() is only available on in-memory tracers; "
                             f"this tracer writes to {self.path!r}")
        return list(self._lines)

    def events(self) -> List[Dict[str, object]]:
        """Parsed events (in-memory tracers only)."""
        return [json.loads(line) for line in self.lines()]


# -- schema validation ---------------------------------------------------------

def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """Validate an event stream against the documented JSONL schema.

    Returns a list of human-readable problems; empty means valid.
    Checked invariants: every line is a standalone JSON object; ``kind``
    (string) and ``seq`` (int) are present; ``seq`` is consecutive from
    0; the first event is ``run.start`` with a ``context`` object; ``t``
    and every ``wall_*`` field are numbers; a ``run.end``, if present,
    is the final event.
    """
    errors: List[str] = []
    expected_seq = 0
    saw_end_at: Optional[int] = None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(event, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = event.get("kind")
        if not isinstance(kind, str) or not kind:
            errors.append(f"line {lineno}: missing or non-string 'kind'")
        seq = event.get("seq")
        if not isinstance(seq, int):
            errors.append(f"line {lineno}: missing or non-int 'seq'")
        elif seq != expected_seq:
            errors.append(f"line {lineno}: seq {seq} != expected {expected_seq}")
        expected_seq += 1
        if lineno == 1:
            if kind != RUN_START:
                errors.append(f"line 1: first event must be {RUN_START!r}, "
                              f"got {kind!r}")
            elif not isinstance(event.get("context"), dict):
                errors.append("line 1: run.start has no 'context' object")
            schema = event.get("schema")
            if schema is not None and schema not in _KNOWN_SCHEMAS:
                errors.append(f"line 1: unknown trace schema {schema!r}")
        if kind in ("span.start", "span.end"):
            for field in ("span_id", "trace_id"):
                if not isinstance(event.get(field), str):
                    errors.append(f"line {lineno}: {kind} has missing or "
                                  f"non-string {field!r}")
        if saw_end_at is not None:
            errors.append(f"line {lineno}: event after {RUN_END!r} "
                          f"(line {saw_end_at})")
        if kind == RUN_END:
            saw_end_at = lineno
        t = event.get("t")
        if t is not None and not isinstance(t, (int, float)):
            errors.append(f"line {lineno}: 't' is not a number")
        for key, value in event.items():
            if key.startswith(WALL_PREFIX) and not isinstance(value, (int, float)):
                errors.append(f"line {lineno}: wall field {key!r} is not a number")
    if expected_seq == 0:
        errors.append("trace is empty")
    return errors


def validate_trace(path: str) -> List[str]:
    """Validate a JSONL trace file; returns problems (empty == valid).

    Streams line-by-line from the open handle — a ROADMAP-scale trace
    (millions of events) validates in constant memory instead of being
    materialized as one string.
    """
    with Path(path).open("r", encoding="utf-8") as fh:
        return validate_trace_lines(fh)


def strip_wall_fields(lines: Iterable[str]) -> List[str]:
    """Re-serialize events with every ``wall_*`` field removed.

    The determinism regression uses this: two same-seed runs must be
    byte-identical modulo wall-clock fields.
    """
    stripped: List[str] = []
    for line in lines:
        event = json.loads(line)
        cleaned = {key: value for key, value in event.items()
                   if not key.startswith(WALL_PREFIX)}
        stripped.append(json.dumps(cleaned, sort_keys=True,
                                   separators=(",", ":")))
    return stripped
