"""repro.perf: topology-versioned path caching + the bench harness.

Two halves:

* :mod:`repro.perf.cache` — the :class:`PathCache` memoizing the
  network's ground-truth Dijkstra trees per ``topology_version``, and
  the process-wide :func:`caching` default the per-layer SPF caches
  (link-state IGP, vN-Bone routing, vN-Bone topology) consult at
  construction time.
* :mod:`repro.perf.bench` — the reproducible perf-trajectory harness
  behind ``python -m repro bench`` (schema ``repro.bench/v1``).  It is
  *not* imported here: bench pulls in the whole experiment stack, and
  this package must stay importable from :mod:`repro.net.network`.
"""

from repro.perf.cache import (PathCache, caching, caching_enabled,
                              set_caching_default)

__all__ = ["PathCache", "caching", "caching_enabled", "set_caching_default"]
