"""The reproducible perf-trajectory harness (``python -m repro bench``).

Runs a fixed, seeded workload matrix — initial convergence, a staged
reachability sweep, a fault epoch, and a multicast fanout — **twice**
per workload: once with the path/SPF caches enabled and once with the
uncached baseline (:func:`repro.perf.caching`).  Each leg executes
under its own :class:`~repro.obs.Observability` handle, so the emitted
document carries per-leg wall seconds, Dijkstra/SPF run counts, and
cache hit rates, plus the correctness bit that matters most:
``identical_metrics`` — the canonical JSON form of each workload's
experiment output must be bit-identical between the two legs.

The output schema is ``repro.bench/v2`` with ``"mode": "matrix"``::

    {
      "schema": "repro.bench/v2",
      "mode": "matrix",
      "seed": 42,
      "quick": false,
      "workloads": {
        "<name>": {
          "params": {"n_tier1": int, ..., "sample": int, ...},
          "wall_seconds":  {"cached": float, "uncached": float},
          "dijkstra_runs": {"cached": int,   "uncached": int},
          "spf_runs":      {"cached": int,   "uncached": int},
          "path_cache": {"hits": int, "misses": int,
                          "invalidations": int, "hit_rate": float},
          "spf_cache":  {"hits": int, "hit_rate": float},
          "identical_metrics": bool
        }, ...
      },
      "totals": {"dijkstra_runs": {"cached": int, "uncached": int},
                  "wall_seconds":  {"cached": float, "uncached": float},
                  "identical_metrics": bool}
    }

``params`` stamps the resolved topology dimensions and workload sizing
knobs into each entry, so a ``--quick`` artifact is self-describing
and never silently compared against a full-size run.  The other
``repro.bench/v2`` mode is ``"scale_sweep"``
(:mod:`repro.perf.scale_bench`); :func:`validate_bench_dict` handles
both, plus legacy ``repro.bench/v1`` documents.

``wall_seconds`` is the only nondeterministic field (hence the
``wall_`` prefix, per the tracing convention); everything else is a
pure function of the seed.  Regression tooling should compare counter
fields across ``BENCH_*.json`` files and *plot* wall seconds, never
gate on them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.evolution import EvolvableInternet
from repro.experiments.base import (ExperimentResult, Param, WorkloadSpec,
                                    all_specs, register)
from repro.faults.plan import FaultPlan
from repro.faults.injector import FaultInjector
from repro.net.errors import ReproError
from repro.obs import Observability, observing
from repro.obs.serialize import json_safe
from repro.perf.cache import caching
from repro.topogen.hierarchy import InternetSpec
from repro.vnbone.multicast import enable_multicast

#: The emitted document's schema tag.
BENCH_SCHEMA = "repro.bench/v2"
#: Legacy schema still accepted by :func:`validate_bench_dict`.
BENCH_SCHEMA_V1 = "repro.bench/v1"
#: The two ``repro.bench/v2`` document modes.
BENCH_MODES = ("matrix", "scale_sweep")
#: Default output path (PR-stamped so the repo accumulates a trajectory).
DEFAULT_BENCH_PATH = "BENCH_PR6.json"
#: Default workload seed.
DEFAULT_SEED = 42

#: A workload builds a scenario from scratch and returns its JSON-safe
#: experiment payload.  It must be a pure function of (seed, quick).
WorkloadFn = Callable[[int, bool], object]


#: Per-workload sizing knobs, quick vs. full.  Workloads read their
#: sizes here and :func:`workload_params` stamps the resolved values
#: into each emitted entry — the artifact records what actually ran,
#: not just a shared workload name (a ``--quick`` document used to be
#: indistinguishable from a full one below the top-level flag).
WORKLOAD_SIZES: Dict[str, Dict[str, Dict[str, int]]] = {
    "converge": {"quick": {}, "full": {}},
    "reachability_sweep": {"quick": {"sample": 30, "adoption_stages": 2},
                           "full": {"sample": 120, "adoption_stages": 4}},
    "fault_epoch": {"quick": {"sample": 20}, "full": {"sample": 60}},
    "multicast_fanout": {"quick": {"receivers": 4}, "full": {"receivers": 8}},
}


def _sizes(name: str, quick: bool) -> Dict[str, int]:
    return WORKLOAD_SIZES[name]["quick" if quick else "full"]


def workload_params(name: str, seed: int, quick: bool) -> Dict[str, int]:
    """The resolved sizing of one workload run: topology dimensions
    plus the workload's own knobs from :data:`WORKLOAD_SIZES`."""
    spec = _spec(seed, quick)
    params = {"n_tier1": spec.n_tier1, "n_tier2": spec.n_tier2,
              "n_stub": spec.n_stub}
    params.update(_sizes(name, quick))
    return params


def _spec(seed: int, quick: bool) -> InternetSpec:
    """The benchmark topology: fixed shape, seeded wiring."""
    if quick:
        return InternetSpec(n_tier1=2, n_tier2=3, n_stub=5, seed=seed)
    return InternetSpec(seed=seed)


def _deployed_internet(seed: int, quick: bool
                       ) -> Tuple[EvolvableInternet, object]:
    """An internet with an IPv8 deployment in the first tier-1 and the
    first two stub domains (the shared workload fixture)."""
    internet = EvolvableInternet.generate(_spec(seed, quick), seed=seed)
    tier1 = internet.tier1_asns()
    stubs = internet.stub_asns()
    deployment = internet.new_deployment(version=8, scheme="default",
                                         default_asn=tier1[0])
    deployment.deploy(tier1[0])
    for asn in stubs[:2]:
        deployment.deploy(asn)
    deployment.rebuild()
    return internet, deployment


# -- the workload matrix ----------------------------------------------------
def workload_converge(seed: int, quick: bool) -> object:
    """Build + converge + deploy + rebuild; payload is the topology
    summary, the adopter map, and control-plane message totals."""
    internet, _deployment = _deployed_internet(seed, quick)
    return {"describe": internet.describe(),
            "message_totals": internet.orchestrator.message_totals()}


def workload_reachability_sweep(seed: int, quick: bool) -> object:
    """Staged adoption sweep, measuring IPv8 reachability per stage."""
    sizes = _sizes("reachability_sweep", quick)
    sample = sizes["sample"]
    internet, deployment = _deployed_internet(seed, quick)
    stages = [internet.reachability(8, sample=sample, seed=seed).to_dict()]
    remaining = [asn for asn in internet.stub_asns()
                 if asn not in deployment.adopting_asns()]
    for asn in remaining[:sizes["adoption_stages"]]:
        deployment.deploy(asn)
        deployment.rebuild()
        stages.append(
            internet.reachability(8, sample=sample, seed=seed).to_dict())
    return {"stages": stages,
            "ipv4": internet.ipv4_reachability(sample=sample,
                                               seed=seed).to_dict()}


def workload_fault_epoch(seed: int, quick: bool) -> object:
    """Crash/recover a vN-Bone member under a reachability workload."""
    sample = _sizes("fault_epoch", quick)["sample"]
    internet, deployment = _deployed_internet(seed, quick)
    members = sorted(deployment.states)
    victim = members[1] if len(members) > 1 else members[0]
    plan = (FaultPlan()
            .crash_node(victim, at=10.0)
            .recover_node(victim, at=200.0))
    injector = FaultInjector(internet.orchestrator, plan,
                             deployments=[deployment])
    reports = injector.play(
        workload=lambda: internet.reachability(8, sample=sample, seed=seed))
    return {"victim": victim,
            "epochs": [report.to_dict() for report in reports]}


def workload_multicast_fanout(seed: int, quick: bool) -> object:
    """One group, every stub host joined, one source send."""
    internet, deployment = _deployed_internet(seed, quick)
    service = enable_multicast(deployment)
    group = service.create_group()
    hosts = internet.hosts()
    receivers = hosts[1:1 + _sizes("multicast_fanout", quick)["receivers"]]
    for host_id in receivers:
        service.join(group, host_id)
    service.rebuild()
    trace = service.send(hosts[0], group)
    return {"source": hosts[0], "receivers": receivers,
            "trace": trace.to_dict()}


#: Ordered (name, workload) matrix; order is part of the schema.
WORKLOADS: List[Tuple[str, WorkloadFn]] = [
    ("converge", workload_converge),
    ("reachability_sweep", workload_reachability_sweep),
    ("fault_epoch", workload_fault_epoch),
    ("multicast_fanout", workload_multicast_fanout),
]

#: Registry id prefix for the bench workloads.
BENCH_ID_PREFIX = "bench_"


def _make_bench_runner(
        name: str, fn: WorkloadFn
) -> Callable[[int, Optional[Dict[str, object]]], ExperimentResult]:
    """Wrap a raw workload as a registered ``runner(seed, params)``."""

    def runner(seed: int = DEFAULT_SEED,
               params: Optional[Dict[str, object]] = None
               ) -> ExperimentResult:
        quick = bool(dict(params or {}).get("quick", False))
        payload = _canonical(fn(seed, quick))
        resolved = workload_params(name, seed, quick)
        header = f"{'param':>18} {'value':>8}"
        rows = [f"{key:>18} {value:>8}"
                for key, value in sorted(resolved.items())]
        return ExperimentResult(
            experiment_id=f"{BENCH_ID_PREFIX}{name}",
            title=f"perf bench workload: {name}",
            header=header, rows=rows, data=payload,
            footer="payload is a pure function of (seed, quick)",
            seed=seed, params={"quick": quick})

    return runner


def _register_bench_workloads() -> None:
    """Expose the matrix through the workload-spec registry, so the
    fleet, the CLI, and ``run_bench`` all enumerate it from one surface."""
    for name, fn in WORKLOADS:
        register(f"{BENCH_ID_PREFIX}{name}",
                 f"perf bench workload: {name} (payload is a pure "
                 "function of seed/quick)",
                 params={"quick": Param("bool", False,
                                        "small topology / fewer samples")},
                 tags=("bench",))(_make_bench_runner(name, fn))


_register_bench_workloads()


def bench_specs() -> List[Tuple[str, WorkloadSpec]]:
    """The bench matrix as ``(name, spec)`` pairs, enumerated from the
    registry in the canonical :data:`WORKLOADS` order."""
    order = {name: index for index, (name, _) in enumerate(WORKLOADS)}
    entries = [(spec.workload_id[len(BENCH_ID_PREFIX):], spec)
               for spec in all_specs() if "bench" in spec.tags]
    entries.sort(key=lambda item: (order.get(item[0], len(order)), item[0]))
    return entries


def _spec_workload(spec: WorkloadSpec) -> WorkloadFn:
    """Adapt a registered bench spec back to the ``(seed, quick)`` leg
    shape; the call path validates params against the spec's schema."""

    def fn(seed: int, quick: bool) -> object:
        return spec.call(seed=seed, params={"quick": quick}).data

    return fn


# -- leg execution ----------------------------------------------------------
@dataclass
class LegResult:
    """One cached or uncached execution of one workload."""

    payload: object
    wall_seconds: float
    counters: Dict[str, int]

    def counter(self, name: str) -> int:
        value = self.counters.get(name, 0)
        return int(value) if isinstance(value, (int, float)) else 0


def _canonical(payload: object) -> object:
    """Round-trip through sorted JSON so leg comparison is bit-exact."""
    return json.loads(json.dumps(json_safe(payload), sort_keys=True))


def run_leg(workload: WorkloadFn, seed: int, quick: bool,
            cached: bool) -> LegResult:
    """Run one workload leg under a fresh observability handle."""
    obs = Observability()
    with caching(cached):
        with observing(obs):
            wall_t0 = time.perf_counter()
            payload = workload(seed, quick)
            wall_elapsed = time.perf_counter() - wall_t0
    counters = obs.metrics_summary()["counters"]
    if not isinstance(counters, dict):  # pragma: no cover - registry contract
        raise ReproError("registry snapshot has no counters mapping")
    return LegResult(payload=_canonical(payload), wall_seconds=wall_elapsed,
                     counters=dict(counters))


def _rate(hits: int, total: int) -> float:
    return hits / total if total > 0 else 0.0


def _workload_entry(cached: LegResult,
                    uncached: LegResult) -> Dict[str, object]:
    path_hits = cached.counter("perf.path_cache.hits")
    path_misses = cached.counter("perf.path_cache.misses")
    spf_hits = (cached.counter("igp.ls.spf_cache_hits")
                + cached.counter("vnbone.spf_cache_hits"))
    spf_runs_cached = cached.counter("igp.ls.spf_runs")
    return {
        "wall_seconds": {"cached": cached.wall_seconds,
                         "uncached": uncached.wall_seconds},
        "dijkstra_runs": {"cached": cached.counter("perf.dijkstra_runs"),
                          "uncached": uncached.counter("perf.dijkstra_runs")},
        "spf_runs": {"cached": spf_runs_cached,
                     "uncached": uncached.counter("igp.ls.spf_runs")},
        "path_cache": {"hits": path_hits, "misses": path_misses,
                       "invalidations":
                           cached.counter("perf.path_cache.invalidations"),
                       "hit_rate": _rate(path_hits, path_hits + path_misses)},
        "spf_cache": {"hits": spf_hits,
                      "hit_rate": _rate(spf_hits, spf_hits + spf_runs_cached)},
        "identical_metrics": cached.payload == uncached.payload,
    }


def run_bench(seed: int = DEFAULT_SEED, quick: bool = False
              ) -> Dict[str, object]:
    """Run the whole matrix; returns the ``repro.bench/v1`` document."""
    workloads: Dict[str, Dict[str, object]] = {}
    total_cached = total_uncached = 0
    wall_total_cached = wall_total_uncached = 0.0
    all_identical = True
    for name, spec in bench_specs():
        workload = _spec_workload(spec)
        cached_leg = run_leg(workload, seed, quick, cached=True)
        uncached_leg = run_leg(workload, seed, quick, cached=False)
        entry = _workload_entry(cached_leg, uncached_leg)
        entry["params"] = workload_params(name, seed, quick)
        workloads[name] = entry
        total_cached += cached_leg.counter("perf.dijkstra_runs")
        total_uncached += uncached_leg.counter("perf.dijkstra_runs")
        wall_total_cached += cached_leg.wall_seconds
        wall_total_uncached += uncached_leg.wall_seconds
        all_identical = all_identical and bool(entry["identical_metrics"])
    return {
        "schema": BENCH_SCHEMA,
        "mode": "matrix",
        "seed": seed,
        "quick": quick,
        "workloads": workloads,
        "totals": {
            "dijkstra_runs": {"cached": total_cached,
                              "uncached": total_uncached},
            "wall_seconds": {"cached": wall_total_cached,
                             "uncached": wall_total_uncached},
            "identical_metrics": all_identical,
        },
    }


# -- schema validation ------------------------------------------------------
_PAIR_KEYS = ("cached", "uncached")


def _check_pair(errors: List[str], where: str, value: object,
                kind: type, keys: Tuple[str, ...] = _PAIR_KEYS) -> None:
    if not isinstance(value, dict):
        errors.append(f"{where}: expected object, got {type(value).__name__}")
        return
    accepted = (int, float) if kind is float else (kind,)
    for key in keys:
        if key not in value:
            errors.append(f"{where}.{key}: missing")
        elif not isinstance(value[key], accepted) or isinstance(value[key], bool):
            errors.append(f"{where}.{key}: expected {kind.__name__}")


def validate_bench_dict(doc: object) -> List[str]:
    """Validate a bench document; returns error strings.

    Accepts ``repro.bench/v2`` in both modes (``matrix`` from
    :func:`run_bench`, ``scale_sweep`` from
    :func:`repro.perf.scale_bench.run_sweep`) and legacy
    ``repro.bench/v1`` documents (a v2 matrix without ``mode`` or
    per-workload ``params``).
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document: expected object, got {type(doc).__name__}"]
    schema = doc.get("schema")
    if schema not in (BENCH_SCHEMA, BENCH_SCHEMA_V1):
        return [f"schema: expected {BENCH_SCHEMA!r} or {BENCH_SCHEMA_V1!r}, "
                f"got {schema!r}"]
    if not isinstance(doc.get("seed"), int):
        errors.append("seed: expected int")
    if not isinstance(doc.get("quick"), bool):
        errors.append("quick: expected bool")
    if schema == BENCH_SCHEMA_V1:
        _validate_matrix(errors, doc, require_params=False)
        return errors
    mode = doc.get("mode")
    if mode not in BENCH_MODES:
        errors.append(f"mode: expected one of {BENCH_MODES}, got {mode!r}")
        return errors
    if mode == "matrix":
        _validate_matrix(errors, doc, require_params=True)
    else:
        _validate_sweep(errors, doc)
    return errors


def _validate_matrix(errors: List[str], doc: Dict[str, object],
                     require_params: bool) -> None:
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("workloads: expected non-empty object")
        workloads = {}
    for name, entry in sorted(workloads.items()):
        where = f"workloads.{name}"
        if not isinstance(entry, dict):
            errors.append(f"{where}: expected object")
            continue
        _check_pair(errors, f"{where}.wall_seconds",
                    entry.get("wall_seconds"), float)
        _check_pair(errors, f"{where}.dijkstra_runs",
                    entry.get("dijkstra_runs"), int)
        _check_pair(errors, f"{where}.spf_runs", entry.get("spf_runs"), int)
        for cache_key, fields in (("path_cache", ("hits", "misses",
                                                  "invalidations")),
                                  ("spf_cache", ("hits",))):
            cache = entry.get(cache_key)
            if not isinstance(cache, dict):
                errors.append(f"{where}.{cache_key}: expected object")
                continue
            for field_name in fields:
                if not isinstance(cache.get(field_name), int):
                    errors.append(
                        f"{where}.{cache_key}.{field_name}: expected int")
            hit_rate = cache.get("hit_rate")
            if (not isinstance(hit_rate, (int, float))
                    or isinstance(hit_rate, bool)
                    or not 0.0 <= float(hit_rate) <= 1.0):
                errors.append(
                    f"{where}.{cache_key}.hit_rate: expected number in [0, 1]")
        if not isinstance(entry.get("identical_metrics"), bool):
            errors.append(f"{where}.identical_metrics: expected bool")
        if require_params:
            params = entry.get("params")
            if not isinstance(params, dict):
                errors.append(f"{where}.params: expected object")
            elif not all(isinstance(value, int) and not isinstance(value, bool)
                         for value in params.values()):
                errors.append(f"{where}.params: expected int values")
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals: expected object")
    else:
        _check_pair(errors, "totals.dijkstra_runs",
                    totals.get("dijkstra_runs"), int)
        _check_pair(errors, "totals.wall_seconds",
                    totals.get("wall_seconds"), float)
        if not isinstance(totals.get("identical_metrics"), bool):
            errors.append("totals.identical_metrics: expected bool")


_LEG_KEYS = ("fastpath", "slowpath")
_CONTROL_KEYS = ("grouped", "seed")


def _validate_control_plane(errors: List[str], where: str,
                            control: object) -> None:
    """Checks for one cell's ``control_plane`` block (PR 9); the block
    is optional so pre-PR-9 sweep artifacts stay valid."""
    if not isinstance(control, dict):
        errors.append(f"{where}: expected object")
        return
    _check_pair(errors, f"{where}.convergence_events",
                control.get("convergence_events"), int, keys=_CONTROL_KEYS)
    _check_pair(errors, f"{where}.wall_install_seconds",
                control.get("wall_install_seconds"), float,
                keys=_CONTROL_KEYS)
    _check_pair(errors, f"{where}.install_fib_lookups",
                control.get("install_fib_lookups"), int, keys=_CONTROL_KEYS)
    reduction = control.get("lookup_reduction")
    if (not isinstance(reduction, (int, float)) or isinstance(reduction, bool)
            or float(reduction) < 0.0):
        errors.append(f"{where}.lookup_reduction: expected non-negative "
                      "number")
    if not isinstance(control.get("identical_fibs"), bool):
        errors.append(f"{where}.identical_fibs: expected bool")


def _validate_sweep(errors: List[str], doc: Dict[str, object]) -> None:
    """Checks for ``mode: "scale_sweep"`` (see :mod:`repro.perf.scale_bench`)."""
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: expected non-empty array")
        cells = []
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: expected object")
            continue
        for field_name in ("routers_requested", "routers_built", "ases"):
            value = cell.get(field_name)
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{where}.{field_name}: expected int")
        _check_pair(errors, f"{where}.wall_seconds",
                    cell.get("wall_seconds"), float, keys=_LEG_KEYS)
        speedup = cell.get("speedup")
        if (not isinstance(speedup, (int, float)) or isinstance(speedup, bool)
                or float(speedup) < 0.0):
            errors.append(f"{where}.speedup: expected non-negative number")
        params = cell.get("params")
        if not isinstance(params, dict) or not all(
                isinstance(value, int) and not isinstance(value, bool)
                for value in params.values()):
            errors.append(f"{where}.params: expected object of ints")
        fastpath = cell.get("fastpath")
        if not isinstance(fastpath, dict):
            errors.append(f"{where}.fastpath: expected object")
        else:
            for field_name in ("hits", "misses", "flows",
                               "packets_aggregated"):
                value = fastpath.get(field_name)
                if not isinstance(value, int) or isinstance(value, bool):
                    errors.append(
                        f"{where}.fastpath.{field_name}: expected int")
        delivery = cell.get("delivery")
        if not isinstance(delivery, dict):
            errors.append(f"{where}.delivery: expected object")
        else:
            for field_name in ("attempted", "delivered"):
                value = delivery.get(field_name)
                if not isinstance(value, int) or isinstance(value, bool):
                    errors.append(
                        f"{where}.delivery.{field_name}: expected int")
        if not isinstance(cell.get("identical_metrics"), bool):
            errors.append(f"{where}.identical_metrics: expected bool")
        if "control_plane" in cell:
            _validate_control_plane(errors, f"{where}.control_plane",
                                    cell["control_plane"])
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals: expected object")
    else:
        _check_pair(errors, "totals.wall_seconds",
                    totals.get("wall_seconds"), float, keys=_LEG_KEYS)
        if not isinstance(totals.get("identical_metrics"), bool):
            errors.append("totals.identical_metrics: expected bool")
        if ("identical_fibs" in totals
                and not isinstance(totals["identical_fibs"], bool)):
            errors.append("totals.identical_fibs: expected bool")


def write_bench(doc: Dict[str, object],
                path: str = DEFAULT_BENCH_PATH) -> str:
    """Write the document as stable, sorted-key JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
