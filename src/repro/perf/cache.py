"""Topology-versioned caching for ground-truth path computation.

Every layer of the simulator ultimately asks the :class:`~repro.net.network.Network`
for shortest paths: metrics stretch per delivered probe, the anycast
service per resolution, redirection baselines, resilience experiments,
and the vN-Bone topology builder.  Recomputing Dijkstra from scratch on
every call is the single largest source of redundant work at
production scale (see ``docs/performance.md``).

The scheme is deliberately simple and *provably* answer-preserving:

* :class:`~repro.net.network.Network` maintains a monotonic
  ``topology_version`` bumped by every mutation that can change a
  shortest path — ``add_link``, ``move_host``, node crash/recovery, and
  any link ``fail()``/``restore()`` (including fault-injector flips,
  which toggle :class:`~repro.net.link.Link` objects directly).
* :class:`PathCache` memoizes full ``shortest_path_tree`` results per
  ``(src, intra_domain_only, domain)`` key and answers
  ``shortest_path(src, dst)`` by walking the cached tree's predecessor
  pointers.  Any version change invalidates the whole cache lazily on
  the next access.

Bit-identical answers: both the early-exit ``shortest_path`` and the
full ``shortest_path_tree`` pop ``(distance, node)`` heap entries,
relax with strict ``<`` over the same ``neighbors()`` order, and link
costs are non-negative — so the predecessor chain of every settled
node is identical in both, and reconstructing the path from the tree
yields exactly the path the early-exit search would have returned.
The cached/uncached determinism test in ``tests/perf`` asserts this
end to end on full experiment metrics.

Caching defaults are process-wide and consulted at *construction* time
(:func:`caching_enabled`), because top-level objects such as
:class:`~repro.core.evolution.EvolvableInternet` converge inside their
constructor — use the :func:`caching` context manager to build an
uncached baseline::

    from repro.perf import caching

    with caching(False):
        internet = EvolvableInternet.generate(seed=7)   # uncached

Per rule D4 the hit/miss/invalidation counters are registered behind
``obs.enabled``; the cache also keeps plain integer stats that are
always live, so tests need no observability handle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.obs import get_obs

if TYPE_CHECKING:  # import cycle: network.py imports this module
    from repro.net.network import Network

#: Process-wide default consulted by every cache at construction time.
_CACHING_DEFAULT = True


def caching_enabled() -> bool:
    """The current process-wide caching default."""
    return _CACHING_DEFAULT


def set_caching_default(enabled: bool) -> bool:
    """Set the process-wide caching default; returns the previous value."""
    global _CACHING_DEFAULT
    previous = _CACHING_DEFAULT
    _CACHING_DEFAULT = enabled
    return previous


@contextmanager
def caching(enabled: bool) -> Iterator[None]:
    """Scope the caching default (e.g. ``with caching(False):`` for a
    baseline run); objects constructed inside the block keep the setting
    for their lifetime."""
    previous = set_caching_default(enabled)
    try:
        yield
    finally:
        set_caching_default(previous)


#: One cache key: (source node, intra-domain-only flag, domain filter).
TreeKey = Tuple[str, bool, Optional[int]]
#: One memoized tree: node -> (distance, predecessor).
Tree = Dict[str, Tuple[float, Optional[str]]]


class PathCache:
    """Memoizes :meth:`Network.shortest_path_tree` per topology version.

    The cache holds whole Dijkstra trees; callers treat returned trees
    as read-only (all in-repo consumers do).  ``hits``/``misses``/
    ``invalidations`` are plain integers so they are observable without
    an active :class:`~repro.obs.Observability`; the equivalent
    ``perf.path_cache.*`` counters feed the bench harness.
    """

    def __init__(self, network: "Network",
                 enabled: Optional[bool] = None) -> None:
        self.network = network
        self.obs = get_obs()
        self.enabled = caching_enabled() if enabled is None else enabled
        self._version = network.topology_version
        self._trees: Dict[TreeKey, Tree] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- invalidation -----------------------------------------------------
    def _check_version(self) -> None:
        version = self.network.topology_version
        if version != self._version:
            if self._trees:
                self._trees.clear()
                self.invalidations += 1
                if self.obs.enabled:
                    self.obs.counter("perf.path_cache.invalidations").inc()
            self._version = version

    def __len__(self) -> int:
        return len(self._trees)

    # -- queries ----------------------------------------------------------
    def tree(self, src: str, intra_domain_only: bool = False,
             domain: Optional[int] = None) -> Tree:
        """The memoized shortest-path tree rooted at *src*."""
        self._check_version()
        key = (src, intra_domain_only, domain)
        cached = self._trees.get(key)
        if cached is not None:
            self.hits += 1
            if self.obs.enabled:
                self.obs.counter("perf.path_cache.hits").inc()
            return cached
        self.misses += 1
        if self.obs.enabled:
            self.obs.counter("perf.path_cache.misses").inc()
        tree = self.network._compute_shortest_path_tree(  # noqa: SLF001 - cache owns the raw computation
            src, intra_domain_only, domain)
        self._trees[key] = tree
        return tree

    def shortest_path(self, src: str, dst: str, intra_domain_only: bool = False
                      ) -> Optional[Tuple[float, List[str]]]:
        """(cost, node path) from the cached tree, or ``None`` if
        unreachable — bit-identical to the early-exit Dijkstra."""
        tree = self.tree(src, intra_domain_only, None)
        entry = tree.get(dst)
        if entry is None:
            return None
        path = [dst]
        node = dst
        while node != src:
            pred = tree[node][1]
            if pred is None:
                return None  # defensive: only the root lacks a predecessor
            path.append(pred)
            node = pred
        path.reverse()
        return entry[0], path

    def stats(self) -> Dict[str, int]:
        """Plain-int snapshot (works without an observability handle)."""
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "entries": len(self._trees)}
