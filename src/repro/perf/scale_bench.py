"""The topology-size sweep (``python -m repro bench --scale-sweep``).

Measures the flow-level forwarding fast path on the internet-scale
topology tier (:mod:`repro.topogen.scale`): for each router budget on
the size axis, build + converge the same seeded power-law internetwork
twice — once with the fast path enabled and once forced onto the
per-packet slow path — and drive an identical seeded traffic phase
through both.  The traffic phase is where scale hurts: a fixed set of
host-pair *flows*, each sent ``repeats`` times, exactly the repeated
identical walks the fast path aggregates.  Only the traffic phase is
timed; build and convergence cost is identical across legs and
reported separately per cell.

The emitted document is ``repro.bench/v2`` with ``"mode":
"scale_sweep"``::

    {
      "schema": "repro.bench/v2",
      "mode": "scale_sweep",
      "seed": 42,
      "quick": true,
      "cells": [
        {
          "routers_requested": 1000,
          "routers_built": int,       # routers + hosts actually built
          "ases": int,
          "params": {"flows": int, "repeats": int},
          "wall_seconds": {"fastpath": float, "slowpath": float},
          "build_wall_seconds": {"fastpath": float, "slowpath": float},
          "speedup": float,           # slowpath / fastpath traffic wall
          "fastpath": {"hits": int, "misses": int, "flows": int,
                        "packets_aggregated": int},
          "delivery": {"attempted": int, "delivered": int,
                        "physical_hops": int},
          "identical_metrics": bool,  # delivery identical across legs
          "measurement": {"probes": int, "delivered": int,
                           "rtt_mean": float,
                           "identical_series": bool},
          "control_plane": {
            "convergence_events": {"grouped": int, "seed": int},
            "wall_install_seconds": {"grouped": float, "seed": float},
            "install_fib_lookups": {"grouped": int, "seed": int},
            "lookup_reduction": float,  # seed / grouped lookups
            "identical_fibs": bool      # FIB digests match across legs
          }
        }, ...
      ],
      "totals": {"wall_seconds": {"fastpath": float, "slowpath": float},
                  "identical_metrics": bool,
                  "identical_fibs": bool,
                  "identical_probe_series": bool}
    }

``identical_metrics`` is the correctness bit: both legs must deliver
the same packets over the same hop counts.  ``measurement`` drives a
small :mod:`repro.measure` probe plan through each leg after the timed
traffic phase — ``identical_series`` proves the full RTT probe series
(sample for sample, latency included) is unchanged by the fast path.  ``speedup`` and the
``wall_*`` fields are nondeterministic — plot them, never gate on them
(the CI smoke job checks schema and determinism only).

PR 9 adds the **control-plane leg** per cell: the same seeded
internetwork is built and converged twice more — once on the
grouped/incremental install path with MRAI batching
(:mod:`repro.bgp.egress`), once on the per-prefix seed path — and the
cell records scheduler events to convergence, wall seconds inside
``install_routes``, the install path's FIB-lookup counts (the
timing-free signal: grouping turns O(P×R×B) lookups into O(R×B×A)),
and ``identical_fibs``, the digest-equality proof that both paths
installed byte-identical forwarding state.

The legs run without an observability handle on purpose: at 10k+
routers per-packet span emission dominates the walk itself, and the
sweep measures forwarding, not tracing.  Fast-path statistics come
from :meth:`~repro.net.fastpath.FlowFastPath.stats`, which is plain
integers and always live.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.egress import grouped_install
from repro.core.orchestrator import Orchestrator
from repro.measure import ProbeEngine, ProbePlan, ProbeTarget
from repro.net.fastpath import flow_fastpath
from repro.net.network import Network
from repro.net.packet import ipv4_packet
from repro.perf.bench import BENCH_SCHEMA, DEFAULT_SEED, _canonical
from repro.topogen.scale import (generate_scale_internet, scale_rng,
                                 spec_for_router_budget)

#: Default output path for the sweep artifact (PR-stamped so the repo
#: accumulates a trajectory; PR 9 adds the control-plane leg).
DEFAULT_SWEEP_PATH = "BENCH_PR9.json"
#: Router budgets on the size axis.
QUICK_SIZES: Tuple[int, ...] = (300, 600, 1000)
FULL_SIZES: Tuple[int, ...] = (1_000, 10_000, 50_000)
#: Traffic-phase sizing: (distinct flows, sends per flow).
QUICK_TRAFFIC = (120, 25)
FULL_TRAFFIC = (400, 40)

#: rng-stream tag for flow sampling (disjoint from the generator's
#: per-AS streams, which are keyed by ASN).
_FLOW_STREAM = 0x5EED

#: Probe-plan sizing of the per-leg measurement phase: (vantages,
#: unicast targets, rounds, sim-time interval).  Tiny on purpose — the
#: phase is an equivalence check, not a benchmark.
_PROBE_SHAPE = (4, 2, 3, 5.0)


@dataclass
class CellLeg:
    """One fast-path-on or fast-path-off execution of one sweep cell."""

    routers_built: int
    ases: int
    build_wall_seconds: float
    traffic_wall_seconds: float
    delivery: Dict[str, int]
    fastpath_stats: Dict[str, int]
    probe_series: Dict[str, object]


@dataclass
class ControlLeg:
    """One grouped or seed execution of one control-plane cell leg.

    ``fib_digest`` hashes a canonical dump of every FIB after
    convergence + installation — digest equality is the byte-identical
    equivalence bit between the grouped/incremental install path and
    the per-prefix seed path.
    """

    convergence_events: int
    wall_install_seconds: float
    install_fib_lookups: int
    fib_digest: str


def _fib_digest(network: Network) -> str:
    """SHA-256 over the canonical JSON of every node's FIB snapshot."""
    dump = {}
    for node_id in sorted(network.nodes):
        fib = getattr(network.node(node_id), "fib4", None)
        if fib is not None:
            dump[node_id] = fib.snapshot()
    text = json.dumps(dump, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_control_leg(n_routers: int, seed: int, grouped: bool) -> ControlLeg:
    """Build + converge one control-plane leg of one sweep cell.

    The leg measures installation, not forwarding: scheduler events
    drained to convergence, wall seconds spent inside
    ``BgpProtocol.install_routes``, and the FIB lookups its hot-potato
    scans performed (the timing-free signal the grouped path must
    shrink).  Wall fields are machine-dependent — plot, never gate.
    """
    with grouped_install(grouped):
        generated = generate_scale_internet(
            spec_for_router_budget(n_routers, seed=seed))
        orchestrator = Orchestrator(generated.network, seed=seed)
        orchestrator.converge()
    bgp = orchestrator.bgp
    return ControlLeg(
        convergence_events=orchestrator.scheduler.events_processed,
        wall_install_seconds=bgp.wall_install_seconds,
        install_fib_lookups=bgp.install_fib_lookups,
        fib_digest=_fib_digest(generated.network))


def _control_plane_entry(n_routers: int, seed: int) -> Dict[str, object]:
    """The ``control_plane`` block of one sweep cell: both legs plus
    the reduction factor and the equivalence bit."""
    grouped_leg = run_control_leg(n_routers, seed, grouped=True)
    seed_leg = run_control_leg(n_routers, seed, grouped=False)
    return {
        "convergence_events": {"grouped": grouped_leg.convergence_events,
                               "seed": seed_leg.convergence_events},
        "wall_install_seconds": {
            "grouped": grouped_leg.wall_install_seconds,
            "seed": seed_leg.wall_install_seconds},
        "install_fib_lookups": {
            "grouped": grouped_leg.install_fib_lookups,
            "seed": seed_leg.install_fib_lookups},
        "lookup_reduction": (seed_leg.install_fib_lookups
                             / max(grouped_leg.install_fib_lookups, 1)),
        "identical_fibs": grouped_leg.fib_digest == seed_leg.fib_digest,
    }


def _sample_flows(hosts: Sequence[str], n_flows: int,
                  seed: int, n_routers: int) -> List[Tuple[str, str]]:
    """A seeded set of ordered host pairs; a pure function of
    ``(seed, n_routers)`` so both legs probe identical flows."""
    rng = scale_rng(_FLOW_STREAM + n_routers, seed)
    flows: List[Tuple[str, str]] = []
    for _ in range(n_flows):
        src = hosts[rng.randrange(len(hosts))]
        dst = hosts[rng.randrange(len(hosts))]
        while dst == src:
            dst = hosts[rng.randrange(len(hosts))]
        flows.append((src, dst))
    return flows


def _probe_series(orchestrator: Orchestrator, network: Network,
                  hosts: Sequence[str]) -> Dict[str, object]:
    """Run the per-leg measurement phase: a tiny unicast probe plan.

    Vantages are the first hosts, targets the last — a pure function of
    the generated host order, so both legs run the identical plan.  The
    legs have no observability handle; the engine's in-memory samples
    are the series.
    """
    n_vantages, n_targets, rounds, interval = _PROBE_SHAPE
    vantages = tuple(hosts[:n_vantages])
    target_hosts = [h for h in hosts[-n_targets:] if h not in vantages]
    if not target_hosts:
        return {"probes": 0, "delivered": 0, "lost": 0, "samples": []}
    plan = ProbePlan(
        vantages=vantages,
        targets=tuple(ProbeTarget(name=h, dst=network.node(h).ipv4)
                      for h in target_hosts),
        interval=interval, rounds=rounds)
    engine = ProbeEngine(orchestrator.scheduler, orchestrator.engine,
                         network, plan)
    engine.arm()
    engine.finish()
    return engine.series()


def run_cell_leg(n_routers: int, seed: int, n_flows: int, repeats: int,
                 fastpath_on: bool) -> CellLeg:
    """Build, converge, and drive one leg of one sweep cell."""
    with flow_fastpath(fastpath_on):
        wall_build_t0 = time.perf_counter()
        spec = spec_for_router_budget(n_routers, seed=seed)
        generated = generate_scale_internet(spec)
        orchestrator = Orchestrator(generated.network, seed=seed)
        orchestrator.converge()
        wall_build = time.perf_counter() - wall_build_t0
        hosts = generated.hosts
        flows = _sample_flows(hosts, n_flows, seed, n_routers)
        network = generated.network
        engine = orchestrator.engine
        attempted = delivered = physical_hops = 0
        wall_traffic_t0 = time.perf_counter()
        for src, dst in flows:
            src_ip = network.node(src).ipv4
            dst_ip = network.node(dst).ipv4
            for _ in range(repeats):
                trace = engine.forward(ipv4_packet(src_ip, dst_ip), src)
                attempted += 1
                if trace.delivered:
                    delivered += 1
                physical_hops += trace.physical_hops
        wall_traffic = time.perf_counter() - wall_traffic_t0
        # Snapshot before the probe leg: the fastpath invariant
        # (hits + misses == attempted) is pinned to the traffic loop.
        fastpath_stats = engine.fastpath.stats()
        probe_series = _probe_series(orchestrator, network, hosts)
    return CellLeg(
        routers_built=len(network.nodes),
        ases=len(network.domains),
        build_wall_seconds=wall_build,
        traffic_wall_seconds=wall_traffic,
        delivery={"attempted": attempted, "delivered": delivered,
                  "physical_hops": physical_hops},
        fastpath_stats=fastpath_stats,
        probe_series=probe_series)


def _cell(n_routers: int, seed: int, n_flows: int,
          repeats: int) -> Dict[str, object]:
    fast = run_cell_leg(n_routers, seed, n_flows, repeats, fastpath_on=True)
    slow = run_cell_leg(n_routers, seed, n_flows, repeats, fastpath_on=False)
    identical = _canonical(fast.delivery) == _canonical(slow.delivery)
    return {
        "routers_requested": n_routers,
        "routers_built": fast.routers_built,
        "ases": fast.ases,
        "params": {"flows": n_flows, "repeats": repeats},
        "wall_seconds": {"fastpath": fast.traffic_wall_seconds,
                         "slowpath": slow.traffic_wall_seconds},
        "build_wall_seconds": {"fastpath": fast.build_wall_seconds,
                               "slowpath": slow.build_wall_seconds},
        "speedup": (slow.traffic_wall_seconds
                    / max(fast.traffic_wall_seconds, 1e-9)),
        "fastpath": {key: fast.fastpath_stats[key]
                     for key in ("hits", "misses", "flows",
                                 "packets_aggregated")},
        "delivery": dict(fast.delivery),
        "identical_metrics": identical,
        "measurement": _measurement_entry(fast, slow),
        "control_plane": _control_plane_entry(n_routers, seed),
    }


def _measurement_entry(fast: CellLeg, slow: CellLeg) -> Dict[str, object]:
    """The ``measurement`` block: probe totals plus the sample-for-sample
    equivalence bit between the fast-path and slow-path series."""
    samples = fast.probe_series.get("samples")
    rtts = [s["rtt"] for s in samples  # type: ignore[index, union-attr]
            if isinstance(s, dict) and s.get("rtt") is not None]
    return {
        "probes": fast.probe_series.get("probes", 0),
        "delivered": fast.probe_series.get("delivered", 0),
        "rtt_mean": (sum(rtts) / len(rtts)) if rtts else 0.0,  # type: ignore[arg-type]
        "identical_series": (_canonical(fast.probe_series)
                             == _canonical(slow.probe_series)),
    }


def run_sweep(seed: int = DEFAULT_SEED, quick: bool = False,
              sizes: Optional[Sequence[int]] = None) -> Dict[str, object]:
    """Run the whole size axis; returns the ``scale_sweep`` document."""
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    n_flows, repeats = QUICK_TRAFFIC if quick else FULL_TRAFFIC
    cells = [_cell(n, seed, n_flows, repeats) for n in sizes]
    return {
        "schema": BENCH_SCHEMA,
        "mode": "scale_sweep",
        "seed": seed,
        "quick": quick,
        "cells": cells,
        "totals": {
            "wall_seconds": {
                "fastpath": sum(c["wall_seconds"]["fastpath"]  # type: ignore[index]
                                for c in cells),
                "slowpath": sum(c["wall_seconds"]["slowpath"]  # type: ignore[index]
                                for c in cells),
            },
            "identical_metrics": all(bool(c["identical_metrics"])
                                     for c in cells),
            "identical_fibs": all(
                bool(c["control_plane"]["identical_fibs"])  # type: ignore[index]
                for c in cells),
            "identical_probe_series": all(
                bool(c["measurement"]["identical_series"])  # type: ignore[index]
                for c in cells),
        },
    }
