"""Application-level redirection baselines (Section 2.2)."""

from repro.redirection.lookup import (BrokerLookupService, IspLookupService,
                                      LookupAnswer, LookupService,
                                      RedirectionComparison, app_level_send,
                                      compare_redirection)

__all__ = ["BrokerLookupService", "IspLookupService", "LookupAnswer",
           "LookupService", "RedirectionComparison", "app_level_send",
           "compare_redirection"]
