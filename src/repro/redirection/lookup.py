"""Application-level redirection baselines (Section 2.2).

The paper examines — and rejects — two application-level alternatives
to anycast redirection, both built around a *lookup service* that maps
a client to a nearby IPvN router:

* **ISP-run lookup** (:class:`IspLookupService`): each participating
  ISP answers queries, but only for its own customers (assumption A3
  forbids new contracts with other ISPs).  A client whose ISP does not
  participate simply has no service — universal access fails.
* **Third-party brokers** (:class:`BrokerLookupService`): consistent
  with universal access at a technical level, but they upset the market
  structure (``violates_market_structure`` is True), depend on ISPs
  *reporting* deployment to them (partial visibility), and answer from
  a cached snapshot that goes stale under deployment churn until the
  broker re-syncs.

Both services answer with the *unicast* address of an IPvN router; the
client tunnels there directly (:func:`app_level_send`), bypassing
anycast — so a stale answer means a blackholed packet, which is the
measurable cost experiment E7 reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.errors import RedirectionError
from repro.net.forwarding import ForwardingTrace
from repro.net.packet import IPv4Header, vn_packet
from repro.net.network import Network
from repro.vnbone.deployment import VnDeployment


@dataclass
class LookupAnswer:
    """A lookup service's referral."""

    router_id: str
    #: The service's (possibly stale) belief, for diagnostics.
    believed_member: bool = True


class LookupService(abc.ABC):
    """Base class: answers "which IPvN router should I tunnel to?"."""

    #: Whether using this service requires contracts beyond the client's
    #: existing access agreement (violates assumption A3).
    violates_market_structure = False

    def __init__(self, deployment: VnDeployment) -> None:
        self.deployment = deployment
        self.network: Network = deployment.network
        #: Cached deployment snapshot: member router ids.
        self._snapshot: Set[str] = set()
        self.queries = 0
        self.failures = 0
        self.stale_answers = 0

    def sync(self) -> None:
        """Refresh the service's view of deployment (scheme-specific scope)."""
        self._snapshot = self._visible_members()

    @abc.abstractmethod
    def _visible_members(self) -> Set[str]:
        """Members this service can learn about right now."""

    @abc.abstractmethod
    def _serves(self, client_id: str) -> bool:
        """Whether this service will answer *client_id* at all."""

    def query(self, client_id: str) -> Optional[LookupAnswer]:
        """Resolve a nearby IPvN router for *client_id*.

        Answers from the cached snapshot — distance-ranked by ground
        truth (a real service would use measurement infrastructure).
        Returns ``None`` when the service refuses or knows nothing.
        """
        self.queries += 1
        if not self._serves(client_id):
            self.failures += 1
            return None
        best: Optional[LookupAnswer] = None
        best_cost = float("inf")
        for member in sorted(self._snapshot):
            result = self.network.shortest_path(client_id, member)
            if result is None:
                continue
            cost, _ = result
            if cost < best_cost:
                best_cost = cost
                best = LookupAnswer(router_id=member)
        if best is None:
            self.failures += 1
            return None
        if best.router_id not in self.deployment.members():
            best.believed_member = False
            self.stale_answers += 1
        return best


class IspLookupService(LookupService):
    """One lookup service per participating ISP; serves only its clients.

    ``participants`` are the ASNs willing to run the service (the
    paper's point: non-offering ISPs have no incentive, A1/A2).  Cross-
    ISP queries would require new contracts, so they are refused.
    """

    def __init__(self, deployment: VnDeployment,
                 participants: Optional[Set[int]] = None) -> None:
        super().__init__(deployment)
        self.participants = participants

    def _participating(self, asn: int) -> bool:
        if self.participants is not None:
            return asn in self.participants
        # Default incentive model: exactly the adopting ISPs participate.
        return asn in self.deployment.adopting_asns()

    def _serves(self, client_id: str) -> bool:
        return self._participating(self.network.node(client_id).domain_id)

    def _visible_members(self) -> Set[str]:
        # ISPs exchange deployment information with each other, so a
        # participating ISP's service knows all members.
        return self.deployment.members()


class BrokerLookupService(LookupService):
    """A third-party broker aggregating ISP deployment reports.

    Any client may query it (universal access holds technically), but
    it only sees members of ISPs that *report* to it, and it answers
    from its last :meth:`sync` — the staleness knob for churn
    experiments.
    """

    violates_market_structure = True

    def __init__(self, deployment: VnDeployment,
                 reporting_asns: Optional[Set[int]] = None) -> None:
        super().__init__(deployment)
        self.reporting_asns = reporting_asns

    def _serves(self, client_id: str) -> bool:
        return True

    def _visible_members(self) -> Set[str]:
        members = self.deployment.members()
        if self.reporting_asns is None:
            return members
        return {m for m in members
                if self.network.node(m).domain_id in self.reporting_asns}


def app_level_send(deployment: VnDeployment, service: LookupService,
                   src_host_id: str, dst_host_id: str,
                   payload: object = None) -> ForwardingTrace:
    """Send an IPvN packet using application-level redirection.

    The client queries the lookup service and tunnels the IPvN packet
    to the referred router's *unicast* address.  A refused query yields
    a :class:`RedirectionError`; a stale referral typically yields a
    dropped trace (the target no longer processes IPvN).
    """
    if deployment.needs_rebuild:
        deployment.rebuild()
    answer = service.query(src_host_id)
    if answer is None:
        raise RedirectionError(
            f"no application-level redirection available for {src_host_id!r}")
    src = deployment.network.node(src_host_id)
    target = deployment.network.node(answer.router_id)
    src_addr = deployment.plan.ensure_host_address(src_host_id)
    dst_addr = deployment.plan.ensure_host_address(dst_host_id)
    packet = vn_packet(src_addr, dst_addr, payload=payload)
    packet.encapsulate(IPv4Header(src=src.ipv4, dst=target.ipv4))
    return deployment.orchestrator.forward(packet, src_host_id)


@dataclass
class RedirectionComparison:
    """E7 row: one redirection mechanism's score over a client set."""

    mechanism: str
    served: int = 0
    refused: int = 0
    delivered: int = 0
    stale_drops: int = 0
    requires_new_contracts: bool = False

    @property
    def access_ratio(self) -> float:
        total = self.served + self.refused
        return self.served / total if total else 0.0

    @property
    def delivery_ratio(self) -> float:
        total = self.served + self.refused
        return self.delivered / total if total else 0.0


def compare_redirection(deployment: VnDeployment, service: LookupService,
                        clients: List[str], dst_host_id: str,
                        mechanism: str) -> RedirectionComparison:
    """Score one lookup service against the anycast ground rules."""
    row = RedirectionComparison(
        mechanism=mechanism,
        requires_new_contracts=service.violates_market_structure)
    for client in clients:
        if client == dst_host_id:
            continue
        try:
            trace = app_level_send(deployment, service, client, dst_host_id)
        except RedirectionError:
            row.refused += 1
            continue
        row.served += 1
        if trace.delivered:
            row.delivered += 1
        else:
            row.stale_drops += 1
    return row
