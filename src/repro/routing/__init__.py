"""Intra-domain routing protocols with the paper's anycast extensions."""

from repro.routing.distancevector import INFINITY, DistanceVectorRouting, DvRoute
from repro.routing.igp import ANYCAST_STUB_COST, IgpProtocol
from repro.routing.linkstate import LinkStateRouting, Lsa

__all__ = ["INFINITY", "DistanceVectorRouting", "DvRoute", "ANYCAST_STUB_COST",
           "IgpProtocol", "LinkStateRouting", "Lsa"]
