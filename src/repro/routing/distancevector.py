"""Distance-vector intra-domain routing (RIP-like) with the anycast extension.

The paper's Section 3.2 observation: under distance-vector, "anycast
routing merely requires that an IPvN router advertise a distance of
zero to its anycast address; standard distance-vector then ensures that
every router will discover the next hop to its closest IPvN router."
That is exactly what this implementation does — anycast addresses enter
the vector as ordinary host routes at distance zero from members.

Unlike link-state, a distance-vector IGP gives an IPvN router *no way*
to enumerate the other IPvN routers in its domain
(:attr:`DistanceVectorRouting.supports_member_discovery` is False);
vN-Bone construction over such domains must use the anycast-bootstrap
discovery path instead (paper footnote 3), which
:mod:`repro.vnbone.topology` implements.

The protocol uses split horizon with poison reverse and triggered
updates, with a coalescing flag so a burst of table changes produces a
single update per router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain
from repro.net.network import Network
from repro.net.node import FibEntry, RouteSource
from repro.net.simulator import EventScheduler
from repro.routing.igp import IgpProtocol

#: "Unreachable" metric.  Far above any realistic intra-domain path cost;
#: routes at or beyond it are treated as withdrawn.
INFINITY = float(1 << 20)


@dataclass
class DvRoute:
    """One distance-vector table entry."""

    prefix: Prefix
    metric: float
    next_hop: Optional[str]  # None for locally originated routes

    @property
    def reachable(self) -> bool:
        return self.metric < INFINITY


class DistanceVectorRouting(IgpProtocol):
    """A triggered-update distance-vector IGP for one domain."""

    supports_member_discovery = False

    def __init__(self, network: Network, domain: Domain,
                 scheduler: EventScheduler) -> None:
        super().__init__(network, domain, scheduler)
        self._tables: Dict[str, Dict[Prefix, DvRoute]] = {
            rid: {} for rid in domain.routers}
        self._update_pending: Set[str] = set()

    # -- local origination -------------------------------------------------------
    def _local_routes(self, router_id: str) -> Dict[Prefix, DvRoute]:
        routes: Dict[Prefix, DvRoute] = {}
        for pfx in self.local_prefixes(router_id):
            routes[pfx] = DvRoute(prefix=pfx, metric=0.0, next_hop=None)
        for address in self._anycast_adverts.get(router_id, {}):
            pfx = Prefix.host(address)
            # The paper's extension: distance zero to our anycast address.
            routes[pfx] = DvRoute(prefix=pfx, metric=0.0, next_hop=None)
        return routes

    def _reoriginate(self, router_id: str) -> None:
        table = self._tables[router_id]
        fresh = self._local_routes(router_id)
        changed = False
        for pfx, route in fresh.items():
            current = table.get(pfx)
            if current is None or current.next_hop is not None or current.metric != 0.0:
                table[pfx] = route
                changed = True
        live_neighbors = {nid for nid, _, _ in self.intra_neighbors(router_id)}
        for pfx, route in list(table.items()):
            if route.next_hop is None and pfx not in fresh:
                # Poison local routes we no longer originate (withdrawn anycast).
                table[pfx] = DvRoute(prefix=pfx, metric=INFINITY, next_hop=None)
                changed = True
            elif route.next_hop is not None and route.next_hop not in live_neighbors:
                # Neighbor-down detection: routes via a dead adjacency
                # time out (as RIP's route timers would do).
                table[pfx] = DvRoute(prefix=pfx, metric=INFINITY,
                                     next_hop=route.next_hop)
                changed = True
        if changed:
            self._schedule_update(router_id)

    # -- update exchange -----------------------------------------------------------
    def _schedule_update(self, router_id: str) -> None:
        if router_id in self._update_pending:
            return
        self._update_pending.add(router_id)
        self.scheduler.schedule(0.0, lambda r=router_id: self._send_updates(r))

    def _send_updates(self, router_id: str) -> None:
        self._update_pending.discard(router_id)
        if router_id not in self._tables or not self.network.node(router_id).up:
            return  # crashed (or removed) routers send nothing
        obs_enabled = self.obs.enabled
        if obs_enabled:
            self.obs.counter("igp.dv.update_rounds").inc()
        table = self._tables[router_id]
        for neighbor_id, _cost, delay in self.intra_neighbors(router_id):
            vector: Dict[Prefix, float] = {}
            for pfx, route in table.items():
                if route.next_hop == neighbor_id:
                    vector[pfx] = INFINITY  # poison reverse
                else:
                    vector[pfx] = route.metric
            self.stats.record_send(size=len(vector))
            if obs_enabled:
                self.obs.counter("igp.dv.messages_sent").inc()
            self.scheduler.schedule_message(
                delay,
                lambda n=neighbor_id, s=router_id, v=vector: self._receive(n, s, v))

    def _solicit(self, router_id: str) -> None:
        """RIP-style route request: ask each live neighbor for its table.

        Triggered updates alone cannot *re-learn* a route that was
        poisoned: neighbors whose tables did not change stay silent.
        After a topology change the affected router therefore asks its
        neighbors for a full advertisement round.
        """
        if self.obs.enabled:
            self.obs.counter("igp.dv.solicitations").inc()
        for neighbor_id, _cost, delay in self.intra_neighbors(router_id):
            self.stats.record_send()
            self.scheduler.schedule_message(
                delay, lambda n=neighbor_id: self._answer_solicit(n))

    def _answer_solicit(self, router_id: str) -> None:
        if router_id not in self._tables or not self.network.node(router_id).up:
            return
        self.stats.record_delivery()
        self._schedule_update(router_id)

    def _receive(self, router_id: str, sender: str,
                 vector: Dict[Prefix, float]) -> None:
        if router_id not in self._tables:
            return
        if not self.network.node(router_id).up:
            return  # crashed router: message lost on the floor
        self.stats.record_delivery()
        link = self.network.link_between(router_id, sender)
        if link is None or not link.up:
            return  # link failed while the update was in flight
        cost = link.cost
        table = self._tables[router_id]
        changed = False
        lost_routes = False
        for pfx, metric in vector.items():
            candidate = min(metric + cost, INFINITY)
            current = table.get(pfx)
            if current is None:
                if candidate < INFINITY:
                    table[pfx] = DvRoute(prefix=pfx, metric=candidate, next_hop=sender)
                    changed = True
                continue
            if current.next_hop == sender:
                # Updates from our current next hop always apply (better or worse).
                if current.metric != candidate:
                    if candidate >= INFINITY and current.reachable:
                        lost_routes = True
                    table[pfx] = DvRoute(prefix=pfx, metric=candidate, next_hop=sender)
                    changed = True
            elif candidate < current.metric:
                table[pfx] = DvRoute(prefix=pfx, metric=candidate, next_hop=sender)
                changed = True
        if changed:
            self._schedule_update(router_id)
        if lost_routes:
            # A poison took a route away; ask other neighbors whether
            # they still know an alternate path.
            self._solicit(router_id)

    # -- lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        for router_id in sorted(self.domain.routers):
            self.scheduler.schedule(0.0, lambda r=router_id: self._bootstrap(r))

    def _bootstrap(self, router_id: str) -> None:
        self._tables[router_id].update(self._local_routes(router_id))
        self._schedule_update(router_id)

    def refresh(self) -> None:
        if not self._started:
            self.start()
            return
        for router_id in sorted(self.domain.routers):
            self.scheduler.schedule(0.0, lambda r=router_id: self._reoriginate(r))
            # One full periodic-style advertisement round so that routes
            # invalidated by topology change can be re-learned from
            # neighbors whose own tables did not change.
            self.scheduler.schedule(0.0, lambda r=router_id: self._schedule_update(r))

    # -- failure detection ------------------------------------------------------
    def _react_to_link_change(self, router_id: str) -> None:
        # Purge routes via the dead adjacency (poison), push the change
        # to neighbors, and solicit full tables so alternates via other
        # neighbors can be re-learned.
        self._reoriginate(router_id)
        self._schedule_update(router_id)
        self._solicit(router_id)

    # -- route installation ---------------------------------------------------------
    def install_routes(self) -> None:
        for router_id in sorted(self.domain.routers):
            node = self.network.node(router_id)
            node.fib4.withdraw_all(RouteSource.IGP)
            for pfx, route in self._tables[router_id].items():
                if route.next_hop is None or not route.reachable:
                    continue
                node.fib4.install(FibEntry(prefix=pfx, next_hop=route.next_hop,
                                           source=RouteSource.IGP,
                                           metric=route.metric))

    # -- inspection -------------------------------------------------------------------
    def table(self, router_id: str) -> Dict[Prefix, Tuple[float, Optional[str]]]:
        """Snapshot of a router's DV table (for tests)."""
        return {pfx: (r.metric, r.next_hop)
                for pfx, r in self._tables[router_id].items()}

    def route_to(self, router_id: str, address: IPv4Address
                 ) -> Optional[Tuple[float, Optional[str]]]:
        route = self._tables[router_id].get(Prefix.host(address))
        if route is None or not route.reachable:
            return None
        return route.metric, route.next_hop
