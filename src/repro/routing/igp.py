"""Common interface for intra-domain routing protocols (IGPs).

The paper's anycast story needs two things from the IGP (Section 3.2):

1. **Anycast routing**: an IPvN router advertises the deployment's
   anycast address into the IGP (a high-cost stub "link" under
   link-state, a zero-distance entry under distance-vector) so that
   every router in the domain learns a path to its *closest* IPvN
   router.
2. **Member discovery** (link-state only): from the link-state
   database, an IPvN router can identify every other IPvN router in its
   domain — the property vN-Bone topology construction leans on
   (Section 3.3.1).  Distance-vector cannot offer this; callers must
   fall back to anycast-bootstrap discovery, exactly as footnote 3 of
   the paper prescribes.

Both concrete IGPs are message driven over the shared event scheduler,
so experiment E11 can count protocol messages with and without the
anycast extensions.
"""

from __future__ import annotations

import abc
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain
from repro.net.errors import RoutingError
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Node
from repro.net.simulator import EventScheduler, MessageStats
from repro.obs import AbstractSpan, get_obs

#: The paper's "high-cost link" to the anycast address under link-state.
#: The cost is uniform across members, so it never changes *which*
#: member is closest; it only discourages transit through the address.
ANYCAST_STUB_COST = 1000.0

#: Delay between observing a link event and reacting to it.  Dampens
#: flapping links: a burst of events at one router collapses into a
#: single re-advertisement when the timer expires.
HOLD_DOWN_DELAY = 0.5


class IgpProtocol(abc.ABC):
    """Base class for intra-domain routing protocols."""

    #: Whether the LSDB lets IPvN routers enumerate one another.
    supports_member_discovery = False

    def __init__(self, network: Network, domain: Domain,
                 scheduler: EventScheduler) -> None:
        self.network = network
        self.domain = domain
        self.scheduler = scheduler
        self.stats = MessageStats()
        self.obs = get_obs()
        #: router_id -> {anycast address -> stub cost} advertisements.
        self._anycast_adverts: Dict[str, Dict[IPv4Address, float]] = {}
        self._started = False
        #: Per-router hold-down: routers with a pending reaction timer.
        self._holddown_pending: Set[str] = set()
        #: Open ``igp.holddown`` spans, one per pending timer: started
        #: when the timer is armed (under the fault that armed it),
        #: ended at expiry — so the dampening delay shows up as a
        #: measurable phase in the offline critical-path report.
        self._holddown_spans: Dict[str, AbstractSpan] = {}
        self.hold_down = HOLD_DOWN_DELAY

    # -- lifecycle -----------------------------------------------------------
    @abc.abstractmethod
    def start(self) -> None:
        """Schedule initial advertisements for every router in the domain."""

    @abc.abstractmethod
    def refresh(self) -> None:
        """Re-originate advertisements after topology or anycast changes."""

    @abc.abstractmethod
    def install_routes(self) -> None:
        """Compute routes from converged protocol state and install FIBs."""

    def converge(self, max_events: int = 2_000_000) -> int:
        """Drain protocol messages, then install routes.  Returns events run."""
        observed = self.obs.enabled
        if observed:
            wall_t0 = time.perf_counter()
        if not self._started:
            self.start()
        processed = self.scheduler.run_until_idle(max_events=max_events)
        self.install_routes()
        if observed:
            wall_ms = (time.perf_counter() - wall_t0) * 1000.0
            self.obs.histogram("igp.converge_wall_ms").observe(wall_ms)
            self.obs.event("igp.converge", t=self.scheduler.now,
                           asn=self.domain.asn, protocol=type(self).__name__,
                           events=processed, messages_sent=self.stats.sent,
                           wall_ms=wall_ms)
        return processed

    # -- failure detection -----------------------------------------------------
    def on_link_change(self, link: Link) -> None:
        """Notify the IGP that one of its domain's links changed state.

        Each endpoint router arms a hold-down timer
        (:data:`HOLD_DOWN_DELAY`); when it expires the router withdraws
        and re-advertises its view of the topology
        (:meth:`_react_to_link_change`).  Repeated events while the
        timer is armed coalesce into one reaction — the classic
        dampening trade-off between reconvergence speed and update
        churn under flapping.
        """
        if not self._started:
            return  # first convergence will see the final link state
        for endpoint in (link.a, link.b):
            if endpoint in self.domain.routers:
                self._schedule_holddown(endpoint)

    def _schedule_holddown(self, router_id: str) -> None:
        if router_id in self._holddown_pending:
            return
        self._holddown_pending.add(router_id)
        self._holddown_spans[router_id] = self.obs.span(
            "igp.holddown", t=self.scheduler.now, asn=self.domain.asn,
            router=router_id).start()
        self.scheduler.schedule(
            self.hold_down, lambda r=router_id: self._holddown_expired(r))

    def _holddown_expired(self, router_id: str) -> None:
        self._holddown_pending.discard(router_id)
        span = self._holddown_spans.pop(router_id, None)
        if span is not None:
            span.end(t=self.scheduler.now)
        if router_id not in self.domain.routers:
            return
        if not self.network.node(router_id).up:
            return  # crashed routers stay silent; recovery renotifies
        self._react_to_link_change(router_id)

    def _react_to_link_change(self, router_id: str) -> None:
        """Protocol-specific reaction once a hold-down timer expires."""
        self.refresh()

    # -- anycast extension -----------------------------------------------------
    def advertise_anycast(self, router_id: str, address: IPv4Address,
                          cost: float = ANYCAST_STUB_COST) -> None:
        """Have *router_id* advertise a stub route to an anycast address."""
        self._require_member(router_id)
        self._anycast_adverts.setdefault(router_id, {})[address] = cost
        if self._started:
            self.refresh()

    def withdraw_anycast(self, router_id: str, address: IPv4Address) -> None:
        adverts = self._anycast_adverts.get(router_id, {})
        adverts.pop(address, None)
        if not adverts:
            self._anycast_adverts.pop(router_id, None)
        if self._started:
            self.refresh()

    def anycast_advertisers(self, address: IPv4Address) -> Set[str]:
        """Routers in this domain advertising *address*."""
        return {rid for rid, adverts in self._anycast_adverts.items() if address in adverts}

    def anycast_advert_cost(self, router_id: str, address: IPv4Address) -> Optional[float]:
        return self._anycast_adverts.get(router_id, {}).get(address)

    # -- helpers ----------------------------------------------------------------
    def _require_member(self, router_id: str) -> Node:
        if router_id not in self.domain.routers:
            raise RoutingError(
                f"router {router_id!r} is not in AS{self.domain.asn}; cannot participate in its IGP")
        return self.network.node(router_id)

    def local_prefixes(self, router_id: str) -> List[Prefix]:
        """Prefixes a router originates: its loopback and attached hosts."""
        node = self.network.node(router_id)
        prefixes = [Prefix.host(node.ipv4)]
        for neighbor_id, _link in self.network.neighbors(router_id):
            neighbor = self.network.node(neighbor_id)
            if neighbor.is_host:
                prefixes.append(Prefix.host(neighbor.ipv4))
        return prefixes

    def intra_neighbors(self, router_id: str) -> List[Tuple[str, float, float]]:
        """(neighbor router id, cost, delay) over live intra-domain links."""
        result = []
        for neighbor_id, link in self.network.neighbors(router_id):
            neighbor = self.network.node(neighbor_id)
            if neighbor.is_host or neighbor.domain_id != self.domain.asn:
                continue
            result.append((neighbor_id, link.cost, link.delay))
        return result

    # -- discovery hooks (link-state only) ----------------------------------------
    def member_directory(self, address: IPv4Address) -> Set[str]:
        """All routers advertising *address*, as visible from the LSDB.

        Only meaningful when :attr:`supports_member_discovery` is true;
        the base implementation raises to keep callers honest.
        """
        raise RoutingError(
            f"{type(self).__name__} cannot enumerate anycast members; "
            "use anycast-bootstrap discovery instead (paper footnote 3)")

    def distance_between(self, a: str, b: str) -> Optional[float]:
        """IGP distance between two routers of this domain (ground truth)."""
        result = self.network.shortest_path(a, b, intra_domain_only=True)
        return result[0] if result is not None else None
