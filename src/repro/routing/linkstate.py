"""Link-state intra-domain routing (OSPF-like) with the anycast extension.

Each router originates a link-state advertisement (LSA) describing its
live intra-domain adjacencies, the prefixes it injects (its loopback
and attached hosts), and — the paper's Section 3.2 extension — a
high-cost stub "link" to each anycast address it is a member of.  LSAs
flood reliably through the domain; once flooding quiesces every router
runs Dijkstra over its link-state database and installs routes,
including a host route towards the *closest* member of each anycast
group.

Because anycast membership is visible in the LSDB, an IPvN router "can
easily identify every other IPvN router within its domain"
(:meth:`LinkStateRouting.member_directory`), which is what makes the
simple intra-domain vN-Bone construction rule possible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain
from repro.net.errors import RoutingError
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import FibEntry, RouteSource
from repro.net.simulator import EventScheduler
from repro.perf.cache import caching_enabled
from repro.routing.igp import ANYCAST_STUB_COST, IgpProtocol


@dataclass(frozen=True)
class Lsa:
    """One router's link-state advertisement."""

    origin: str
    seq: int
    neighbors: Tuple[Tuple[str, float], ...]
    prefixes: Tuple[Prefix, ...]
    anycast: Tuple[Tuple[IPv4Address, float], ...]

    def content_key(self) -> Tuple[object, ...]:
        """Everything except the sequence number (change detection)."""
        return (self.origin, self.neighbors, self.prefixes, self.anycast)


class LinkStateRouting(IgpProtocol):
    """A flooding link-state IGP for one domain."""

    supports_member_discovery = True

    def __init__(self, network: Network, domain: Domain,
                 scheduler: EventScheduler) -> None:
        super().__init__(network, domain, scheduler)
        #: Per-router link-state database: viewpoint -> origin -> LSA.
        self._lsdb: Dict[str, Dict[str, Lsa]] = {rid: {} for rid in domain.routers}
        self._seq: Dict[str, int] = {rid: 0 for rid in domain.routers}
        #: Per-viewpoint LSDB generation: bumped on every stored LSA, so
        #: an unchanged generation proves the SPF input is unchanged.
        self._lsdb_gen: Dict[str, int] = {rid: 0 for rid in domain.routers}
        #: viewpoint -> (generation, SPF result); see :meth:`_spf`.
        self._spf_cache: Dict[str, Tuple[int, Dict[str, Tuple[float, Optional[str]]]]] = {}
        self.spf_cache_enabled = caching_enabled()

    # -- origination and flooding ---------------------------------------------
    def _build_lsa(self, router_id: str) -> Lsa:
        neighbors = tuple(sorted((nid, cost) for nid, cost, _ in
                                 self.intra_neighbors(router_id)))
        prefixes = tuple(sorted(self.local_prefixes(router_id)))
        anycast = tuple(sorted(self._anycast_adverts.get(router_id, {}).items()))
        return Lsa(origin=router_id, seq=self._seq[router_id], neighbors=neighbors,
                   prefixes=prefixes, anycast=anycast)

    def _originate(self, router_id: str) -> None:
        self._seq[router_id] += 1
        lsa = self._build_lsa(router_id)
        self._store_lsa(router_id, lsa)
        if self.obs.enabled:
            self.obs.counter("igp.ls.lsa_originations").inc()
        self._flood(router_id, lsa, exclude=None)

    def _store_lsa(self, viewpoint: str, lsa: Lsa) -> None:
        """Store *lsa* in *viewpoint*'s LSDB, bumping its generation."""
        self._lsdb[viewpoint][lsa.origin] = lsa
        self._lsdb_gen[viewpoint] = self._lsdb_gen.get(viewpoint, 0) + 1

    def _flood(self, from_router: str, lsa: Lsa, exclude: Optional[str]) -> None:
        obs_enabled = self.obs.enabled
        for neighbor_id, _cost, delay in self.intra_neighbors(from_router):
            if neighbor_id == exclude:
                continue
            self.stats.record_send()
            if obs_enabled:
                self.obs.counter("igp.ls.messages_sent").inc()
            self.scheduler.schedule_message(
                delay, lambda n=neighbor_id, s=from_router, l=lsa: self._receive(n, s, l))

    def _receive(self, router_id: str, sender: str, lsa: Lsa) -> None:
        if router_id not in self._lsdb:
            return  # router left the domain mid-flight
        if not self.network.node(router_id).up:
            return  # crashed router: message lost on the floor
        self.stats.record_delivery()
        current = self._lsdb[router_id].get(lsa.origin)
        if current is not None and current.seq >= lsa.seq:
            return
        self._store_lsa(router_id, lsa)
        self._flood(router_id, lsa, exclude=sender)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        for router_id in sorted(self.domain.routers):
            self.scheduler.schedule(0.0, lambda r=router_id: self._originate(r))

    def refresh(self) -> None:
        """Re-originate LSAs whose content changed (triggered updates)."""
        if not self._started:
            self.start()
            return
        for router_id in sorted(self.domain.routers):
            fresh = self._build_lsa(router_id)
            stored = self._lsdb[router_id].get(router_id)
            if stored is None or stored.content_key() != fresh.content_key():
                self.scheduler.schedule(0.0, lambda r=router_id: self._originate(r))

    # -- failure detection ------------------------------------------------------
    def on_link_change(self, link: Link) -> None:
        super().on_link_change(link)
        if not self._started or not link.up:
            return
        # An adjacency (re)formed.  Besides re-originating LSAs, the two
        # endpoints exchange full databases (OSPF's DB-description phase)
        # so state that changed while they were partitioned propagates:
        # seq-number dedup in _receive makes replaying stale LSAs safe.
        if link.a in self.domain.routers and link.b in self.domain.routers:
            self.scheduler.schedule(
                self.hold_down,
                lambda a=link.a, b=link.b: self._sync_adjacency(a, b))

    def _sync_adjacency(self, a: str, b: str) -> None:
        for source, target in ((a, b), (b, a)):
            if source not in self._lsdb or target not in self._lsdb:
                continue
            if not self.network.node(source).up:
                continue
            link = self.network.link_between(source, target)
            if link is None or not link.up:
                continue
            for lsa in list(self._lsdb[source].values()):
                self.stats.record_send()
                self.scheduler.schedule_message(
                    link.delay,
                    lambda t=target, s=source, l=lsa: self._receive(t, s, l))

    def _react_to_link_change(self, router_id: str) -> None:
        # Only the routers adjacent to the event re-originate; flooding
        # carries the change to the rest of the domain.
        self._originate(router_id)

    # -- SPF and route installation ---------------------------------------------
    def _spf(self, router_id: str) -> Dict[str, Tuple[float, Optional[str]]]:
        """Dijkstra over *router_id*'s LSDB: node -> (dist, first hop).

        An edge is used only if both endpoints advertise it
        (bidirectionality check, as in OSPF).

        Results are memoized against the viewpoint's LSDB generation:
        until that router's database actually changes, repeated calls
        (``install_routes``, ``igp_distance``) reuse the same tree.
        Callers treat the returned mapping as read-only.
        """
        generation = self._lsdb_gen.get(router_id, 0)
        if self.spf_cache_enabled:
            cached = self._spf_cache.get(router_id)
            if cached is not None and cached[0] == generation:
                if self.obs.enabled:
                    self.obs.counter("igp.ls.spf_cache_hits").inc()
                return cached[1]
        if self.obs.enabled:
            self.obs.counter("igp.ls.spf_runs").inc()
            self.obs.counter("perf.dijkstra_runs").inc()
        lsdb = self._lsdb[router_id]
        adjacency: Dict[str, List[Tuple[str, float]]] = {}
        for origin, lsa in lsdb.items():
            for neighbor_id, cost in lsa.neighbors:
                back = lsdb.get(neighbor_id)
                if back is None:
                    continue
                if not any(nid == origin for nid, _ in back.neighbors):
                    continue
                adjacency.setdefault(origin, []).append((neighbor_id, cost))
        for edges in adjacency.values():
            edges.sort()  # once per SPF, not once per heap pop
        dist: Dict[str, Tuple[float, Optional[str]]] = {router_id: (0.0, None)}
        heap: List[Tuple[float, str, Optional[str]]] = [(0.0, router_id, None)]
        settled: Set[str] = set()
        while heap:
            d, u, first = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            dist[u] = (d, first)
            for v, cost in adjacency.get(u, ()):
                if v in settled:
                    continue
                hop = v if first is None else first
                heapq.heappush(heap, (d + cost, v, hop))
        result = {node: info for node, info in dist.items() if node in settled}
        if self.spf_cache_enabled:
            self._spf_cache[router_id] = (generation, result)
        return result

    def install_routes(self) -> None:
        for router_id in sorted(self.domain.routers):
            node = self.network.node(router_id)
            node.fib4.withdraw_all(RouteSource.IGP)
            lsdb = self._lsdb[router_id]
            spf = self._spf(router_id)
            # Unicast prefixes of every reachable router.
            for origin, lsa in lsdb.items():
                if origin == router_id or origin not in spf:
                    continue
                dist, first_hop = spf[origin]
                if first_hop is None:
                    continue
                for pfx in lsa.prefixes:
                    node.fib4.install(FibEntry(prefix=pfx, next_hop=first_hop,
                                               source=RouteSource.IGP, metric=dist))
            # Anycast: route to the closest advertising member.
            for address in self._visible_anycast_addresses(lsdb):
                best = self._closest_member(router_id, address, lsdb, spf)
                if best is None:
                    continue
                member, total_cost = best
                if member == router_id:
                    continue  # local member: accepts_ipv4 handles delivery
                _, first_hop = spf[member]
                if first_hop is None:
                    continue
                node.fib4.install(FibEntry(prefix=Prefix.host(address),
                                           next_hop=first_hop,
                                           source=RouteSource.IGP, metric=total_cost))

    @staticmethod
    def _visible_anycast_addresses(lsdb: Dict[str, Lsa]) -> Set[IPv4Address]:
        addresses: Set[IPv4Address] = set()
        for lsa in lsdb.values():
            addresses.update(addr for addr, _ in lsa.anycast)
        return addresses

    @staticmethod
    def _closest_member(router_id: str, address: IPv4Address, lsdb: Dict[str, Lsa],
                        spf: Dict[str, Tuple[float, Optional[str]]]
                        ) -> Optional[Tuple[str, float]]:
        best: Optional[Tuple[str, float]] = None
        for origin, lsa in sorted(lsdb.items()):
            stub_cost = next((c for a, c in lsa.anycast if a == address), None)
            if stub_cost is None or origin not in spf:
                continue
            total = spf[origin][0] + stub_cost
            if best is None or total < best[1]:
                best = (origin, total)
        return best

    # -- discovery ------------------------------------------------------------------
    def member_directory(self, address: IPv4Address,
                         viewpoint: Optional[str] = None) -> Set[str]:
        """Anycast members visible in the LSDB.

        *viewpoint* selects whose database to read (defaults to the
        lexicographically first router); after convergence all
        viewpoints agree unless the domain is partitioned.
        """
        if not self._lsdb:
            return set()
        if viewpoint is None:
            viewpoint = min(self._lsdb)
        if viewpoint not in self._lsdb:
            raise RoutingError(f"{viewpoint!r} is not a router of AS{self.domain.asn}")
        return {origin for origin, lsa in self._lsdb[viewpoint].items()
                if any(a == address for a, _ in lsa.anycast)}

    def igp_distance(self, viewpoint: str, target: str) -> Optional[float]:
        """Converged SPF distance from *viewpoint* to *target* router."""
        spf = self._spf(viewpoint)
        entry = spf.get(target)
        return entry[0] if entry is not None else None
