"""Topology generators: tiered internets, router-level graphs, paper figures."""

from repro.topogen.figures import FigureTopology, figure1, figure2, figure3, figure4
from repro.topogen.hierarchy import (GeneratedInternet, InternetSpec,
                                     generate_internet, medium_internet,
                                     small_internet)
from repro.topogen.intra import (build_domain_routers, grid_domain, random_domain,
                                 ring_domain, star_domain)

__all__ = ["FigureTopology", "figure1", "figure2", "figure3", "figure4",
           "GeneratedInternet", "InternetSpec", "generate_internet",
           "medium_internet", "small_internet", "build_domain_routers",
           "grid_domain", "random_domain", "ring_domain", "star_domain"]
