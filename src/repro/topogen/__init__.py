"""Topology generators: tiered internets, router-level graphs, paper figures."""

from repro.topogen.figures import FigureTopology, figure1, figure2, figure3, figure4
from repro.topogen.hierarchy import (GeneratedInternet, InternetSpec,
                                     generate_internet, medium_internet,
                                     small_internet)
from repro.topogen.intra import (build_domain_routers, grid_domain, random_domain,
                                 ring_domain, star_domain)
from repro.topogen.scale import (GeneratedScaleInternet, ScaleSpec,
                                 generate_scale_internet, scale_rng,
                                 spec_for_router_budget)

__all__ = ["FigureTopology", "figure1", "figure2", "figure3", "figure4",
           "GeneratedInternet", "InternetSpec", "generate_internet",
           "medium_internet", "small_internet", "build_domain_routers",
           "grid_domain", "random_domain", "ring_domain", "star_domain",
           "GeneratedScaleInternet", "ScaleSpec", "generate_scale_internet",
           "scale_rng", "spec_for_router_budget"]
