"""The exact small topologies of the paper's Figures 1-4.

Each builder returns a :class:`FigureTopology` holding the network and
the named nodes the figure talks about, so the corresponding benchmark
reads like the paper's own walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain, Relationship
from repro.net.network import Network


@dataclass
class FigureTopology:
    """A figure's network plus its named cast."""

    network: Network
    #: domain name (as in the figure) -> ASN
    domains: Dict[str, int] = field(default_factory=dict)
    #: role name (e.g. "client_C") -> node id
    nodes: Dict[str, str] = field(default_factory=dict)

    def asn(self, name: str) -> int:
        return self.domains[name]

    def node_id(self, role: str) -> str:
        return self.nodes[role]


def _add_domain(network: Network, asn: int, name: str, routers: int = 2,
                tier: int = 2) -> List[str]:
    network.add_domain(Domain(asn=asn, name=name,
                              prefix=Prefix(IPv4Address((10 << 24) | (asn << 16)), 16),
                              tier=tier))
    ids = []
    for index in range(routers):
        router_id = f"{name.lower()}{index}"
        # Figure domains are tiny; let any router terminate inter-domain
        # links so the builders can wire them exactly as drawn.
        network.add_router(router_id, asn, is_border=True)
        ids.append(router_id)
    for a, b in zip(ids, ids[1:]):
        network.add_link(a, b)
    return ids


def figure1() -> FigureTopology:
    """Figure 1: ISPs W, X, Y, Z; client C in Z.

    IPv8 is deployed successively in X, then Y, then Z; throughout,
    C must be redirected to the closest IPv8 provider.  The domains
    form a provider chain Z -> Y -> X -> W so that each successive
    deployment is strictly closer to C.
    """
    network = Network()
    fig = FigureTopology(network=network)
    for asn, name in enumerate(["W", "X", "Y", "Z"], start=1):
        _add_domain(network, asn, name, routers=2, tier=1 if name == "W" else 2)
        fig.domains[name] = asn
    network.connect_domains(4, 3, "z0", "y0", Relationship.PROVIDER)  # Z -> Y
    network.connect_domains(3, 2, "y0", "x0", Relationship.PROVIDER)  # Y -> X
    network.connect_domains(2, 1, "x0", "w0", Relationship.PROVIDER)  # X -> W
    client = network.add_host("client_c", 4, "z1")
    fig.nodes["client_C"] = client.node_id
    return fig


def figure2() -> FigureTopology:
    """Figure 2: default domain D; P, Q transit; X, Y, Z clients.

    ISPs Q and D deploy IPvN with D the default domain.  Anycast
    packets from X and Y terminate in D; those from Z are intercepted
    by Q on their way towards D.  Q later peers with Y to advertise its
    anycast route, after which Y's packets reach Q instead of D.
    """
    network = Network()
    fig = FigureTopology(network=network)
    for asn, name in enumerate(["P", "Q", "D", "X", "Y", "Z"], start=1):
        _add_domain(network, asn, name, routers=2,
                    tier=1 if name in ("P", "Q") else 2)
        fig.domains[name] = asn
    p, q, d, x, y, z = (fig.domains[n] for n in ["P", "Q", "D", "X", "Y", "Z"])
    network.connect_domains(p, q, "p0", "q0", Relationship.PEER)
    network.connect_domains(d, p, "d0", "p0", Relationship.PROVIDER)
    network.connect_domains(x, p, "x0", "p0", Relationship.PROVIDER)
    network.connect_domains(y, p, "y0", "p0", Relationship.PROVIDER)
    network.connect_domains(y, q, "y1", "q1", Relationship.PROVIDER)
    network.connect_domains(z, q, "z0", "q0", Relationship.PROVIDER)
    for name in ("X", "Y", "Z"):
        asn = fig.domains[name]
        host = network.add_host(f"host_{name.lower()}", asn, f"{name.lower()}1")
        fig.nodes[f"host_{name}"] = host.node_id
    return fig


def figure3() -> FigureTopology:
    """Figure 3: inter-domain vN-Bone routing with BGPv(N-1) import.

    ISPs M and O deploy IPvN; client C's domain S has not.  S is a
    customer of O, while M reaches S only through O (or through the
    v(N-1)-only transit T).  Without BGPv(N-1) information, M's border
    X exits the vN-Bone immediately and the packet crosses T and O as
    plain IPv(N-1); with it, the packet rides the vN-Bone M -> O and
    exits at O's border Y, one AS hop from C.
    """
    network = Network()
    fig = FigureTopology(network=network)
    for asn, name in enumerate(["T", "M", "O", "S"], start=1):
        _add_domain(network, asn, name, routers=3,
                    tier=1 if name == "T" else 2)
        fig.domains[name] = asn
    t, m, o, s = (fig.domains[n] for n in ["T", "M", "O", "S"])
    network.connect_domains(m, t, "m0", "t0", Relationship.PROVIDER)
    network.connect_domains(o, t, "o0", "t0", Relationship.PROVIDER)
    network.connect_domains(m, o, "m1", "o1", Relationship.PEER)
    network.connect_domains(s, o, "s0", "o2", Relationship.PROVIDER)
    source = network.add_host("host_m", m, "m2")
    client = network.add_host("client_c", s, "s1")
    fig.nodes["host_M"] = source.node_id
    fig.nodes["client_C"] = client.node_id
    fig.nodes["border_X"] = "m1"
    fig.nodes["router_Z"] = "o1"
    fig.nodes["border_Y"] = "o2"
    return fig


def figure4() -> FigureTopology:
    """Figure 4: advertising-by-proxy.

    ISPs A, B, C support IPvN; M, N and Z support only IPv(N-1).
    Without proxy advertisements the path from A to Z leaves the
    vN-Bone at A and crosses M and N as IPv(N-1); with B and C
    advertising their (short) distance to Z into BGPvN, the packet
    rides the vN-Bone A -> B -> C and exits next to Z.
    """
    network = Network()
    fig = FigureTopology(network=network)
    for asn, name in enumerate(["A", "B", "C", "M", "N", "Z"], start=1):
        _add_domain(network, asn, name, routers=2)
        fig.domains[name] = asn
    a, b, c, m, n, z = (fig.domains[x] for x in ["A", "B", "C", "M", "N", "Z"])
    # The IPv(N-1)-only chain A - M - N - Z: M and N are transit
    # providers for the edge domains, peering with each other, so the
    # legacy path A -> M -> N -> Z is valley-free and is the ONLY
    # IPv(N-1) route from A to Z.
    network.connect_domains(a, m, "a0", "m0", Relationship.PROVIDER)
    network.connect_domains(m, n, "m1", "n0", Relationship.PEER)
    network.connect_domains(z, n, "z0", "n1", Relationship.PROVIDER)
    # The IPvN-capable chain A - B - C - Z.  A - B and B - C are peer
    # links, so Z's route (a customer route at C, a peer route at B)
    # is never exported to A: the chain exists for vN-Bone tunnels but
    # carries no IPv(N-1) transit for A, matching the figure's
    # distinction between IPvN and IPv(N-1) inter-domain links.
    network.connect_domains(a, b, "a1", "b0", Relationship.PEER)
    network.connect_domains(b, c, "b1", "c0", Relationship.PEER)
    network.connect_domains(z, c, "z1", "c1", Relationship.PROVIDER)
    source = network.add_host("host_a", a, "a1")
    sink = network.add_host("host_z", z, "z1")
    fig.nodes["host_A"] = source.node_id
    fig.nodes["host_Z"] = sink.node_id
    return fig
