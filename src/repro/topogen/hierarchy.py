"""AS-level Internet generator: a tiered provider hierarchy.

Generates the standard three-tier structure used in inter-domain
routing studies: a clique of tier-1 transit providers, a layer of
tier-2 regional providers multihomed to the tier-1s (with some
settlement-free tier-2 peering), and stub/access domains multihomed to
tier-2s.  Every domain gets a router-level topology from
:mod:`repro.topogen.intra` and an address block; stubs (and optionally
tier-2s) get endhosts.

All randomness flows from the spec's seed, so a given spec always
yields the same internetwork — experiments are reproducible runs, not
snowflakes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain, Relationship
from repro.net.errors import TopologyError
from repro.net.network import Network
from repro.topogen.intra import build_domain_routers


@dataclass
class InternetSpec:
    """Parameters for :func:`generate_internet`."""

    n_tier1: int = 3
    n_tier2: int = 6
    n_stub: int = 12
    routers_tier1: int = 5
    routers_tier2: int = 4
    routers_stub: int = 2
    hosts_per_stub: int = 2
    hosts_per_tier2: int = 0
    intra_style: str = "random"
    tier2_provider_range: Tuple[int, int] = (1, 2)
    stub_provider_range: Tuple[int, int] = (1, 2)
    tier2_peer_prob: float = 0.25
    inter_cost: float = 2.0
    seed: int = 0

    def total_domains(self) -> int:
        return self.n_tier1 + self.n_tier2 + self.n_stub


@dataclass
class GeneratedInternet:
    """The generator's output: the network plus tier bookkeeping."""

    network: Network
    spec: InternetSpec
    tier1: List[int] = field(default_factory=list)
    tier2: List[int] = field(default_factory=list)
    stubs: List[int] = field(default_factory=list)
    routers_by_asn: Dict[int, List[str]] = field(default_factory=dict)
    hosts: List[str] = field(default_factory=list)

    def all_asns(self) -> List[int]:
        return self.tier1 + self.tier2 + self.stubs

    def hosts_in(self, asn: int) -> List[str]:
        return sorted(self.network.domains[asn].hosts)


def _domain_prefix(asn: int) -> Prefix:
    if asn > 255:
        raise TopologyError("generator supports at most 255 domains (10.asn/16 blocks)")
    return Prefix(IPv4Address((10 << 24) | (asn << 16)), 16)


class _BorderPicker:
    """Round-robins inter-domain link endpoints over a domain's borders."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._next: Dict[int, int] = {}

    def pick(self, asn: int) -> str:
        borders = sorted(self.network.domains[asn].border_routers)
        if not borders:
            raise TopologyError(f"AS{asn} has no border routers")
        index = self._next.get(asn, 0)
        self._next[asn] = index + 1
        return borders[index % len(borders)]


def generate_internet(spec: InternetSpec) -> GeneratedInternet:
    """Build a tiered internetwork from *spec* (deterministic in the seed)."""
    if spec.n_tier1 < 1:
        raise TopologyError("need at least one tier-1 domain")
    rng = random.Random(spec.seed)
    network = Network()
    result = GeneratedInternet(network=network, spec=spec)
    picker = _BorderPicker(network)
    next_asn = 1

    def make_domain(tier: int, router_count: int, border_count: int) -> int:
        nonlocal next_asn
        asn = next_asn
        next_asn += 1
        domain = Domain(asn=asn, name=f"as{asn}", prefix=_domain_prefix(asn),
                        tier=tier)
        network.add_domain(domain)
        routers = build_domain_routers(network, asn, router_count,
                                       spec.intra_style,
                                       border_count=border_count,
                                       rng=random.Random(spec.seed * 1000 + asn))
        result.routers_by_asn[asn] = routers
        return asn

    # Tier 1: clique of peers.
    for _ in range(spec.n_tier1):
        asn = make_domain(1, spec.routers_tier1,
                          border_count=max(2, spec.n_tier1 - 1))
        result.tier1.append(asn)
    for i, a in enumerate(result.tier1):
        for b in result.tier1[i + 1:]:
            network.connect_domains(a, b, picker.pick(a), picker.pick(b),
                                    Relationship.PEER, cost=spec.inter_cost)

    # Tier 2: customers of one or more tier-1s, with some peering.
    for _ in range(spec.n_tier2):
        asn = make_domain(2, spec.routers_tier2, border_count=2)
        result.tier2.append(asn)
        count = rng.randint(*spec.tier2_provider_range)
        providers = rng.sample(result.tier1, min(count, len(result.tier1)))
        for provider in providers:
            network.connect_domains(asn, provider, picker.pick(asn),
                                    picker.pick(provider),
                                    Relationship.PROVIDER, cost=spec.inter_cost)
    for i, a in enumerate(result.tier2):
        for b in result.tier2[i + 1:]:
            if rng.random() < spec.tier2_peer_prob:
                network.connect_domains(a, b, picker.pick(a), picker.pick(b),
                                        Relationship.PEER, cost=spec.inter_cost)

    # Stubs: customers of tier-2s (or a tier-1 when there are no tier-2s).
    provider_pool = result.tier2 if result.tier2 else result.tier1
    for _ in range(spec.n_stub):
        asn = make_domain(3, spec.routers_stub, border_count=1)
        result.stubs.append(asn)
        count = rng.randint(*spec.stub_provider_range)
        providers = rng.sample(provider_pool, min(count, len(provider_pool)))
        for provider in providers:
            network.connect_domains(asn, provider, picker.pick(asn),
                                    picker.pick(provider),
                                    Relationship.PROVIDER, cost=spec.inter_cost)

    # Hosts.
    for asn in result.stubs:
        _attach_hosts(network, result, asn, spec.hosts_per_stub, rng)
    for asn in result.tier2:
        _attach_hosts(network, result, asn, spec.hosts_per_tier2, rng)
    return result


def _attach_hosts(network: Network, result: GeneratedInternet, asn: int,
                  count: int, rng: random.Random) -> None:
    routers = result.routers_by_asn[asn]
    for index in range(count):
        access = routers[rng.randrange(len(routers))]
        host_id = f"h{asn}n{index}"
        network.add_host(host_id, asn, access)
        result.hosts.append(host_id)


def small_internet(seed: int = 0) -> GeneratedInternet:
    """A compact default internetwork for tests and quick experiments."""
    return generate_internet(InternetSpec(seed=seed))


def medium_internet(seed: int = 0) -> GeneratedInternet:
    """A mid-size internetwork for the benchmark sweeps."""
    spec = InternetSpec(n_tier1=4, n_tier2=10, n_stub=25, routers_tier1=6,
                        routers_tier2=5, routers_stub=3, hosts_per_stub=2,
                        hosts_per_tier2=1, seed=seed)
    return generate_internet(spec)
