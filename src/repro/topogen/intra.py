"""Router-level (intra-domain) topology generators.

Each generator adds routers and links for one domain to an existing
:class:`~repro.net.network.Network` and returns the router ids in
creation order.  Styles cover the shapes ISP backbones actually take at
small scale: rings (classic metro), stars (hub-and-spoke), grids
(planned meshes), and random connected graphs (organic growth).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.net.errors import TopologyError
from repro.net.network import Network


def _router_ids(asn: int, count: int, prefix: str) -> List[str]:
    return [f"{prefix}{asn}r{i}" for i in range(count)]


def ring_domain(network: Network, asn: int, count: int, border_count: int = 1,
                cost: float = 1.0, prefix: str = "as") -> List[str]:
    """A ring of *count* routers; the first *border_count* are borders."""
    if count < 1:
        raise TopologyError("a domain needs at least one router")
    ids = _router_ids(asn, count, prefix)
    for index, router_id in enumerate(ids):
        network.add_router(router_id, asn, is_border=index < border_count)
    for index in range(count if count > 2 else count - 1):
        network.add_link(ids[index], ids[(index + 1) % count], cost=cost)
    return ids


def star_domain(network: Network, asn: int, count: int, border_count: int = 1,
                cost: float = 1.0, prefix: str = "as") -> List[str]:
    """A hub router with *count - 1* spokes; borders allocated first."""
    if count < 1:
        raise TopologyError("a domain needs at least one router")
    ids = _router_ids(asn, count, prefix)
    for index, router_id in enumerate(ids):
        network.add_router(router_id, asn, is_border=index < border_count)
    for spoke in ids[1:]:
        network.add_link(ids[0], spoke, cost=cost)
    return ids


def grid_domain(network: Network, asn: int, rows: int, cols: int,
                border_count: int = 1, cost: float = 1.0,
                prefix: str = "as") -> List[str]:
    """A rows x cols grid mesh."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    ids = _router_ids(asn, rows * cols, prefix)
    for index, router_id in enumerate(ids):
        network.add_router(router_id, asn, is_border=index < border_count)
    for r in range(rows):
        for c in range(cols):
            index = r * cols + c
            if c + 1 < cols:
                network.add_link(ids[index], ids[index + 1], cost=cost)
            if r + 1 < rows:
                network.add_link(ids[index], ids[index + cols], cost=cost)
    return ids


def random_domain(network: Network, asn: int, count: int,
                  extra_edges: int = 2, border_count: int = 1,
                  rng: Optional[random.Random] = None,
                  cost_range: Sequence[float] = (1.0, 4.0),
                  prefix: str = "as") -> List[str]:
    """A random connected graph: random spanning tree plus extra chords.

    Link costs are drawn uniformly from *cost_range*.  *rng* is
    required: all randomness must be threaded from the caller's seed
    (there is no implicit per-ASN fallback), so a given rng state
    always yields the same graph.
    """
    if count < 1:
        raise TopologyError("a domain needs at least one router")
    if rng is None:
        raise TopologyError(
            "random_domain needs an explicit seeded rng (e.g. "
            "rng=random.Random(spec.seed * 1000 + asn)); the implicit "
            "per-ASN fallback was removed so all randomness is threaded")
    ids = _router_ids(asn, count, prefix)
    for index, router_id in enumerate(ids):
        network.add_router(router_id, asn, is_border=index < border_count)
    lo, hi = cost_range

    def random_cost() -> float:
        return round(rng.uniform(lo, hi), 2)

    # Random spanning tree: attach each new router to a random earlier one.
    for index in range(1, count):
        anchor = ids[rng.randrange(index)]
        network.add_link(ids[index], anchor, cost=random_cost())
    # Extra chords for path diversity.
    attempts = 0
    added = 0
    while added < extra_edges and attempts < extra_edges * 20 and count > 2:
        attempts += 1
        a, b = rng.sample(ids, 2)
        if network.link_between(a, b) is not None:
            continue
        network.add_link(a, b, cost=random_cost())
        added += 1
    return ids


STYLES = {
    "ring": ring_domain,
    "star": star_domain,
    "random": random_domain,
}


def build_domain_routers(network: Network, asn: int, count: int, style: str,
                         border_count: int = 1,
                         rng: Optional[random.Random] = None,
                         prefix: str = "as") -> List[str]:
    """Dispatch to a generator by *style* name ("ring", "star", "random").

    The "random" style requires an explicit seeded *rng* (see
    :func:`random_domain`); the deterministic styles ignore it.
    """
    if style == "ring":
        return ring_domain(network, asn, count, border_count=border_count,
                           prefix=prefix)
    if style == "star":
        return star_domain(network, asn, count, border_count=border_count,
                           prefix=prefix)
    if style == "random":
        return random_domain(network, asn, count, border_count=border_count,
                             rng=rng, prefix=prefix)
    raise TopologyError(f"unknown intra-domain style {style!r}")
