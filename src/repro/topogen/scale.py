"""Internet-scale topology tier: power-law AS graphs, 10k-100k routers.

:mod:`repro.topogen.hierarchy` builds faithful but mid-size
internetworks (hundreds of routers).  The paper's adoption and
fragmentation scenarios presuppose Internet-like scale — thousands of
ASes with the heavy-tailed degree distribution real AS graphs exhibit.
This module generates that tier:

* a **transit core** grown by preferential attachment (Barabási-Albert
  style) from a small tier-1 clique: each new transit AS buys transit
  from ``m_attach`` existing transit ASes chosen proportionally to
  degree, so early/large providers accumulate customers and the degree
  distribution develops a power-law tail;
* a **stub fringe** of single-homed customer ASes whose provider is
  again drawn preferentially, concentrating most stubs under a few
  hypergiant transits.

Running message-driven BGP over tens of thousands of ASes is neither
tractable nor realistic — real stubs overwhelmingly point default
routes at their provider rather than speaking full-table BGP.  The
scale tier models exactly that: stubs are created with
``Domain.default_routed = True`` (so :class:`~repro.bgp.protocol.
BgpProtocol` gives them no speaker and originates nothing for them),
their address blocks are carved out of the provider's aggregate
(provider-assigned /24s inside the transit's /16), and static routes
wire the fringe: every stub router gets a static default toward its
provider uplink, and every provider router gets a static route for
each customer /24.  Longest-prefix match does the rest: remote traffic
follows the provider's BGP-announced /16 into the provider, then the
static /24 into the stub.

All randomness flows from per-AS streams seeded exactly like
:func:`repro.vnbone.deployment.adoption_rng` — the graph is a pure
function of ``ScaleSpec`` (rule D1), and every iteration that feeds
topology construction is sorted (rule D3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.domain import Domain, Relationship
from repro.net.errors import TopologyError
from repro.net.network import DEFAULT_ROUTE, Network
from repro.net.node import FibEntry, RouteSource
from repro.topogen.intra import build_domain_routers

#: Knuth's multiplicative-hash constant (same stream-splitting scheme as
#: ``adoption_rng``): spreads consecutive ASNs into well-separated seeds.
_SCALE_SEED_SALT = 2_654_435_761

#: Base of the scale tier's address plan (disjoint from hierarchy's 10/8).
_ADDRESS_BASE = 20 << 24

#: A transit /16 has room for 255 customer /24s (sub-block 0 is the
#: transit's own router/host allocation pool).
_MAX_CUSTOMERS_PER_TRANSIT = 255


def scale_rng(asn: int, seed: int = 0) -> random.Random:
    """The canonical seeded RNG stream for AS *asn* in the scale tier.

    Stream 0 (no domain has ASN 0) drives the AS-level attachment
    process; stream *asn* drives that AS's intra-domain graph and host
    placement.  Splitting per AS keeps the generated graph stable under
    spec changes that only touch other ASes' internals.
    """
    return random.Random(asn * _SCALE_SEED_SALT + seed)


@dataclass
class ScaleSpec:
    """Parameters for :func:`generate_scale_internet`."""

    n_transit: int = 40
    n_stub: int = 360
    routers_transit: int = 6
    routers_stub: int = 2
    hosts_per_stub: int = 1
    #: Size of the seed clique of tier-1 peers the core grows from.
    t1_clique: int = 3
    #: Transit providers each non-clique transit AS attaches to.
    m_attach: int = 2
    intra_style: str = "random"
    inter_cost: float = 2.0
    seed: int = 0

    def total_domains(self) -> int:
        return self.n_transit + self.n_stub

    def total_routers(self) -> int:
        return (self.n_transit * self.routers_transit
                + self.n_stub * self.routers_stub)

    def validate(self) -> None:
        if self.t1_clique < 2:
            raise TopologyError("seed clique needs at least two tier-1 ASes")
        if self.n_transit < self.t1_clique:
            raise TopologyError(
                f"n_transit={self.n_transit} smaller than the "
                f"t1_clique={self.t1_clique} seed")
        if self.m_attach < 1:
            raise TopologyError("m_attach must be at least 1")
        if self.n_stub > self.n_transit * _MAX_CUSTOMERS_PER_TRANSIT:
            raise TopologyError(
                f"{self.n_stub} stubs exceed the address plan's capacity of "
                f"{_MAX_CUSTOMERS_PER_TRANSIT} customers per transit AS")
        if self.routers_transit < 1 or self.routers_stub < 1:
            raise TopologyError("every domain needs at least one router")
        if self.routers_transit > 254:
            raise TopologyError(
                "a transit AS allocates its routers from sub-block 0 of its "
                "/16; at most 254 fit")
        if self.routers_stub + self.hosts_per_stub > 254:
            raise TopologyError("a stub /24 holds at most 254 routers+hosts")


@dataclass
class GeneratedScaleInternet:
    """The scale generator's output: network plus tier bookkeeping."""

    network: Network
    spec: ScaleSpec
    transit: List[int] = field(default_factory=list)
    stubs: List[int] = field(default_factory=list)
    routers_by_asn: Dict[int, List[str]] = field(default_factory=dict)
    hosts: List[str] = field(default_factory=list)
    #: Per stub ASN: (stub border, provider ASN, provider border).
    uplinks: Dict[int, Tuple[str, int, str]] = field(default_factory=dict)

    def all_asns(self) -> List[int]:
        return self.transit + self.stubs

    def hosts_in(self, asn: int) -> List[str]:
        return sorted(self.network.domains[asn].hosts)

    def as_degree(self, asn: int) -> int:
        """AS-level degree: distinct neighboring ASes."""
        return len(self.network.domains[asn].relationships)


def _transit_prefix(index: int) -> Prefix:
    return Prefix(IPv4Address(_ADDRESS_BASE + (index << 16)), 16)


def _stub_prefix(provider_index: int, customer_index: int) -> Prefix:
    if not 1 <= customer_index <= _MAX_CUSTOMERS_PER_TRANSIT:
        raise TopologyError(
            f"customer index {customer_index} outside 1..255")
    value = _ADDRESS_BASE + (provider_index << 16) + (customer_index << 8)
    return Prefix(IPv4Address(value), 24)


class _PreferentialSampler:
    """Degree-proportional AS sampling (repeated-node list)."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._targets: List[int] = []

    def record_edge(self, a: int, b: int) -> None:
        self._targets.append(a)
        self._targets.append(b)

    def record_endpoint(self, asn: int) -> None:
        self._targets.append(asn)

    def sample(self, exclude: Tuple[int, ...] = ()) -> Optional[int]:
        """One degree-proportional draw avoiding *exclude* (bounded retries)."""
        if not self._targets:
            return None
        for _ in range(32):
            pick = self._targets[self._rng.randrange(len(self._targets))]
            if pick not in exclude:
                return pick
        return None


class _BorderPicker:
    """Round-robins inter-domain link endpoints over a domain's borders."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._next: Dict[int, int] = {}

    def pick(self, asn: int) -> str:
        borders = sorted(self.network.domains[asn].border_routers)
        if not borders:
            raise TopologyError(f"AS{asn} has no border routers")
        index = self._next.get(asn, 0)
        self._next[asn] = index + 1
        return borders[index % len(borders)]


def generate_scale_internet(spec: ScaleSpec) -> GeneratedScaleInternet:
    """Build a power-law internetwork from *spec* (deterministic in the seed)."""
    spec.validate()
    rng = scale_rng(0, spec.seed)
    network = Network()
    result = GeneratedScaleInternet(network=network, spec=spec)
    picker = _BorderPicker(network)
    sampler = _PreferentialSampler(rng)

    _build_transit_core(spec, result, picker, sampler)
    _attach_stubs(spec, result, picker, sampler)
    _install_static_fringe_routes(result)
    return result


def _make_domain(result: GeneratedScaleInternet, asn: int, prefix: Prefix,
                 tier: int, router_count: int, border_count: int,
                 default_routed: bool = False) -> None:
    spec = result.spec
    domain = Domain(asn=asn, name=f"as{asn}", prefix=prefix, tier=tier,
                    default_routed=default_routed)
    result.network.add_domain(domain)
    routers = build_domain_routers(result.network, asn, router_count,
                                   spec.intra_style,
                                   border_count=border_count,
                                   rng=scale_rng(asn, spec.seed))
    result.routers_by_asn[asn] = routers


def _build_transit_core(spec: ScaleSpec, result: GeneratedScaleInternet,
                        picker: _BorderPicker,
                        sampler: _PreferentialSampler) -> None:
    network = result.network
    border_count = max(2, min(spec.routers_transit, 4))
    for index in range(spec.n_transit):
        asn = index + 1
        tier = 1 if index < spec.t1_clique else 2
        _make_domain(result, asn, _transit_prefix(index), tier,
                     spec.routers_transit, border_count)
        result.transit.append(asn)

    clique = result.transit[:spec.t1_clique]
    for i, a in enumerate(clique):
        for b in clique[i + 1:]:
            network.connect_domains(a, b, picker.pick(a), picker.pick(b),
                                    Relationship.PEER, cost=spec.inter_cost)
            sampler.record_edge(a, b)

    # Preferential attachment: each later transit AS buys transit from
    # m_attach distinct, degree-proportionally chosen earlier ASes.
    for asn in result.transit[spec.t1_clique:]:
        providers: List[int] = []
        while len(providers) < spec.m_attach:
            exclude = tuple(providers) + (asn,)
            provider = sampler.sample(exclude=exclude)
            if provider is None:
                # Degenerate sampler state: fall back to the lowest-ASN
                # eligible AS so the graph stays connected.
                eligible = [a for a in result.transit
                            if a < asn and a not in providers]
                if not eligible:
                    break
                provider = eligible[0]
            providers.append(provider)
        for provider in providers:
            network.connect_domains(asn, provider, picker.pick(asn),
                                    picker.pick(provider),
                                    Relationship.PROVIDER,
                                    cost=spec.inter_cost)
            sampler.record_edge(asn, provider)


def _attach_stubs(spec: ScaleSpec, result: GeneratedScaleInternet,
                  picker: _BorderPicker,
                  sampler: _PreferentialSampler) -> None:
    network = result.network
    customer_count: Dict[int, int] = {asn: 0 for asn in result.transit}
    for stub_index in range(spec.n_stub):
        asn = spec.n_transit + stub_index + 1
        provider = _pick_provider(result, sampler, customer_count)
        provider_index = provider - 1
        customer_count[provider] += 1
        prefix = _stub_prefix(provider_index, customer_count[provider])
        _make_domain(result, asn, prefix, 3, spec.routers_stub,
                     border_count=1, default_routed=True)
        result.stubs.append(asn)
        stub_border = picker.pick(asn)
        provider_border = picker.pick(provider)
        network.connect_domains(asn, provider, stub_border, provider_border,
                                Relationship.PROVIDER, cost=spec.inter_cost)
        # Stub degree stays 1; only the provider gains attachment mass.
        sampler.record_endpoint(provider)
        result.uplinks[asn] = (stub_border, provider, provider_border)
        _attach_hosts(result, asn)


def _pick_provider(result: GeneratedScaleInternet,
                   sampler: _PreferentialSampler,
                   customer_count: Dict[int, int]) -> int:
    full = tuple(asn for asn, count in sorted(customer_count.items())
                 if count >= _MAX_CUSTOMERS_PER_TRANSIT)
    provider = sampler.sample(exclude=full)
    if provider is None:
        # All draws hit full providers: take the least-loaded transit AS.
        open_transits = [(count, asn) for asn, count
                         in sorted(customer_count.items())
                         if count < _MAX_CUSTOMERS_PER_TRANSIT]
        if not open_transits:
            raise TopologyError("every transit AS is at customer capacity")
        provider = min(open_transits)[1]
    return provider


def _attach_hosts(result: GeneratedScaleInternet, asn: int) -> None:
    rng = scale_rng(asn, result.spec.seed + 1)
    routers = result.routers_by_asn[asn]
    for index in range(result.spec.hosts_per_stub):
        access = routers[rng.randrange(len(routers))]
        host_id = f"h{asn}n{index}"
        result.network.add_host(host_id, asn, access)
        result.hosts.append(host_id)


def _install_static_fringe_routes(result: GeneratedScaleInternet) -> None:
    """Wire the default-routed fringe with static state.

    Run once, after the full topology exists: every stub router gets a
    static default toward the uplink border, and every provider router
    gets a static route for the customer /24.  ``RouteSource.STATIC``
    outranks BGP and survives ``withdraw_all(RouteSource.BGP)``, so
    reconvergence never strips the fringe.
    """
    network = result.network
    tree_memo: Dict[Tuple[int, str], Dict[str, Tuple[float, Optional[str]]]] = {}

    def tree_toward(asn: int, border: str) -> Dict[str, Tuple[float, Optional[str]]]:
        key = (asn, border)
        if key not in tree_memo:
            tree_memo[key] = network.shortest_path_tree(
                border, intra_domain_only=True, domain=asn)
        return tree_memo[key]

    for stub_asn in result.stubs:
        stub_border, provider_asn, provider_border = result.uplinks[stub_asn]
        stub_domain = network.domains[stub_asn]
        stub_tree = tree_toward(stub_asn, stub_border)
        for router_id in sorted(stub_domain.routers):
            if router_id == stub_border:
                next_hop = provider_border
            else:
                info = stub_tree.get(router_id)
                if info is None or info[1] is None:
                    raise TopologyError(
                        f"stub AS{stub_asn} router {router_id!r} cannot "
                        f"reach its uplink border {stub_border!r}")
                next_hop = info[1]
            network.node(router_id).fib4.install(
                FibEntry(prefix=DEFAULT_ROUTE, next_hop=next_hop,
                         source=RouteSource.STATIC))
        provider_domain = network.domains[provider_asn]
        provider_tree = tree_toward(provider_asn, provider_border)
        for router_id in sorted(provider_domain.routers):
            if router_id == provider_border:
                next_hop = stub_border
            else:
                info = provider_tree.get(router_id)
                if info is None or info[1] is None:
                    continue  # partitioned provider router; IGP-less corner
                next_hop = info[1]
            network.node(router_id).fib4.install(
                FibEntry(prefix=stub_domain.prefix, next_hop=next_hop,
                         source=RouteSource.STATIC))


def spec_for_router_budget(n_routers: int, seed: int = 0) -> ScaleSpec:
    """A :class:`ScaleSpec` sized to roughly *n_routers* total routers.

    Used by the ``--scale-sweep`` bench: ~12% of the router budget goes
    to the BGP-speaking transit core, the rest to default-routed stubs.
    """
    if n_routers < 50:
        raise TopologyError("the scale tier starts at 50 routers; use "
                            "topogen.hierarchy below that")
    routers_transit = 6
    routers_stub = 2
    n_transit = max(4, round(n_routers * 0.12 / routers_transit))
    remaining = n_routers - n_transit * routers_transit
    n_stub = max(1, remaining // routers_stub)
    return ScaleSpec(n_transit=n_transit, n_stub=n_stub,
                     routers_transit=routers_transit,
                     routers_stub=routers_stub, seed=seed)
