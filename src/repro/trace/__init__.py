"""Workload generators."""

from repro.trace.workloads import (all_pairs, client_server, gravity_pairs,
                                   pair_stream, sources_for_probes,
                                   uniform_pairs)

__all__ = ["all_pairs", "client_server", "gravity_pairs", "pair_stream",
           "sources_for_probes", "uniform_pairs"]
