"""Workload generators: traffic matrices and communication patterns.

Experiments need streams of (source host, destination host) demands.
Generators are seeded and deterministic.  Patterns:

* ``uniform_pairs`` — uniform random host pairs (the default matrix);
* ``client_server`` — many clients talking to few servers (the CDN /
  content-provider shape the paper's multicast discussion evokes);
* ``gravity_pairs`` — domain-level gravity model: the probability of a
  pair is proportional to the product of the endpoint domains' host
  counts;
* ``all_pairs`` — the exhaustive matrix for small topologies.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.errors import ReproError
from repro.net.network import Network

Pair = Tuple[str, str]


def _hosts(network: Network) -> List[str]:
    hosts = sorted(n.node_id for n in network.nodes.values() if n.is_host)
    if len(hosts) < 2:
        raise ReproError("workloads need at least two hosts")
    return hosts


def all_pairs(network: Network) -> List[Pair]:
    """Every ordered host pair."""
    hosts = _hosts(network)
    return [(a, b) for a, b in itertools.permutations(hosts, 2)]


def uniform_pairs(network: Network, count: int, seed: int = 0) -> List[Pair]:
    """*count* uniform random ordered pairs (with replacement)."""
    hosts = _hosts(network)
    rng = random.Random(seed)
    pairs: List[Pair] = []
    while len(pairs) < count:
        a, b = rng.sample(hosts, 2)
        pairs.append((a, b))
    return pairs


def client_server(network: Network, count: int, n_servers: int = 2,
                  seed: int = 0) -> List[Pair]:
    """Clients talk to a small set of servers (both directions)."""
    hosts = _hosts(network)
    if n_servers >= len(hosts):
        raise ReproError("need more hosts than servers")
    rng = random.Random(seed)
    servers = rng.sample(hosts, n_servers)
    clients = [h for h in hosts if h not in servers]
    pairs: List[Pair] = []
    while len(pairs) < count:
        client = rng.choice(clients)
        server = rng.choice(servers)
        if rng.random() < 0.5:
            pairs.append((client, server))
        else:
            pairs.append((server, client))
    return pairs


def gravity_pairs(network: Network, count: int, seed: int = 0) -> List[Pair]:
    """Domain-level gravity model over host counts."""
    hosts = _hosts(network)
    rng = random.Random(seed)
    by_domain: Dict[int, List[str]] = {}
    for host in hosts:
        by_domain.setdefault(network.node(host).domain_id, []).append(host)
    domains = sorted(by_domain)
    weights = [len(by_domain[d]) for d in domains]
    pairs: List[Pair] = []
    while len(pairs) < count:
        src_domain, dst_domain = rng.choices(domains, weights=weights, k=2)
        src = rng.choice(by_domain[src_domain])
        dst = rng.choice(by_domain[dst_domain])
        if src != dst:
            pairs.append((src, dst))
    return pairs


def pair_stream(network: Network, pattern: str, count: int,
                seed: int = 0, **kwargs) -> List[Pair]:
    """Dispatch by *pattern* name."""
    if pattern == "uniform":
        return uniform_pairs(network, count, seed=seed)
    if pattern == "client-server":
        return client_server(network, count, seed=seed, **kwargs)
    if pattern == "gravity":
        return gravity_pairs(network, count, seed=seed)
    if pattern == "all":
        return all_pairs(network)[:count]
    raise ReproError(f"unknown workload pattern {pattern!r}")


def sources_for_probes(network: Network, per_domain: int = 1,
                       seed: int = 0) -> List[str]:
    """One-or-more probe sources per domain (hosts preferred, else routers).

    Used by anycast proximity sweeps that want geographic coverage
    rather than traffic realism.
    """
    rng = random.Random(seed)
    sources: List[str] = []
    for asn in sorted(network.domains):
        domain = network.domains[asn]
        candidates = sorted(domain.hosts) or sorted(domain.routers)
        if not candidates:
            continue
        picked = candidates if len(candidates) <= per_domain else rng.sample(
            candidates, per_domain)
        sources.extend(sorted(picked))
    return sources
