"""vN-Bone virtual networks: topology, routing, addressing, egress (Section 3.3)."""

from repro.vnbone.addressing import VnAddressPlan
from repro.vnbone.deployment import VnDeployment, adoption_rng
from repro.vnbone.egress import (EGRESS_AS_HOP_COST, EgressPolicy, HostRegistry,
                                 external_owner_entries)
from repro.vnbone.bgpvn import BgpVnRoute, BgpVnSolver, LayeredVnRouting
from repro.vnbone.mobility import MobilityService, MoveRecord
from repro.vnbone.multicast import (VN_MULTICAST_FLAG, GroupState, McastEntry,
                                    VnMulticastService, enable_multicast,
                                    group_address, is_multicast)
from repro.vnbone.proxy import ProxyAdvertiser
from repro.vnbone.routing import OwnerEntry, VnRouting, make_vn_handler
from repro.vnbone.state import (VnAction, VnFib, VnFibEntry, VnRouterState,
                                native_domain_prefix, vn_prefix_for_ipv4)
from repro.vnbone.topology import VnBoneTopology, VnTunnel

__all__ = ["VnAddressPlan", "VnDeployment", "adoption_rng",
           "EGRESS_AS_HOP_COST", "EgressPolicy",
           "BgpVnRoute", "BgpVnSolver", "LayeredVnRouting", "MobilityService",
           "MoveRecord",
           "VN_MULTICAST_FLAG", "GroupState", "McastEntry", "VnMulticastService",
           "enable_multicast", "group_address", "is_multicast",
           "HostRegistry", "external_owner_entries", "ProxyAdvertiser",
           "OwnerEntry", "VnRouting", "make_vn_handler", "VnAction", "VnFib",
           "VnFibEntry", "VnRouterState", "native_domain_prefix",
           "vn_prefix_for_ipv4", "VnBoneTopology", "VnTunnel"]
