"""IPvN address allocation, self-addressing, and relabeling.

Section 3.3.2 distinguishes two kinds of endhost IPvN addresses:

* **native** addresses, allocated and advertised by an adopting access
  provider out of its IPvN block (here ``asn << 32``, see
  :func:`repro.vnbone.state.native_domain_prefix`);
* **temporary self-assigned** addresses for hosts whose provider has
  not adopted IPvN: one flag bit plus the host's unique IPv(N-1)
  address (RFC 3056-style).

Self-addresses are "very likely temporary and such endhosts will have
to relabel if and when their access providers do adopt IPvN" — the
:class:`VnAddressPlan` performs that relabeling and counts the events,
which experiment F1 uses to show the *anycast* part of the design needs
no endhost reconfiguration at all (relabeling is an addressing matter,
not a redirection one).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.net.address import Prefix, VNAddress
from repro.net.errors import AddressError, DeploymentError
from repro.net.network import Network
from repro.net.node import Host
from repro.vnbone.state import native_domain_prefix


class VnAddressPlan:
    """Tracks IPvN address assignment for one deployment version."""

    def __init__(self, network: Network, version: int = 8) -> None:
        self.network = network
        self.version = version
        self._next_suffix: Dict[int, int] = {}
        self._assigned: Dict[str, VNAddress] = {}
        self._pinned: Set[str] = set()
        self.relabel_events: List[str] = []

    # -- pinning (mobility) -----------------------------------------------------
    def pin_address(self, host_id: str) -> VNAddress:
        """Freeze *host_id*'s current IPvN address across domain moves.

        Mobility's point: the IPvN address is the host's stable
        identity; relabeling rules must not touch it while pinned.
        """
        address = self.ensure_host_address(host_id)
        self._pinned.add(host_id)
        return address

    def unpin_address(self, host_id: str) -> None:
        self._pinned.discard(host_id)

    def is_pinned(self, host_id: str) -> bool:
        return host_id in self._pinned

    # -- native allocation ---------------------------------------------------
    def native_prefix(self, asn: int) -> Prefix:
        return native_domain_prefix(asn, version=self.version)

    def allocate_native(self, asn: int) -> VNAddress:
        """The next native address from AS *asn*'s IPvN block."""
        if asn not in self.network.domains:
            raise DeploymentError(f"unknown domain AS{asn}")
        suffix = self._next_suffix.get(asn, 1)
        if suffix >= (1 << 32):
            raise AddressError(f"AS{asn} exhausted its native IPvN block")
        self._next_suffix[asn] = suffix + 1
        return VNAddress((asn << 32) | suffix, version=self.version)

    # -- host addressing -------------------------------------------------------
    def address_of(self, host_id: str) -> Optional[VNAddress]:
        return self._assigned.get(host_id)

    def ensure_host_address(self, host_id: str) -> VNAddress:
        """Give *host_id* an IPvN address appropriate to its domain.

        Native if the host's domain has adopted IPvN, self-assigned
        otherwise.  Idempotent; existing assignments of the right kind
        are kept.
        """
        host = self._require_host(host_id)
        domain = self.network.domains[host.domain_id]
        adopted = domain.deploys(self.version)
        current = self._assigned.get(host_id)
        if current is not None and host_id in self._pinned:
            return current
        if current is not None:
            if adopted and current.is_self_assigned:
                return self._relabel(host, native=True)
            if not adopted and not current.is_self_assigned:
                return self._relabel(host, native=False)
            return current
        return self._assign(host, native=adopted)

    def _assign(self, host: Host, native: bool) -> VNAddress:
        if native:
            address = self.allocate_native(host.domain_id)
        else:
            address = VNAddress.self_assigned(host.ipv4, version=self.version)
        host.assign_vn_address(address)
        self._assigned[host.node_id] = address
        return address

    def _relabel(self, host: Host, native: bool) -> VNAddress:
        self.relabel_events.append(host.node_id)
        return self._assign(host, native=native)

    def relabel_domain(self, asn: int) -> int:
        """Re-address every assigned host of a domain that just adopted
        (or un-adopted) IPvN.  Returns the number of relabel events."""
        before = len(self.relabel_events)
        for host_id in sorted(self.network.domains[asn].hosts):
            if host_id in self._assigned:
                self.ensure_host_address(host_id)
        return len(self.relabel_events) - before

    def assigned_hosts(self) -> Set[str]:
        return set(self._assigned)

    def _require_host(self, host_id: str) -> Host:
        node = self.network.node(host_id)
        if not isinstance(node, Host):
            raise DeploymentError(f"{host_id!r} is not a host")
        return node
