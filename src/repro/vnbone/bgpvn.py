"""BGPvN: layered inter-domain routing over the vN-Bone (Section 3.3.2).

The paper assumes "the existence of separate intra and inter-domain
IPvN routing protocols", calling the latter BGPvN ("even though BGPvN
need not strictly resemble today's BGP").  The default
:class:`~repro.vnbone.routing.VnRouting` flattens the vN-Bone into one
link-state graph; this module implements the *layered* alternative the
paper describes:

* **intra-domain**: shortest paths over each adopting domain's intra
  tunnels (IGPvN);
* **inter-domain**: a path-vector protocol between adopting domains,
  with sessions along inter-domain tunnels.  Originations are exactly
  the advertisements the paper lists: each domain's native prefix, the
  host routes it serves, and — for advertising-by-proxy — external
  IPv(N-1) destination blocks with the advertiser's distance carried as
  a metric.

Selection order is (AS-path length, metric, origin ASN): path-vector
first, so routing is provably loop-free at the domain level; the metric
realizes Figure 4's "advertise their distance to Z".  The solver is a
deterministic synchronous iteration to fixpoint rather than a
message-driven engine — the adopters cooperate (the paper's design
space here is unconstrained), so there is no policy oscillation to
model.

Select the mode with ``VnDeployment(..., routing_mode="layered")``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import Prefix
from repro.net.errors import ConvergenceError, RoutingError
from repro.obs import get_obs
from repro.perf.cache import caching_enabled
from repro.vnbone.routing import (AdjacencySignature, OwnerEntry,
                                  adjacency_signature)
from repro.vnbone.state import VnAction, VnFibEntry, VnRouterState
from repro.vnbone.topology import VnTunnel


@dataclass(frozen=True)
class BgpVnRoute:
    """One BGPvN route as held by an adopting domain."""

    prefix: Prefix
    as_path: Tuple[int, ...]
    metric: float
    #: The originating domain's entry describing final disposition.
    entry: OwnerEntry

    @property
    def origin_asn(self) -> int:
        return self.as_path[-1]

    def selection_key(self) -> Tuple[int, float, int]:
        return (len(self.as_path), self.metric, self.origin_asn)

    def prepended(self, asn: int) -> "BgpVnRoute":
        return BgpVnRoute(prefix=self.prefix, as_path=(asn,) + self.as_path,
                          metric=self.metric, entry=self.entry)

    def contains(self, asn: int) -> bool:
        return asn in self.as_path


class BgpVnSolver:
    """Synchronous path-vector fixpoint over the vn-domain graph."""

    def __init__(self, adjacency: Dict[int, Set[int]],
                 originations: Dict[int, List[BgpVnRoute]],
                 max_rounds: int = 200) -> None:
        self.adjacency = adjacency
        self.max_rounds = max_rounds
        self.loc_rib: Dict[int, Dict[Prefix, BgpVnRoute]] = {
            asn: {} for asn in adjacency}
        for asn, routes in originations.items():
            for route in routes:
                current = self.loc_rib[asn].get(route.prefix)
                if current is None or route.selection_key() < current.selection_key():
                    self.loc_rib[asn][route.prefix] = route

    def converge(self) -> None:
        for _ in range(self.max_rounds):
            changed = False
            for asn in sorted(self.adjacency):
                for neighbor in sorted(self.adjacency[asn]):
                    for prefix, route in sorted(self.loc_rib[neighbor].items(),
                                                key=lambda kv: str(kv[0])):
                        if route.contains(asn):
                            continue
                        candidate = route.prepended(asn)
                        current = self.loc_rib[asn].get(prefix)
                        if (current is None
                                or candidate.selection_key()
                                < current.selection_key()):
                            self.loc_rib[asn][prefix] = candidate
                            changed = True
            if not changed:
                return
        raise ConvergenceError("BGPvN did not reach a fixpoint")

    def routes_of(self, asn: int) -> Dict[Prefix, BgpVnRoute]:
        return dict(self.loc_rib.get(asn, {}))


class LayeredVnRouting:
    """Intra-domain SPF + BGPvN, installing the same VnFib interface."""

    def __init__(self, network, version: int) -> None:
        self.network = network
        self.version = version
        self.obs = get_obs()
        self._intra_dist: Dict[str, Dict[str, float]] = {}
        self._intra_hop: Dict[str, Dict[str, str]] = {}
        self._solver: Optional[BgpVnSolver] = None
        self._domain_of: Dict[str, int] = {}
        #: asn -> (signature, per-member dists, per-member first hops);
        #: unchanged intra tunnel graphs reuse their SPF sweep verbatim.
        self._intra_cache: Dict[int, Tuple[AdjacencySignature,
                                           Dict[str, Dict[str, float]],
                                           Dict[str, Dict[str, str]]]] = {}
        self.spf_cache_enabled = caching_enabled()

    # -- intra-domain SPF --------------------------------------------------------
    def _intra_spf(self, members: Set[str],
                   adjacency: Dict[str, Dict[str, float]]
                   ) -> Tuple[Dict[str, Dict[str, float]],
                              Dict[str, Dict[str, str]]]:
        dists: Dict[str, Dict[str, float]] = {}
        hops: Dict[str, Dict[str, str]] = {}
        # Edge lists sorted once per sweep, not once per heap pop.
        sorted_adjacency = {member: sorted(edges.items())
                            for member, edges in adjacency.items()}
        for source in sorted(members):
            if self.obs.enabled:
                self.obs.counter("perf.dijkstra_runs").inc()
            dist: Dict[str, float] = {source: 0.0}
            first: Dict[str, str] = {}
            heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
            settled: Set[str] = set()
            while heap:
                d, u, hop = heapq.heappop(heap)
                if u in settled:
                    continue
                settled.add(u)
                dist[u] = d
                if hop is not None:
                    first[u] = hop
                for v, cost in sorted_adjacency.get(u, ()):
                    if v in settled:
                        continue
                    heapq.heappush(heap, (d + cost, v, v if hop is None else hop))
            dists[source] = {n: dist[n] for n in sorted(settled)}
            hops[source] = first
        return dists, hops

    # -- the full computation ---------------------------------------------------------
    def compute(self, states: Dict[str, VnRouterState],
                owner_entries: List[OwnerEntry],
                tunnels: List[VnTunnel]) -> None:
        self._domain_of = {rid: self.network.node(rid).domain_id
                           for rid in states}
        members_by_domain: Dict[int, Set[str]] = {}
        for rid, asn in self._domain_of.items():
            members_by_domain.setdefault(asn, set()).add(rid)
        # Split tunnels into intra adjacency and inter-domain sessions.
        intra_adj: Dict[int, Dict[str, Dict[str, float]]] = {
            asn: {m: {} for m in members} for asn, members in
            members_by_domain.items()}
        #: (asn_a, asn_b) -> list of (border_a, border_b, cost)
        sessions: Dict[Tuple[int, int], List[Tuple[str, str, float]]] = {}
        for tunnel in tunnels:
            if tunnel.a not in states or tunnel.b not in states:
                continue
            asn_a, asn_b = self._domain_of[tunnel.a], self._domain_of[tunnel.b]
            if asn_a == asn_b:
                adj = intra_adj[asn_a]
                adj[tunnel.a][tunnel.b] = min(
                    tunnel.cost, adj[tunnel.a].get(tunnel.b, float("inf")))
                adj[tunnel.b][tunnel.a] = adj[tunnel.a][tunnel.b]
            else:
                key = (min(asn_a, asn_b), max(asn_a, asn_b))
                local, remote = ((tunnel.a, tunnel.b) if asn_a <= asn_b
                                 else (tunnel.b, tunnel.a))
                sessions.setdefault(key, []).append((local, remote,
                                                     tunnel.cost))
        self._intra_dist.clear()
        self._intra_hop.clear()
        for asn, members in members_by_domain.items():
            signature = adjacency_signature(intra_adj[asn])
            cached = (self._intra_cache.get(asn)
                      if self.spf_cache_enabled else None)
            if cached is not None and cached[0] == signature:
                _, dists, hops = cached
                if self.obs.enabled:
                    self.obs.counter("vnbone.spf_cache_hits").inc()
            else:
                dists, hops = self._intra_spf(members, intra_adj[asn])
                if self.spf_cache_enabled:
                    self._intra_cache[asn] = (signature, dists, hops)
            self._intra_dist.update(dists)
            self._intra_hop.update(hops)
        # BGPvN: originations from owner entries, grouped by owner domain.
        adjacency: Dict[int, Set[int]] = {asn: set() for asn in members_by_domain}
        for (a, b) in sessions:
            adjacency[a].add(b)
            adjacency[b].add(a)
        originations: Dict[int, List[BgpVnRoute]] = {
            asn: [] for asn in members_by_domain}
        for entry in owner_entries:
            asn = self._domain_of.get(entry.owner)
            if asn is None:
                continue
            originations[asn].append(BgpVnRoute(
                prefix=entry.prefix, as_path=(asn,),
                metric=entry.advertised_cost, entry=entry))
        self._solver = BgpVnSolver(adjacency, originations)
        self._solver.converge()
        # FIB installation.
        by_owner_domain: Dict[Tuple[Prefix, int], List[OwnerEntry]] = {}
        for entry in owner_entries:
            asn = self._domain_of.get(entry.owner)
            if asn is not None:
                by_owner_domain.setdefault((entry.prefix, asn), []).append(entry)
        for asn in sorted(members_by_domain):
            self._install_domain(asn, members_by_domain[asn], sessions,
                                 by_owner_domain, states)

    def _session_borders(self, asn: int, next_asn: int,
                         sessions) -> List[Tuple[str, str, float]]:
        key = (min(asn, next_asn), max(asn, next_asn))
        triples = sessions.get(key, [])
        if asn <= next_asn:
            return triples
        return [(remote, local, cost) for local, remote, cost in triples]

    def _install_domain(self, asn: int, members: Set[str], sessions,
                        by_owner_domain, states: Dict[str, VnRouterState]) -> None:
        assert self._solver is not None
        routes = self._solver.routes_of(asn)
        for member in sorted(members):
            state = states[member]
            state.fib.clear()
            dist = self._intra_dist.get(member, {})
            hops = self._intra_hop.get(member, {})
            for prefix, route in sorted(routes.items(), key=lambda kv: str(kv[0])):
                if route.origin_asn == asn:
                    self._install_local(member, state, prefix, asn,
                                        by_owner_domain, dist, hops)
                else:
                    next_asn = route.as_path[1]
                    self._install_transit(member, state, prefix, asn,
                                          next_asn, sessions, dist, hops)

    def _install_local(self, member: str, state: VnRouterState, prefix: Prefix,
                       asn: int, by_owner_domain, dist, hops) -> None:
        entries = by_owner_domain.get((prefix, asn), [])
        best: Optional[Tuple[float, str, OwnerEntry]] = None
        for entry in sorted(entries, key=lambda e: e.owner):
            if entry.owner == member:
                total = entry.advertised_cost
            elif entry.owner in dist:
                total = dist[entry.owner] + entry.advertised_cost
            else:
                continue
            if best is None or (total, entry.owner) < best[:2]:
                best = (total, entry.owner, entry)
        if best is None:
            return
        total, owner, entry = best
        if owner == member:
            state.fib.install(VnFibEntry(prefix=prefix, action=entry.action,
                                         egress_ipv4=entry.egress_ipv4,
                                         metric=total, origin=entry.origin))
        else:
            state.fib.install(VnFibEntry(prefix=prefix, action=VnAction.FORWARD,
                                         next_hop=hops[owner], metric=total,
                                         origin=entry.origin))

    def _install_transit(self, member: str, state: VnRouterState,
                         prefix: Prefix, asn: int, next_asn: int, sessions,
                         dist, hops) -> None:
        borders = self._session_borders(asn, next_asn, sessions)
        best: Optional[Tuple[float, str, str]] = None
        for local, remote, tunnel_cost in sorted(borders):
            if local == member:
                candidate = (tunnel_cost, local, remote)
            elif local in dist:
                candidate = (dist[local] + tunnel_cost, local, remote)
            else:
                continue
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return
        cost, local, remote = best
        if local == member:
            next_hop = remote  # cross the inter-domain tunnel
        else:
            next_hop = hops[local]  # head for our border first
        state.fib.install(VnFibEntry(prefix=prefix, action=VnAction.FORWARD,
                                     next_hop=next_hop, metric=cost,
                                     origin="bgpvn"))

    # -- inspection (interface-compatible subset of VnRouting) ---------------------------
    def reachable_members(self, member: str) -> Set[str]:
        """Members reachable from *member*: its domain plus every domain
        BGPvN has a route through (approximation at domain granularity)."""
        if self._solver is None:
            return set()
        asn = self._domain_of.get(member)
        if asn is None:
            return set()
        reachable_domains = {asn}
        for route in self._solver.routes_of(asn).values():
            reachable_domains.add(route.origin_asn)
        return {rid for rid, domain in self._domain_of.items()
                if domain in reachable_domains}

    def domain_route(self, asn: int, prefix: Prefix) -> Optional[BgpVnRoute]:
        if self._solver is None:
            raise RoutingError("compute() has not run yet")
        return self._solver.routes_of(asn).get(prefix)

    def distance(self, a: str, b: str) -> Optional[float]:
        """Intra-domain distances only; inter-domain is path-vector."""
        return self._intra_dist.get(a, {}).get(b)

    def path(self, a: str, b: str) -> Optional[List[str]]:
        raise RoutingError("layered BGPvN mode does not expose member-level "
                           "paths; use the global-spf routing mode")
