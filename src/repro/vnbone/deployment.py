"""One IPvN deployment: the facade tying every mechanism together.

:class:`VnDeployment` is what an experiment drives: it owns the anycast
group for one IPvN generation, the address plan, the vN-Bone topology
and routing, and the host send path.  The lifecycle mirrors the paper's
story:

1. ISPs adopt (:meth:`deploy`) — possibly on a subset of their routers
   (assumption A1).  Their IPvN routers join the anycast group and
   receive native IPvN addresses; the domain's hosts are (re)labeled.
2. :meth:`rebuild` reconverges the IPv(N-1) control planes, constructs
   the vN-Bone, and computes IPvN routes, including egress selection
   for destinations in non-adopting domains.
3. Hosts communicate (:meth:`send`): the source encapsulates its IPvN
   packet in IPv4 addressed to the deployment's anycast address;
   anycast redirection finds the nearest IPvN router; the vN-Bone
   carries it; the egress exits towards the destination.

Universal access is the invariant: :meth:`send` works for *any* pair of
IPvN-aware hosts at any nonzero deployment, with zero per-host
configuration beyond the well-known anycast address.
"""

from __future__ import annotations

import itertools
import math
import random
import time
from typing import Dict, List, Optional, Set

from repro.net.errors import DeploymentError
from repro.net.forwarding import ForwardingTrace
from repro.net.node import Host
from repro.net.packet import IPv4Header, vn_packet
from repro.core.orchestrator import Orchestrator
from repro.anycast.service import AnycastScheme
from repro.vnbone.addressing import VnAddressPlan
from repro.vnbone.egress import (EgressPolicy, HostRegistry,
                                 external_owner_entries)
from repro.vnbone.proxy import ProxyAdvertiser
from repro.vnbone.routing import OwnerEntry, VnRouting, make_vn_handler
from repro.vnbone.state import VnAction, VnRouterState
from repro.vnbone.topology import VnBoneTopology, VnTunnel


#: Knuth's multiplicative-hash constant: spreads consecutive ASNs into
#: well-separated seeds for per-AS adoption sampling.
_ADOPTION_SEED_SALT = 2_654_435_761


def adoption_rng(asn: int, seed: int = 0) -> random.Random:
    """The canonical seeded RNG for AS *asn*'s fractional (A1) adoption.

    Every fractional :meth:`VnDeployment.deploy` call site threads one
    of these explicitly — there is no implicit fallback — so which
    routers upgrade is a pure function of ``(asn, seed)`` and the
    determinism linter's D1 rule holds across the tree.
    """
    return random.Random(asn * _ADOPTION_SEED_SALT + seed)


class VnDeployment:
    """A (possibly partial) deployment of one next-generation IP."""

    def __init__(self, orchestrator: Orchestrator, scheme: AnycastScheme,
                 version: int = 8, k_neighbors: int = 2,
                 egress_policy: EgressPolicy = EgressPolicy.BGP_INFORMED,
                 proxy_threshold: int = 1, fallback_exit: bool = True,
                 routing_mode: str = "global-spf") -> None:
        self.orchestrator = orchestrator
        self.network = orchestrator.network
        self.scheme = scheme
        self.version = version
        self.egress_policy = egress_policy
        self.plan = VnAddressPlan(self.network, version=version)
        anchor = getattr(scheme, "default_asn", None)
        self.topology = VnBoneTopology(orchestrator, version,
                                       k_neighbors=k_neighbors, anchor_asn=anchor)
        if routing_mode == "global-spf":
            self.routing = VnRouting(self.network, version)
        elif routing_mode == "layered":
            from repro.vnbone.bgpvn import LayeredVnRouting

            self.routing = LayeredVnRouting(self.network, version)
        else:
            raise DeploymentError(
                f"unknown routing_mode {routing_mode!r}; "
                "choose 'global-spf' or 'layered'")
        self.routing_mode = routing_mode
        self.proxy = ProxyAdvertiser(self.network, orchestrator.bgp, version,
                                     threshold=proxy_threshold)
        self.host_registry = HostRegistry(version)
        self.states: Dict[str, VnRouterState] = {}
        self.tunnels: List[VnTunnel] = []
        self._join_order: Dict[str, int] = {}
        self._join_counter = itertools.count(1)
        self._dirty = True
        orchestrator.engine.register_vn_handler(
            version, make_vn_handler(version, fallback_exit=fallback_exit))

    # -- adoption lifecycle -------------------------------------------------------
    def deploy(self, asn: int, router_ids: Optional[Set[str]] = None,
               fraction: Optional[float] = None,
               rng: Optional[random.Random] = None) -> Set[str]:
        """Have AS *asn* adopt IPvN on some of its routers.

        With neither ``router_ids`` nor ``fraction`` the whole domain
        upgrades; ``fraction`` picks a pseudo-random subset (at least
        one router) — assumption A1's partial intra-ISP deployment —
        drawn from *rng*, which fractional callers must supply
        explicitly (:func:`adoption_rng` is the canonical choice).
        """
        if asn not in self.network.domains:
            raise DeploymentError(f"unknown domain AS{asn}")
        domain = self.network.domains[asn]
        available = sorted(domain.routers)
        if not available:
            raise DeploymentError(f"AS{asn} has no routers to upgrade")
        if router_ids is not None:
            chosen = set(router_ids)
        elif fraction is not None:
            if not 0.0 < fraction <= 1.0:
                raise DeploymentError(f"fraction must be in (0, 1], got {fraction}")
            if rng is None:
                raise DeploymentError(
                    "fractional deployment needs an explicit seeded rng "
                    "(e.g. rng=adoption_rng(asn)); the implicit per-AS "
                    "fallback was removed so all randomness is threaded")
            count = max(1, math.ceil(fraction * len(available)))
            chosen = set(rng.sample(available, count))
        else:
            chosen = set(available)
        domain.deploy_version(self.version, chosen)
        for router_id in sorted(chosen):
            self._make_member(router_id, asn)
        self.plan.relabel_domain(asn)
        self._dirty = True
        # New members accept the anycast address immediately: cached
        # flow-level walks to it are stale.
        self.orchestrator.engine.fastpath.bump()
        return chosen

    def _make_member(self, router_id: str, asn: int) -> None:
        if router_id in self.states:
            return
        node = self.network.node(router_id)
        state = VnRouterState(version=self.version, router_id=router_id,
                              vn_address=self.plan.allocate_native(asn))
        node.set_vn_state(self.version, state)
        self.states[router_id] = state
        self._join_order[router_id] = next(self._join_counter)
        self.scheme.add_member(router_id)

    def expand(self, asn: int, router_ids: Set[str]) -> None:
        """Upgrade additional routers of an already-adopting AS."""
        if not self.network.domains[asn].deploys(self.version):
            raise DeploymentError(f"AS{asn} has not adopted IPv{self.version} yet")
        self.network.domains[asn].deploy_version(self.version, set(router_ids))
        for router_id in sorted(router_ids):
            self._make_member(router_id, asn)
        self._dirty = True
        self.orchestrator.engine.fastpath.bump()

    def undeploy(self, asn: int) -> None:
        """Roll IPvN back in AS *asn* (churn experiments)."""
        domain = self.network.domains[asn]
        for router_id in sorted(domain.vn_router_ids(self.version)):
            self.scheme.remove_member(router_id)
            node = self.network.node(router_id)
            node.clear_vn_state(self.version)
            self.states.pop(router_id, None)
            self._join_order.pop(router_id, None)
        domain.undeploy_version(self.version)
        self.plan.relabel_domain(asn)
        self._dirty = True
        self.orchestrator.engine.fastpath.bump()

    # -- control-plane rebuild ---------------------------------------------------------
    def rebuild(self) -> None:
        """Reconverge everything after adoption (or liveness) changes."""
        obs = self.orchestrator.obs
        observed = obs.enabled
        if observed:
            wall_t0 = time.perf_counter()
        # The nested orchestrator.reconverge span (the BGP-resync drain)
        # runs under this one, which is how the offline critical-path
        # report separates resync time from vN-Bone rebuild time.
        span = obs.span("vnbone.rebuild", t=self.orchestrator.scheduler.now,
                        version=self.version).start()
        ctx = span.context
        if ctx is not None:
            obs.push_span_context(ctx)
        try:
            self.orchestrator.reconverge()
        finally:
            if ctx is not None:
                obs.pop_span_context()
        self.scheme.post_converge_install()
        # Crashed members cannot terminate tunnels or own prefixes; the
        # vN-Bone is rebuilt over the survivors so that delivery fails
        # over exactly as the paper's anycast argument promises.
        live = self.live_members()
        members_by_domain = {
            asn: members & live
            for asn, members in self.members_by_domain().items()}
        members_by_domain = {asn: members
                             for asn, members in members_by_domain.items()
                             if members}
        self.tunnels = self.topology.build(members_by_domain, self._join_order)
        for state in self.states.values():
            state.neighbors.clear()
            state.is_vn_border = False
        for tunnel in self.tunnels:
            state_a = self.states.get(tunnel.a)
            state_b = self.states.get(tunnel.b)
            if state_a is None or state_b is None:
                continue
            state_a.add_neighbor(tunnel.b, tunnel.cost)
            state_b.add_neighbor(tunnel.a, tunnel.cost)
            if (self.network.node(tunnel.a).domain_id
                    != self.network.node(tunnel.b).domain_id):
                state_a.is_vn_border = True
                state_b.is_vn_border = True
        entries = self._owner_entries(members_by_domain)
        if self.routing_mode == "layered":
            self.routing.compute(self.states, entries, self.tunnels)
        else:
            self.routing.compute(self.states, entries)
        self._dirty = False
        # Acceptance sets and vN routing changed after reconverge()'s
        # bump: drop cached flow-level walks once more.
        self.orchestrator.engine.fastpath.bump()
        span.end(t=self.orchestrator.scheduler.now, members=len(live),
                 tunnels=len(self.tunnels))
        if observed:
            wall_ms = (time.perf_counter() - wall_t0) * 1000.0
            obs.counter("vnbone.rebuilds").inc()
            obs.histogram("vnbone.rebuild_wall_ms").observe(wall_ms)
            obs.event("vnbone.rebuild",
                      t=self.orchestrator.scheduler.now,
                      version=self.version, members=len(live),
                      domains=len(members_by_domain),
                      tunnels=len(self.tunnels), wall_ms=wall_ms)

    def _owner_entries(self, members_by_domain: Dict[int, Set[str]]
                       ) -> List[OwnerEntry]:
        entries: List[OwnerEntry] = []
        live = self.live_members()
        # Members' own IPvN addresses.
        for router_id in sorted(live):
            state = self.states[router_id]
            entries.append(OwnerEntry(
                prefix=self._host_prefix(state.vn_address), owner=router_id,
                action=VnAction.LOCAL, origin="intra"))
        # Native host addresses, owned by the member nearest the host.
        for asn in sorted(members_by_domain):
            members = members_by_domain[asn]
            for host_id in sorted(self.network.domains[asn].hosts):
                address = self.plan.ensure_host_address(host_id)
                host = self.network.node(host_id)
                assert isinstance(host, Host)
                owner = self._nearest_member(host.access_router, asn, members)
                if owner is None:
                    continue
                entries.append(OwnerEntry(
                    prefix=self._host_prefix(address), owner=owner,
                    action=VnAction.EGRESS, egress_ipv4=host.ipv4,
                    origin="host"))
        # External (non-adopting) destination domains.
        adopting = set(members_by_domain)
        members = sorted(live)
        if self.egress_policy is EgressPolicy.PROXY:
            entries.extend(self.proxy.owner_entries(members, adopting))
        else:
            entries.extend(external_owner_entries(
                self.network, self.orchestrator.bgp, self.version, members,
                self.egress_policy, adopting))
        # Host-registry advertisements serve two callers: the rejected
        # HOST_ADVERTISED egress design, and mobility (a moved host's
        # pinned address advertised from its new attachment).
        entries.extend(self.host_registry.owner_entries(
            self.network, live))
        return entries

    @staticmethod
    def _host_prefix(address):
        from repro.net.address import Prefix

        return Prefix.host(address)

    def _nearest_member(self, target_id: str, asn: int,
                        members: Set[str]) -> Optional[str]:
        if target_id in members:
            return target_id
        best = None
        for member in sorted(members):
            cost = self.topology.member_distance(member, target_id, asn)
            if cost is None:
                continue
            if best is None or (cost, member) < best:
                best = (cost, member)
        return best[1] if best else None

    # -- host data path --------------------------------------------------------------------
    def send(self, src_host_id: str, dst_host_id: str, payload: object = None,
             ttl: int = 64) -> ForwardingTrace:
        """Send an IPvN packet between two IPvN-aware hosts.

        The host stack does exactly what Section 3.1 prescribes:
        encapsulate the IPvN packet in IPv4 addressed to the well-known
        anycast address.  No other host configuration exists.
        """
        if self._dirty:
            self.rebuild()
        src = self._require_host(src_host_id)
        self._require_host(dst_host_id)
        src_addr = self.plan.ensure_host_address(src_host_id)
        dst_addr = self.plan.ensure_host_address(dst_host_id)
        packet = vn_packet(src_addr, dst_addr, payload=payload, ttl=ttl)
        packet.encapsulate(IPv4Header(src=src.ipv4, dst=self.scheme.address))
        return self.orchestrator.forward(packet, src_host_id)

    def register_host(self, host_id: str) -> Optional[str]:
        """HOST_ADVERTISED egress: the host anycasts for a nearby IPvN
        router and has it advertise the host's temporary address."""
        if self._dirty:
            self.rebuild()
        self.plan.ensure_host_address(host_id)
        member = self.scheme.resolve(host_id)
        if member is None:
            return None
        self.host_registry.register(host_id, member)
        self._dirty = True
        return member

    def _require_host(self, host_id: str) -> Host:
        node = self.network.node(host_id)
        if not isinstance(node, Host):
            raise DeploymentError(f"{host_id!r} is not a host")
        return node

    # -- inspection ----------------------------------------------------------------------------
    def members(self) -> Set[str]:
        return set(self.states)

    def live_members(self) -> Set[str]:
        """Members whose router is currently up (fault injection)."""
        return {rid for rid in self.states if self.network.node(rid).up}

    def members_by_domain(self) -> Dict[int, Set[str]]:
        result: Dict[int, Set[str]] = {}
        for asn, domain in self.network.domains.items():
            members = domain.vn_router_ids(self.version)
            if members:
                result[asn] = members
        return result

    def adopting_asns(self) -> Set[int]:
        return set(self.members_by_domain())

    def state_of(self, router_id: str) -> VnRouterState:
        try:
            return self.states[router_id]
        except KeyError:
            raise DeploymentError(
                f"{router_id!r} is not an IPv{self.version} router") from None

    def vn_fib_sizes(self) -> Dict[str, int]:
        return {rid: state.fib.route_count()
                for rid, state in sorted(self.states.items())}

    @property
    def needs_rebuild(self) -> bool:
        return self._dirty
