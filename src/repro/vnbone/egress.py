"""Egress selection for destinations outside the vN-Bone (Section 3.3.2).

When the destination's domain has not adopted IPvN, the destination
holds only a temporary self-assigned address that nobody advertises.
The paper examines several ways to pick the router where the packet
should *leave* the vN-Bone:

* ``EXIT_IMMEDIATELY`` — the "simplest option": the first IPvN router
  with no route exits towards the destination's IPv(N-1) address.
  This "fails to fully exploit IPvN deployment" (Figure 3's critique).
* ``BGP_INFORMED`` — the paper's preferred mechanism: IPvN border
  routers acquire BGPv(N-1) tables from their domain's IPv(N-1) border
  routers, so the vN-Bone can carry the packet to the member whose
  domain is *closest in IPv(N-1) terms* to the destination's domain,
  and exit there (Figure 3's improved path through Y).
* ``HOST_ADVERTISED`` — the rejected anycast-based design where the
  *endhost* locates a nearby IPvN router and has it advertise the
  host's temporary address.  Implemented for comparison; the paper
  keeps it on the table "in the case of IPvNs where [its] issues turn
  out to not be problematic".
* ``PROXY`` — advertising-by-proxy (Figure 4), implemented in
  :mod:`repro.vnbone.proxy` on top of the same machinery.

Selection is realized by *advertising* external-domain prefixes into
vN-Bone routing (as :class:`~repro.vnbone.routing.OwnerEntry` items)
with an advertised cost dominated by the IPv(N-1) AS-path length; the
vN-Bone distance breaks ties, so "exit as close to the destination as
possible, then prefer the nearest such exit".
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional, Set

from repro.net.address import Prefix
from repro.net.network import Network
from repro.bgp.protocol import BgpProtocol
from repro.vnbone.state import VnAction, vn_prefix_for_ipv4
from repro.vnbone.routing import OwnerEntry

#: One IPv(N-1) AS hop dwarfs any intra-vN-Bone distance, making AS-path
#: length the primary selection key and vN distance the tie-break.
EGRESS_AS_HOP_COST = 10_000.0


class EgressPolicy(Enum):
    EXIT_IMMEDIATELY = "exit-immediately"
    BGP_INFORMED = "bgp-informed"
    PROXY = "proxy"
    HOST_ADVERTISED = "host-advertised"


def external_owner_entries(network: Network, bgp: BgpProtocol, version: int,
                           members: Iterable[str], policy: EgressPolicy,
                           adopting_asns: Set[int],
                           proxy_threshold: int = 1) -> List[OwnerEntry]:
    """Advertisements for the self-addressed blocks of non-IPvN domains.

    For ``BGP_INFORMED``, every member advertises every external domain
    at a cost proportional to its own domain's IPv(N-1) AS-path length
    to it.  For ``PROXY``, only members within ``proxy_threshold`` AS
    hops advertise (Figure 4: B and C advertise their distance to Z);
    other destinations are left to the exit-immediately fallback.
    ``EXIT_IMMEDIATELY`` and ``HOST_ADVERTISED`` advertise nothing here.
    """
    if policy in (EgressPolicy.EXIT_IMMEDIATELY, EgressPolicy.HOST_ADVERTISED):
        return []
    member_list = sorted(set(members))
    entries: List[OwnerEntry] = []
    origin = "egress-select" if policy is EgressPolicy.BGP_INFORMED else "proxy"
    for asn in sorted(network.domains):
        if asn in adopting_asns:
            continue  # natively routed; not an external destination
        domain_prefix = network.domains[asn].prefix
        vn_prefix = vn_prefix_for_ipv4(domain_prefix, version=version)
        for member in member_list:
            member_asn = network.node(member).domain_id
            hops = _as_path_hops(bgp, member_asn, domain_prefix)
            if hops is None:
                continue  # this member's domain cannot reach the destination
            if policy is EgressPolicy.PROXY and hops > proxy_threshold:
                continue
            entries.append(OwnerEntry(prefix=vn_prefix, owner=member,
                                      action=VnAction.EGRESS, egress_ipv4=None,
                                      advertised_cost=hops * EGRESS_AS_HOP_COST,
                                      origin=origin))
    return entries


def _as_path_hops(bgp: BgpProtocol, from_asn: int,
                  prefix: Prefix) -> Optional[int]:
    """IPv(N-1) AS-path length from *from_asn* to *prefix* (0 if local)."""
    domain = bgp.network.domains[from_asn]
    if domain.prefix == prefix:
        return 0
    route = bgp.speaker(from_asn).best_route(prefix)
    if route is None:
        return None
    return route.path_length


class HostRegistry:
    """State for the ``HOST_ADVERTISED`` design (the rejected option).

    Hosts in non-IPvN domains use anycast to locate a nearby IPvN
    router and have it advertise their temporary address into vN-Bone
    routing.  The registry records (host, advertising member) pairs;
    :meth:`owner_entries` turns them into advertisements.  Staleness —
    the fate-sharing concern the paper raises — is modeled by keeping
    the advertising member fixed until the host re-registers.
    """

    def __init__(self, version: int) -> None:
        self.version = version
        self._registrations: Dict[str, str] = {}

    def register(self, host_id: str, member_id: str) -> None:
        self._registrations[host_id] = member_id

    def deregister(self, host_id: str) -> None:
        self._registrations.pop(host_id, None)

    def advertiser_of(self, host_id: str) -> Optional[str]:
        return self._registrations.get(host_id)

    @property
    def registered_hosts(self) -> Set[str]:
        return set(self._registrations)

    def owner_entries(self, network: Network,
                      live_members: Set[str]) -> List[OwnerEntry]:
        entries: List[OwnerEntry] = []
        for host_id in sorted(self._registrations):
            member = self._registrations[host_id]
            if member not in live_members:
                continue  # fate-sharing: advertisement died with the router
            host = network.node(host_id)
            address = getattr(host, "vn_addresses", {}).get(self.version)
            if address is None:
                continue
            entries.append(OwnerEntry(prefix=Prefix.host(address), owner=member,
                                      action=VnAction.EGRESS,
                                      egress_ipv4=host.ipv4,
                                      advertised_cost=0.0,
                                      origin="host-advertised"))
        return entries
