"""Host mobility over an IPvN: stable identity above a changing locator.

Mobility is one of the architectural pressures the paper's introduction
cites ([7]).  An IPvN deployed through the evolvability framework can
offer it with the pieces already on the table:

* the host's IPvN address is its stable identity — :meth:`MobilityService.
  enable` pins it so relabeling rules leave it alone;
* on a move, the host physically re-homes (new provider, new
  IPv(N-1) locator — plain IPv4 reachability to the old address dies,
  which is exactly the problem), anycasts for a nearby IPvN router,
  and has it advertise the pinned address from the new attachment —
  the same host-advertisement machinery Section 3.3.2 describes,
  turned from a rejected *default* into mobility's *registration*;
* correspondents keep sending to the same IPvN address throughout;
  after the registration converges, the vN-Bone steers their packets
  to the new location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.address import IPv4Address, VNAddress
from repro.net.errors import DeploymentError
from repro.vnbone.deployment import VnDeployment


@dataclass
class MoveRecord:
    """Bookkeeping for one completed move."""

    host_id: str
    old_asn: int
    new_asn: int
    old_ipv4: IPv4Address
    new_ipv4: IPv4Address
    advertiser: Optional[str]


class MobilityService:
    """Manages mobile hosts over one IPvN deployment."""

    def __init__(self, deployment: VnDeployment) -> None:
        self.deployment = deployment
        self.network = deployment.network
        self.moves: List[MoveRecord] = []
        self._mobile: Dict[str, VNAddress] = {}

    # -- lifecycle -------------------------------------------------------------
    def enable(self, host_id: str) -> VNAddress:
        """Make *host_id* mobile: pin its IPvN address as its identity."""
        address = self.deployment.plan.pin_address(host_id)
        self._mobile[host_id] = address
        return address

    def is_mobile(self, host_id: str) -> bool:
        return host_id in self._mobile

    def identity_of(self, host_id: str) -> VNAddress:
        try:
            return self._mobile[host_id]
        except KeyError:
            raise DeploymentError(
                f"{host_id!r} is not mobility-enabled") from None

    # -- the move --------------------------------------------------------------------
    def move(self, host_id: str, new_asn: int,
             new_access_router: str) -> MoveRecord:
        """Re-home *host_id* and re-register its pinned address.

        Performs the physical move (new provider, new IPv4 locator),
        reconverges the control planes, then runs the registration:
        the host anycasts for a nearby IPvN router, which advertises
        the pinned IPvN address with the new IPv4 egress.
        """
        identity = self.identity_of(host_id)
        host = self.network.node(host_id)
        old_asn = host.domain_id
        old_ipv4 = host.ipv4
        self.network.move_host(host_id, new_asn, new_access_router)
        # The move changed IGP-visible attachments; reconverge before
        # the host can anycast from its new location.
        self.deployment.rebuild()
        advertiser = self.deployment.scheme.resolve(host_id)
        if advertiser is not None:
            self.deployment.host_registry.register(host_id, advertiser)
        # Keep the host answering to its pinned identity.
        host.assign_vn_address(identity)
        self.deployment.rebuild()
        record = MoveRecord(host_id=host_id, old_asn=old_asn, new_asn=new_asn,
                            old_ipv4=old_ipv4, new_ipv4=host.ipv4,
                            advertiser=advertiser)
        self.moves.append(record)
        return record

    # -- measurement --------------------------------------------------------------------
    def reach(self, src_host_id: str, mobile_host_id: str):
        """A correspondent packet towards the mobile host's identity."""
        return self.deployment.send(src_host_id, mobile_host_id)

    def ipv4_reach_old_locator(self, src_host_id: str,
                               record: MoveRecord):
        """The broken baseline: plain IPv4 to the pre-move locator."""
        from repro.net.packet import ipv4_packet

        src = self.network.node(src_host_id)
        packet = ipv4_packet(src.ipv4, record.old_ipv4)
        return self.deployment.orchestrator.forward(packet, src_host_id)
