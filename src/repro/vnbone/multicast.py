"""IP Multicast deployed *as an IPvN* over the evolvability framework.

The paper's central cautionary tale is IP Multicast: universally
implemented by router vendors, never deployed, because without
universal access no application could count on it.  This module closes
the loop by instantiating the framework with a multicast-capable IPvN:
group addresses live in a reserved slice of the IPvN space, the
vN-Bone doubles as the multicast distribution substrate, and — because
redirection is anycast — *any* host on the Internet can source to or
receive from a group the moment one ISP deploys.

The design is deliberately PIM-SM-shaped (the paper cites PIM-SM's use
of anycast for rendezvous-point discovery):

* each group has a **core** (rendezvous) router — the member that
  minimizes the total vN-Bone distance to the group's receivers;
* receivers **join** via their designated member router (the member
  nearest the receiver's attachment, anycast-style); the join grafts
  the vN-Bone shortest path from the core onto the shared tree;
* a source's packet reaches any IPvN router via anycast and is
  **registered** to the core through a vN-in-vN tunnel (the
  ``mcast_downstream`` header flag clear), then distributed down the
  shared tree (flag set), replicating only at branch points and exiting
  towards each receiver host over IPv(N-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import VN_BITS, IPv4Address, VNAddress
from repro.net.errors import DeploymentError, RoutingError
from repro.net.forwarding import MulticastTrace
from repro.net.node import Host
from repro.net.packet import IPv4Header, vn_packet
from repro.vnbone.deployment import VnDeployment

#: Bit 62 set (and the self-addressing bit 63 clear) marks a multicast
#: group address; the low bits number groups.
VN_MULTICAST_FLAG = 1 << (VN_BITS - 2)


def is_multicast(address: VNAddress) -> bool:
    """Whether an IPvN address is a multicast group address."""
    return bool(address.value & VN_MULTICAST_FLAG) and not address.is_self_assigned


def group_address(group_id: int, version: int = 8) -> VNAddress:
    """The IPvN address of multicast group *group_id*."""
    if not 0 < group_id < (1 << 32):
        raise DeploymentError(f"group id {group_id} out of range")
    return VNAddress(VN_MULTICAST_FLAG | group_id, version=version)


@dataclass(frozen=True)
class McastEntry:
    """Per-router multicast forwarding state for one group."""

    group: VNAddress
    core_id: str
    core_vn_address: VNAddress
    #: vN-Bone neighbors to replicate to when distributing down-tree.
    downstream: Tuple[str, ...] = ()
    #: Receiver hosts this router exits towards (designated router role).
    egress_hosts: Tuple[IPv4Address, ...] = ()

    @property
    def is_core(self) -> bool:
        return False  # overridden by construction; see service below


@dataclass
class GroupState:
    """Service-side bookkeeping for one group."""

    address: VNAddress
    receivers: Set[str] = field(default_factory=set)
    core_id: Optional[str] = None


class VnMulticastService:
    """Multicast group management over one IPvN deployment.

    Lifecycle: ``create_group`` -> hosts ``join``/``leave`` ->
    ``rebuild`` (after the deployment's own rebuild) -> ``send``.
    """

    def __init__(self, deployment: VnDeployment) -> None:
        self.deployment = deployment
        self.network = deployment.network
        self.version = deployment.version
        self.groups: Dict[VNAddress, GroupState] = {}
        self._next_group_id = 1

    # -- group management --------------------------------------------------------
    def create_group(self) -> VNAddress:
        address = group_address(self._next_group_id, version=self.version)
        self._next_group_id += 1
        self.groups[address] = GroupState(address=address)
        return address

    def join(self, group: VNAddress, host_id: str) -> None:
        """Host *host_id* becomes a receiver of *group*."""
        state = self._require_group(group)
        host = self.network.node(host_id)
        if not isinstance(host, Host):
            raise DeploymentError(f"{host_id!r} is not a host")
        state.receivers.add(host_id)
        host.vn_groups.add(group)

    def leave(self, group: VNAddress, host_id: str) -> None:
        state = self._require_group(group)
        state.receivers.discard(host_id)
        host = self.network.node(host_id)
        if isinstance(host, Host):
            host.vn_groups.discard(group)

    def receivers(self, group: VNAddress) -> Set[str]:
        return set(self._require_group(group).receivers)

    def _require_group(self, group: VNAddress) -> GroupState:
        try:
            return self.groups[group]
        except KeyError:
            raise DeploymentError(f"unknown multicast group {group}") from None

    # -- tree construction -----------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute cores and shared trees; install per-router state.

        Call after the deployment's :meth:`~VnDeployment.rebuild` so the
        vN-Bone topology and routing are current.
        """
        if self.deployment.needs_rebuild:
            self.deployment.rebuild()
        for state in self.deployment.states.values():
            state.mcast_groups = {}
        for group in sorted(self.groups, key=lambda g: g.value):
            self._build_group(self.groups[group])

    def _designated_router(self, host_id: str) -> Optional[str]:
        """The member that acts for *host_id* (nearest to its access)."""
        host = self.network.node(host_id)
        assert isinstance(host, Host)
        members_by_domain = self.deployment.members_by_domain()
        local_members = members_by_domain.get(host.domain_id)
        if local_members:
            best = None
            for member in sorted(local_members):
                cost = self.deployment.topology.member_distance(
                    member, host.access_router, host.domain_id)
                if cost is None:
                    continue
                if best is None or (cost, member) < best:
                    best = (cost, member)
            if best is not None:
                return best[1]
        # No member in the host's domain: its anycast-nearest member.
        return self.deployment.scheme.resolve(host.access_router)

    def _build_group(self, state: GroupState) -> None:
        routing = self.deployment.routing
        members = self.deployment.states
        if not members or not state.receivers:
            state.core_id = None
            return
        # Designated (egress) member per receiver.
        designated: Dict[str, List[str]] = {}
        for host_id in sorted(state.receivers):
            member = self._designated_router(host_id)
            if member is None:
                continue
            designated.setdefault(member, []).append(host_id)
        if not designated:
            state.core_id = None
            return
        # Core: member minimizing total vN distance to designated routers.
        best_core: Optional[Tuple[float, str]] = None
        for candidate in sorted(members):
            total = 0.0
            feasible = True
            for member in designated:
                dist = routing.distance(candidate, member)
                if dist is None:
                    feasible = False
                    break
                total += dist
            if feasible and (best_core is None or (total, candidate) < best_core):
                best_core = (total, candidate)
        if best_core is None:
            state.core_id = None
            return
        core_id = best_core[1]
        state.core_id = core_id
        # Shared tree: union of vN-Bone paths core -> designated routers.
        children: Dict[str, Set[str]] = {}
        on_tree: Set[str] = {core_id}
        for member in sorted(designated):
            path = routing.path(core_id, member)
            if path is None:
                continue
            for parent, child in zip(path, path[1:]):
                children.setdefault(parent, set()).add(child)
                on_tree.update((parent, child))
        # Install per-router entries: every member learns the core (for
        # source registration); tree routers also learn their downstream
        # branches and egress receivers.
        core_vn_address = members[core_id].vn_address
        for router_id, router_state in members.items():
            egress = tuple(self.network.node(h).ipv4
                           for h in designated.get(router_id, ()))
            entry = McastEntry(
                group=state.address, core_id=core_id,
                core_vn_address=core_vn_address,
                downstream=tuple(sorted(children.get(router_id, ()))),
                egress_hosts=egress)
            router_state.mcast_groups[state.address] = entry

    # -- data path ----------------------------------------------------------------------
    def send(self, src_host_id: str, group: VNAddress,
             payload: object = None, ttl: int = 64) -> MulticastTrace:
        """Source *src_host_id* multicasts to *group*.

        The host stack is unchanged from unicast IPvN: build the packet
        and encapsulate towards the deployment's anycast address — the
        source needs no knowledge of the core, the tree, or deployment.
        """
        self._require_group(group)
        src = self.network.node(src_host_id)
        if not isinstance(src, Host):
            raise DeploymentError(f"{src_host_id!r} is not a host")
        src_addr = self.deployment.plan.ensure_host_address(src_host_id)
        packet = vn_packet(src_addr, group, payload=payload, ttl=ttl)
        packet.encapsulate(IPv4Header(src=src.ipv4,
                                      dst=self.deployment.scheme.address))
        return self.deployment.orchestrator.engine.forward_multicast(
            packet, src_host_id)

    # -- metrics ----------------------------------------------------------------------------
    def unicast_equivalent_cost(self, src_host_id: str,
                                group: VNAddress) -> Tuple[int, int]:
        """(total transmissions, max link stress) if the source instead
        sent one unicast IPvN packet per receiver — the baseline that
        shows multicast's bandwidth advantage."""
        state = self._require_group(group)
        transmissions = 0
        stress: Dict[Tuple[str, str], int] = {}
        for host_id in sorted(state.receivers):
            trace = self.deployment.send(src_host_id, host_id)
            transmissions += trace.physical_hops
            path = trace.node_path()
            for a, b in zip(path, path[1:]):
                link = self.network.link_between(a, b)
                if link is not None:
                    key = link.endpoints()
                    stress[key] = stress.get(key, 0) + 1
        return transmissions, (max(stress.values()) if stress else 0)


def make_multicast_aware_handler(version: int, base_handler):
    """Wrap a unicast vN handler with multicast group dispatch.

    Multicast-destined packets consult the router's per-group state:
    register towards the core when the distribution flag is clear,
    replicate down the shared tree (and out to receiver hosts) when it
    is set.  Everything else falls through to the unicast handler.
    """
    from repro.net.forwarding import (VnDrop, VnEgress, VnEncap, VnForward,
                                      VnReplicate)
    from repro.net.packet import VNHeader
    from repro.vnbone.state import VnRouterState

    def handler(node, packet):
        header = packet.outer
        assert isinstance(header, VNHeader)
        if not is_multicast(header.dst):
            return base_handler(node, packet)
        state = node.vn_state_for(version)
        if not isinstance(state, VnRouterState):
            return VnDrop(f"{node.node_id} has no IPv{version} state")
        entry = getattr(state, "mcast_groups", {}).get(header.dst)
        if entry is None:
            return VnDrop(f"no multicast state for {header.dst} "
                          f"at {node.node_id}")
        if not header.mcast_downstream:
            if state.router_id != entry.core_id:
                # Register: tunnel the packet to the core inside vN.
                return VnEncap(VNHeader(src=state.vn_address,
                                        dst=entry.core_vn_address))
            copies = tuple(VnForward(child) for child in entry.downstream)
            copies += tuple(VnEgress(ip) for ip in entry.egress_hosts)
            if not copies:
                return VnDrop(f"group {header.dst} has no receivers")
            return VnReplicate(copies=copies, mark_downstream=True)
        copies = tuple(VnForward(child) for child in entry.downstream)
        copies += tuple(VnEgress(ip) for ip in entry.egress_hosts)
        if not copies:
            return VnDrop(f"leaf {node.node_id} has no receivers for "
                          f"{header.dst}")
        return VnReplicate(copies=copies)

    return handler


def enable_multicast(deployment: VnDeployment) -> VnMulticastService:
    """Attach multicast capability to a deployment.

    Wraps the deployment's registered vN handler with group dispatch
    and returns the service managing groups and trees.
    """
    engine = deployment.orchestrator.engine
    base = engine.vn_handler(deployment.version)
    if base is None:
        raise RoutingError(
            f"IPv{deployment.version} has no handler registered yet")
    engine.register_vn_handler(
        deployment.version,
        make_multicast_aware_handler(deployment.version, base))
    return VnMulticastService(deployment)
