"""Advertising-by-proxy (Figure 4 of the paper).

IPvN border routers whose domains sit close — in IPv(N-1) AS-path
terms — to a non-IPvN destination domain advertise "their distance to
Z" *into the BGPvN routing protocol*.  Other members then route
packets for Z's self-addressed block across the vN-Bone towards the
best proxy, instead of exiting immediately; the packet rides the
vN-Bone as far as deployment allows.

This module is a thin, figure-faithful wrapper over the shared egress
machinery (:func:`repro.vnbone.egress.external_owner_entries` with the
``PROXY`` policy): it exposes the threshold knob and per-domain
inspection of who proxies what — the bench for F4 uses it to show path
A→Z shifting from an early exit to a vN-Bone ride via B or C.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.net.network import Network
from repro.bgp.protocol import BgpProtocol
from repro.vnbone.egress import EgressPolicy, external_owner_entries
from repro.vnbone.routing import OwnerEntry


class ProxyAdvertiser:
    """Computes advertising-by-proxy originations for one deployment."""

    def __init__(self, network: Network, bgp: BgpProtocol, version: int,
                 threshold: int = 1) -> None:
        if threshold < 0:
            raise ValueError("proxy threshold must be non-negative")
        self.network = network
        self.bgp = bgp
        self.version = version
        #: Maximum IPv(N-1) AS-path length at which a member still
        #: proxies a destination domain (1 = direct neighbors only).
        self.threshold = threshold

    def owner_entries(self, members: Iterable[str],
                      adopting_asns: Set[int]) -> List[OwnerEntry]:
        """Proxy advertisements for all non-adopting destination domains."""
        return external_owner_entries(self.network, self.bgp, self.version,
                                      members, EgressPolicy.PROXY,
                                      adopting_asns,
                                      proxy_threshold=self.threshold)

    def proxies_for_domain(self, asn: int, members: Iterable[str],
                           adopting_asns: Set[int]) -> List[str]:
        """Which members proxy destination domain *asn* (for inspection)."""
        target_prefix = self.network.domains[asn].prefix
        entries = self.owner_entries(members, adopting_asns)
        from repro.vnbone.state import vn_prefix_for_ipv4

        wanted = vn_prefix_for_ipv4(target_prefix, version=self.version)
        return sorted({e.owner for e in entries if e.prefix == wanted})

    def coverage(self, members: Iterable[str],
                 adopting_asns: Set[int]) -> Dict[int, int]:
        """Per external domain, how many members proxy it."""
        entries = self.owner_entries(members, adopting_asns)
        from repro.vnbone.state import vn_prefix_for_ipv4

        prefix_to_asn = {
            vn_prefix_for_ipv4(self.network.domains[asn].prefix,
                               version=self.version): asn
            for asn in self.network.domains if asn not in adopting_asns}
        counts = {asn: 0 for asn in prefix_to_asn.values()}
        for entry in entries:
            asn = prefix_to_asn.get(entry.prefix)
            if asn is not None:
                counts[asn] += 1
        return counts
